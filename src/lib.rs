//! # opcua-study
//!
//! Umbrella crate for the reproduction of *"Easing the Conscience with
//! OPC UA: An Internet-Wide Study on Insecure Deployments"* (IMC 2020):
//! an end-to-end measurement pipeline over a deterministic, simulated
//! IPv4 Internet.
//!
//! ## Layer diagram
//!
//! ```text
//!                 ┌─────────────────────────────────────────┐
//!   tooling       │ ua-lint      workspace-native static    │
//!                 │              analysis (zero deps, own   │
//!                 │              lexer): wall-clock and     │
//!                 │              ambient-randomness bans,   │
//!                 │              unordered-iteration and    │
//!                 │              panic hygiene, nested      │
//!                 │              locks, manifest            │
//!                 │              hermeticity; `cargo run -p │
//!                 │              ua-lint -- check`, gated   │
//!                 │              in CI and by `cargo test`  │
//!                 ├─────────────────────────────────────────┤
//!   analysis      │ assessment   incremental Assessor:      │
//!                 │              fold records as they       │
//!                 │              stream, batch-GCD at       │
//!                 │              finalize; paper tables;    │
//!                 │              longitudinal diffing:      │
//!                 │              weekly campaigns → churn   │
//!                 │              series (new/vanished/      │
//!                 │              moved hosts by cert        │
//!                 │              thumbprint, renewals,      │
//!                 │              upgrade detection,         │
//!                 │              deficit trajectories)      │
//!                 ├─────────────────────────────────────────┤
//!   measurement   │ scanner      two engines, one output:   │
//!                 │              threaded (sharded sweep,   │
//!                 │              ScanConfig::workers probe  │
//!                 │              threads, merge by          │
//!                 │              discovery order) and       │
//!                 │              event loop (scanner::sched:│
//!                 │              timer-wheel scheduler,     │
//!                 │              per-host state machines,   │
//!                 │              max_in_flight window,      │
//!                 │              CancelToken abort +        │
//!                 │              SweepCheckpoint resume);   │
//!                 │              → LDS referral queue (url  │
//!                 │              parse, dedup, depth/       │
//!                 │              budget) → channel;         │
//!                 │              certificates interned      │
//!                 │              campaign-wide (CertStore:  │
//!                 │              parse/hash once per        │
//!                 │              distinct DER); Campaign:   │
//!                 │              N weekly sweeps on one     │
//!                 │              advancing clock, one       │
//!                 │              CertStore per study;       │
//!                 │              RetryPolicy: seeded        │
//!                 │              backoff/pacing, HostOutcome│
//!                 │              taxonomy, FaultStats;      │
//!                 │              ProtocolSuite registry     │
//!                 │              (port → suite): opc.tcp +  │
//!                 │              uat-tls ladders, typed     │
//!                 │              ProtocolPayload records,   │
//!                 │              vendor fingerprinting      │
//!                 ├─────────────────────────────────────────┤
//!   fleet         │ population   seeded strata of (mis-)    │
//!                 │              configured deployments;    │
//!                 │              WorldSpec: pure random-    │
//!                 │              access layout (Feistel     │
//!                 │              address permutation);      │
//!                 │              LazyWorld: hosts built on  │
//!                 │              first probe contact via    │
//!                 │              netsim's resolver hook,    │
//!                 │              byte-identical to eager;   │
//!                 │              EvolvingWorld: weekly      │
//!                 │              churn (IP moves, arrivals/ │
//!                 │              departures, cert renewal,  │
//!                 │              up/downgrades, deficit     │
//!                 │              remediation/regression),   │
//!                 │              eager or lazy;             │
//!                 │              MiddleboxPlan: planted     │
//!                 │              fault strata with ground   │
//!                 │              truth (terminal-fate       │
//!                 │              replay)                    │
//!                 ├──────────────┬──────────────────────────┤
//!   protocol      │ ua-client    │ ua-server                │
//!                 ├──────────────┴──────────────────────────┤
//!                 │ ua-proto     transport, secure channel, │
//!                 │              chunking, services         │
//!                 ├──────────────┬─────────────┬────────────┤
//!   foundation    │ ua-types     │ ua-addrspace│ ua-crypto  │
//!                 │ (reset-reuse │             │ (Karatsuba,│
//!                 │  encoders)   │             │ Montgomery,│
//!                 │              │             │ CertStore) │
//!                 ├──────────────┴─────────────┴────────────┤
//!   substrate     │ netsim       virtual clock, CIDR/ASN,   │
//!                 │              connections, zmap sweeps,  │
//!                 │              HostResolver hook (lazy    │
//!                 │              host materialization),     │
//!                 │              NetProfile fault injection │
//!                 │              (loss, tarpits, firewalls) │
//!                 └─────────────────────────────────────────┘
//! ```
//!
//! ## The pipeline in five lines
//!
//! ```
//! use opcua_study::prelude::*;
//!
//! let net = Internet::new(VirtualClock::default());
//! let universe: Cidr = "10.0.0.0/22".parse().unwrap();
//! let cfg = PopulationConfig::new(42, vec![universe], StrataMix::paper_like(30));
//! let population = synthesize(&net, &cfg);
//! let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
//! let (_summary, records) = scanner.scan_collect(&[universe], 42);
//! let report = assess(&records);
//! assert_eq!(report.hosts, population.len());
//! ```
//!
//! ## Scaling knobs
//!
//! * **Worker count** — `ScanConfig::workers` shards the campaign
//!   across N probe threads. The permuted universe is split
//!   deterministically (`pos % workers`) and shard outputs merge back
//!   into discovery order, so records, report, and summary are
//!   byte-identical for a fixed seed at *any* worker count; only the
//!   wall-clock changes. CI enforces this by diffing a 1-worker against
//!   a 4-worker campaign.
//! * **Scan engine** — `ScanConfig::engine` selects between the
//!   thread-per-shard reference engine and `scanner::sched`'s
//!   single-threaded event loop: per-host probe state machines
//!   multiplexed over a hierarchical timer wheel, with
//!   `ScanConfig::max_in_flight` bounding the admitted-but-unemitted
//!   window (throughput tracks the in-flight budget, not a worker
//!   count). Output is byte-identical between engines per seed, and
//!   the event loop adds what threads cannot: cooperative
//!   cancellation (`CancelToken`) and deterministic abort/resume
//!   (`Scanner::scan_resumable` + `SweepCheckpoint`,
//!   `Campaign::run_week_resumable` + `resume_week`) — an aborted
//!   sweep consumes no campaign time and stitches byte-identically.
//!   CI diffs event-loop runs against threaded ones and replays an
//!   abort/resume cycle.
//! * **Referral following** — after the sweep, the pipeline re-probes
//!   every `host:port` that FindServers answers referred to (the
//!   paper's 2020-05-04 scanner change): URLs are normalized through
//!   `scanner::url::OpcUrl`, deduplicated against sweep coverage and
//!   earlier referrals (loops terminate), blocklist-checked, and
//!   followed breadth-first up to `ScanConfig::referral_depth` /
//!   `referral_budget`. Referral records carry
//!   `DiscoveredVia::Referral { from, depth }` provenance, and the
//!   assessment report contrasts referral-only hosts against swept
//!   ones (Table 1-style discovery accounting).
//! * **Incremental assessment** — `Assessor::fold` consumes each
//!   record as the scanner streams it (per-host rules immediately,
//!   cross-host state online) and `Assessor::finalize` runs batch GCD
//!   and emits the report; `assess()` is the batch wrapper. Streaming
//!   consumers never buffer records.
//! * **Campaign-scale crypto** — `ua-crypto` runs Karatsuba
//!   multiplication above 32 limbs, a dedicated squaring path, and
//!   Montgomery-form 4-bit-windowed `mod_pow` (zero divisions per
//!   step; the pre-PR square-and-multiply survives as
//!   `mod_pow_legacy` for even moduli and benchmarking). The scanner
//!   interns certificates campaign-wide (`ua_crypto::CertStore`):
//!   a certificate served by N hosts is parsed, thumbprinted, and
//!   self-signature-checked once, the assessor folds over the shared
//!   handles, and batch GCD consumes moduli deduplicated by exactly
//!   the §5.2 reuse factor (`ScanSummary::certs` reports sightings
//!   vs. distinct).
//! * **Lazy world materialization** — `population::LazyWorld` (and
//!   `EvolvingWorld::new_lazy`) deploys a universe-sized study without
//!   building it: occupancy is answered by a seeded O(1) predicate (a
//!   Feistel permutation over the universe, no per-address state), and
//!   a host's full deployment — keys, certificate, address space,
//!   referral wiring — is synthesized on *first probe contact* through
//!   `netsim`'s `HostResolver` hook, as a pure function of
//!   `(campaign seed, host id, week)`. Output is byte-identical to the
//!   eager path at any worker count; resident memory tracks the hosts
//!   probes actually reach, never the address space
//!   (`MaterializationStats` reports hosts materialized, keys
//!   generated, and the resident-bytes estimate; the `sweep` and
//!   `longitudinal` benches record them, and CI runs a million-address
//!   study under a hard `ulimit -v`).
//! * **Longitudinal campaigns** — `population::EvolvingWorld` churns
//!   the deployed fleet week over week (DHCP-style IP reassignment,
//!   arrivals/departures, certificate renewal, software up/downgrades,
//!   deficit remediation and regression), `scanner::Campaign` runs one
//!   sweep per week on a strictly advancing clock with a study-wide
//!   shared `CertStore`, and `assessment::LongitudinalAssessor` diffs
//!   consecutive campaigns into the paper's series: hosts
//!   new/vanished/moved (certificate thumbprint as the cross-week
//!   identity, §4.3), renewals, `software_version` upgrade detection
//!   (§6), and deficit-rate trajectories. A full multi-campaign run is
//!   byte-identical per seed at any worker count; CI replays the
//!   seven-month study against planted ground truth and diffs a
//!   1-worker vs 4-worker six-week mini-study.
//! * **Hostile-network realism** — `netsim::NetProfile` injects
//!   middlebox faults under any world: per-SYN loss coins, flaky
//!   stacks that drop their first N connects, accept-then-stall
//!   tarpits (silent or byte-dribbling), and rate-limiting firewalls
//!   (temporary or sweep-permanent), every fault a pure function of
//!   `(profile, attempt)` charged honestly to the virtual clock.
//!   `population::MiddleboxPlan` plants those profiles over a
//!   synthesized fleet per /24 and doubles as checkable ground truth
//!   (it replays the fate sequence a retrying scanner sees). The
//!   scanner answers with `ScanConfig::retry` — bounded attempts,
//!   seeded exponential backoff with jitter, adaptive pacing on
//!   rate-limit signatures, per-stage budgets — classifies every
//!   write-off (`HostOutcome`: unreachable / timed out / throttled /
//!   tarpitted), and tallies the cost (`FaultStats`). Default policy
//!   is one attempt: polite campaigns are byte-identical to the
//!   pre-retry pipeline. Hostile sweeps stay byte-identical across
//!   engines, worker counts, and abort/resume; CI replays
//!   `examples/hostile_sweep.rs` against the planted truth and diffs
//!   1-vs-4-worker hostile campaigns.
//! * **Protocol suites** — `ScanConfig::suites` (or
//!   `ScanConfig::builder().suite(port, …)`) registers a
//!   `scanner::ProtocolSuite` per port: the suite names its probe
//!   ladder, classifies connect faults, and emits a typed
//!   `ProtocolPayload` on every record. The sweep walks the union of
//!   registered ports, one isolated phase per suite, so a mixed
//!   registry equals the concatenation of single-suite campaigns —
//!   and an empty registry stays byte-identical to the pre-suite
//!   OPC UA pipeline. Shipped suites: `OpcUaSuite` (opc.tcp, referral
//!   following, optional vendor fingerprinting via the error-taxonomy
//!   quirk each stack betrays) and `UatTlsSuite` (TLS-wrapped opc.tcp
//!   on 4843, surfacing the wrapper-specific deficits: TLS-but-
//!   anonymous inner servers and expired wrapper certificates —
//!   `population::MultiProtoPlan` plants those strata with checkable
//!   ground truth). CI replays `examples/multi_protocol_audit.rs`
//!   against the planted truth and diffs it across engines and worker
//!   counts.
//! * **Invariant lints** — every determinism rule above is statically
//!   checked by `crates/ua-lint`, a registry-dependency-free analyzer
//!   with its own Rust lexer: no wall-clock reads or sleeps off the
//!   `VirtualClock`, no entropy-seeded RNG, no `HashMap`/`HashSet`
//!   iteration feeding campaign output, panic and lock-nesting
//!   hygiene, and path-or-workspace-only manifests. `cargo run -p
//!   ua-lint -- check` must exit clean; a golden test inside
//!   `cargo test` and a CI job (JSON report artifact) enforce it.
//!   Deliberate exceptions are waived per site with
//!   `// ua-lint: allow(<rule>) -- <why>` (see
//!   `examples/README.md` § Invariants & lints).
//! * **Perf trail** — `cargo bench --bench sweep|protocol|crypto|`
//!   `ablation|figures|longitudinal` measures the pipeline and writes
//!   `BENCH_<name>.json` (see `crates/bench`); CI runs
//!   `sweep`+`ablation`+`crypto`+`longitudinal`, fails if Montgomery
//!   ever loses to the legacy path, deduplication stops paying, or the
//!   longitudinal churn rates collapse to zero, and uploads the
//!   artifacts on every run.
//!
//! See `examples/quickstart.rs`, `examples/internet_scan.rs`,
//! `examples/deployment_audit.rs`, and `examples/seven_month_study.rs`
//! for runnable end-to-end demos (`examples/README.md` has the tour).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use assessment;
pub use netsim;
pub use population;
pub use scanner;
pub use ua_addrspace;
pub use ua_client;
pub use ua_crypto;
pub use ua_proto;
pub use ua_server;
pub use ua_types;

/// The types most pipelines need, in one import.
pub mod prelude {
    pub use assessment::{
        assess, AssessmentReport, Assessor, Deficit, LongitudinalAssessor, LongitudinalReport,
        ReachabilityTally, WeekDelta,
    };
    pub use netsim::{Blocklist, Cidr, Internet, Ipv4, NetProfile, VirtualClock};
    pub use population::{
        population_vendor_counts, synthesize, ChurnConfig, EvolvingWorld, FaultStratum, HostClass,
        LazyWorld, MaterializationStats, MiddleboxConfig, MiddleboxPlan, MultiProtoConfig,
        MultiProtoPlan, Population, PopulationConfig, StrataMix, TlsClass,
    };
    pub use scanner::{
        Campaign, CampaignConfig, CancelToken, CertStore, DiscoveredVia, EngineStats, FaultStats,
        HostOutcome, OpcUaSuite, OpcUrl, ProtocolPayload, ProtocolSuite, ReferralStats,
        RetryPolicy, ScanConfig, ScanEngine, ScanOutcome, ScanRecord, ScanSummary, Scanner,
        SessionOutcome, SuiteRegistry, SweepCheckpoint, UatTlsSuite, WeekCheckpoint, WeekOutcome,
        WeeklyScan, DEFAULT_OPCUA_PORT, DEFAULT_UATLS_PORT,
    };
    pub use ua_crypto::Thumbprint;
    pub use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn doc_pipeline_runs() {
        let net = Internet::new(VirtualClock::default());
        let universe: Cidr = "10.0.0.0/22".parse().unwrap();
        let cfg = PopulationConfig::new(42, vec![universe], StrataMix::paper_like(30));
        let population = synthesize(&net, &cfg);
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let (_summary, records) = scanner.scan_collect(&[universe], 42);
        let report = assess(&records);
        assert_eq!(report.hosts, population.len());
    }
}
