//! Longitudinal study throughput and churn accounting.
//!
//! Replays a multi-week campaign (evolving population → weekly sweep →
//! cross-week diffing) and measures what longitudinal scanning costs on
//! top of a single snapshot: per-week scan time, end-to-end study time,
//! and the interning payoff of sharing one `CertStore` across all
//! campaigns. The study runs on a *lazy* world — hosts materialize on
//! first probe contact — and a second run over a 16× larger universe
//! with the same population verifies that per-week cost tracks the
//! population, not the address space. Emits both the *planted* churn
//! rates (ground truth from the evolution log, per host-week) and the
//! *detected* series totals so the perf trail doubles as a sanity
//! record — CI fails when any churn-rate or materialization field is
//! missing or zero.
//!
//! ```sh
//! BENCH_HOSTS=250 BENCH_UNIVERSE=21 BENCH_WEEKS=6 \
//!     cargo bench --bench longitudinal
//! ```
//!
//! Emits `BENCH_longitudinal.json`.

use assessment::{assess, LongitudinalAssessor};
use bench::{time, write_bench_json, BenchConfig, Json};
use netsim::{Blocklist, Internet, VirtualClock};
use population::{ChurnConfig, EvolvingWorld, PopulationConfig, StrataMix};
use scanner::{Campaign, ScanConfig, Scanner};

fn main() {
    let cfg = BenchConfig::from_env();
    let weeks: u32 = std::env::var("BENCH_WEEKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    println!(
        "longitudinal bench: {} hosts, {} weekly campaigns",
        cfg.hosts, weeks
    );

    let net = Internet::new(VirtualClock::default());
    let pop_cfg = PopulationConfig::new(
        cfg.seed,
        cfg.universe.clone(),
        StrataMix::paper_like(cfg.hosts),
    );
    let churn = ChurnConfig::default();
    let mut world = EvolvingWorld::new_lazy(&net, &pop_cfg, churn);
    let hosts_week0 = world.alive_count();
    let scan_config = ScanConfig {
        workers: cfg.worker_counts.first().copied().unwrap_or(1),
        ..ScanConfig::default()
    };
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), scan_config));
    let mut longitudinal = LongitudinalAssessor::new();

    let mut scan_seconds = Vec::new();
    let mut hosts_scanned = 0u64;
    let mut digest = 0u64;
    let (study_seconds, ()) = time(|| {
        for _ in 0..weeks {
            let (seconds, scan) = time(|| {
                let world = &mut world;
                campaign.run_week(&cfg.universe, cfg.seed, |w| {
                    if w > 0 {
                        world.evolve(w);
                    }
                })
            });
            scan_seconds.push(seconds);
            hosts_scanned += scan.summary.opcua_hosts;
            let report = assess(&scan.records);
            let point = longitudinal.fold_week(&scan.records, &report);
            let d = point.delta;
            digest = [
                d.hosts,
                d.new_hosts,
                d.vanished_hosts,
                d.moved_hosts,
                d.renewed_certs,
                d.upgrades,
                d.downgrades,
            ]
            .iter()
            .fold(digest, |acc, &v| {
                acc.wrapping_mul(1_000_003).wrapping_add(v as u64)
            });
            println!(
                "  week {:>2}: {seconds:.3}s scan, {} hosts ({} new, {} gone, {} moved)",
                d.week, d.hosts, d.new_hosts, d.vanished_hosts, d.moved_hosts
            );
        }
    });

    let series = longitudinal.finalize();
    let planted = world.history();
    // Planted events per host-week: the living population differs per
    // week, so normalize against the actual host-week exposure.
    let host_weeks: f64 = planted
        .iter()
        .zip(series.weeks.iter().skip(1))
        .map(|(_, p)| p.delta.hosts as f64)
        .sum();
    let planted_sum =
        |f: &dyn Fn(&population::WeekChurn) -> usize| -> usize { planted.iter().map(f).sum() };
    let rate = |n: usize| n as f64 / host_weeks.max(1.0);
    let certs = campaign.cert_stats();
    let total_scan: f64 = scan_seconds.iter().sum();

    // Materialization telemetry: the study above ran on a lazy world,
    // so the counters show exactly what the weekly sweeps paid for.
    // Materializing more hosts than the campaign ever scanned would
    // mean the lazy path builds hosts no probe reached.
    let stats = world.stats();
    assert!(stats.hosts_materialized > 0, "study materialized nothing");
    assert!(
        stats.hosts_materialized <= hosts_scanned,
        "materialized {} hosts but only {} host-scans happened",
        stats.hosts_materialized,
        hosts_scanned
    );

    // Universe-scale independence: replay the identical study in a 16×
    // larger address space. Host identities, churn events, and key
    // generations are functions of (seed, host id, week), so the
    // counters must not move — per-week cost tracks the population,
    // not the universe.
    let scaled_universe = vec![netsim::Cidr::new(
        cfg.universe[0].base,
        cfg.universe[0].prefix_len.saturating_sub(4),
    )];
    let scaled_addresses: u64 = scaled_universe.iter().map(netsim::Cidr::size).sum();
    let scaled_net = Internet::new(VirtualClock::default());
    let scaled_cfg = PopulationConfig::new(
        cfg.seed,
        scaled_universe.clone(),
        StrataMix::paper_like(cfg.hosts),
    );
    let mut scaled_world =
        EvolvingWorld::new_lazy(&scaled_net, &scaled_cfg, ChurnConfig::default());
    let scan_config = ScanConfig {
        workers: cfg.worker_counts.first().copied().unwrap_or(1),
        ..ScanConfig::default()
    };
    let mut scaled_campaign =
        Campaign::new(Scanner::new(scaled_net, Blocklist::new(), scan_config));
    let (scaled_seconds, ()) = time(|| {
        for _ in 0..weeks {
            let scaled_world = &mut scaled_world;
            scaled_campaign.run_week(&scaled_universe, cfg.seed, |w| {
                if w > 0 {
                    scaled_world.evolve(w);
                }
            });
        }
    });
    let scaled_stats = scaled_world.stats();
    assert_eq!(
        scaled_stats.hosts_materialized, stats.hosts_materialized,
        "a 16× universe changed how many hosts materialized"
    );
    assert_eq!(
        scaled_stats.keygen_count, stats.keygen_count,
        "a 16× universe changed how many keys were generated"
    );
    println!(
        "  scale check: {}x addresses, same {} hosts materialized, \
         same {} keygens ({scaled_seconds:.2}s)",
        scaled_addresses / cfg.universe_size().max(1),
        scaled_stats.hosts_materialized,
        scaled_stats.keygen_count
    );

    let json = Json::obj()
        .set("weeks", Json::int(weeks as i64))
        .set("hosts_week0", Json::int(hosts_week0 as i64))
        .set("hosts_final", Json::int(world.alive_count() as i64))
        .set("study_seconds", Json::Num(study_seconds))
        .set("scan_seconds_total", Json::Num(total_scan))
        .set(
            "scan_seconds_per_week",
            Json::Num(total_scan / f64::from(weeks.max(1))),
        )
        .set(
            "hosts_scanned_per_second",
            Json::Num(hosts_scanned as f64 / total_scan.max(1e-9)),
        )
        // Planted ground-truth churn rates, per host-week. These are
        // what CI gates on: a longitudinal study without churn measures
        // nothing.
        .set(
            "ip_churn_rate",
            Json::Num(rate(planted_sum(&|w| w.moves()))),
        )
        .set(
            "arrival_rate",
            Json::Num(rate(planted_sum(&|w| w.arrivals()))),
        )
        .set(
            "departure_rate",
            Json::Num(rate(planted_sum(&|w| w.departures()))),
        )
        .set(
            "renewal_rate",
            Json::Num(rate(planted_sum(&|w| w.renewals()))),
        )
        .set(
            "upgrade_rate",
            Json::Num(rate(planted_sum(&|w| w.upgrades()))),
        )
        // Detected series totals (post-baseline weeks).
        .set(
            "detected_new",
            Json::int(series.churn_total(|d| d.new_hosts) as i64),
        )
        .set(
            "detected_vanished",
            Json::int(series.churn_total(|d| d.vanished_hosts) as i64),
        )
        .set(
            "detected_moved",
            Json::int(series.churn_total(|d| d.moved_hosts) as i64),
        )
        .set(
            "detected_renewed",
            Json::int(series.churn_total(|d| d.renewed_certs) as i64),
        )
        .set(
            "detected_upgrades",
            Json::int(series.churn_total(|d| d.upgrades) as i64),
        )
        .set("cert_sightings", Json::int(certs.sightings as i64))
        .set("distinct_certs", Json::int(certs.distinct as i64))
        .set("intern_hit_rate", Json::Num(certs.hit_rate()))
        .set("determinism_digest", Json::str(format!("{digest:x}")))
        // Lazy-materialization counters for the study above, plus the
        // 16×-universe replay proving per-week cost is a function of
        // the population, not the address space.
        .set("hosts_materialized", Json::int(stats.hosts_materialized))
        .set("keygen_count", Json::int(stats.keygen_count))
        .set(
            "bytes_resident_estimate",
            Json::int(stats.bytes_resident_estimate),
        )
        .set(
            "peak_bytes_resident_estimate",
            Json::int(stats.peak_bytes_resident_estimate),
        )
        .set("scaled_universe_addresses", Json::int(scaled_addresses))
        .set(
            "scaled_hosts_materialized",
            Json::int(scaled_stats.hosts_materialized),
        )
        .set("scaled_keygen_count", Json::int(scaled_stats.keygen_count))
        .set(
            "scaled_scan_seconds_per_week",
            Json::Num(scaled_seconds / f64::from(weeks.max(1))),
        )
        .set("universe_scale_independent", Json::Bool(true));

    let path = write_bench_json("longitudinal", &json);
    println!(
        "longitudinal: {weeks} weeks in {study_seconds:.2}s, \
         {:.0} hosts/s, intern hit rate {:.0}%, wrote {}",
        hosts_scanned as f64 / total_scan.max(1e-9),
        certs.hit_rate() * 100.0,
        path.display()
    );
}
