//! Sweep throughput vs. worker count.
//!
//! Runs the full campaign (zmap-style sweep → probe stack → streamed
//! records) over the same seeded world at every configured worker count,
//! measures wall-clock throughput, and verifies on the way that the
//! records stay byte-identical — the sharding contract CI relies on.
//! A final lazy-materialization run repeats the scan against a
//! [`population::LazyWorld`], asserts the digest still matches, and
//! records the materialization counters so the perf trail shows sweeps
//! paying only for the hosts probes actually reach.
//!
//! ```sh
//! BENCH_HOSTS=300 BENCH_UNIVERSE=20 BENCH_WORKERS=1,2,4,8 \
//!     cargo bench --bench sweep
//! ```
//!
//! Emits `BENCH_sweep.json`.

use bench::{time, write_bench_json, BenchConfig, Json};

fn main() {
    let cfg = BenchConfig::from_env();
    let universe_size = cfg.universe_size();
    println!(
        "sweep bench: {} hosts in {} addresses, workers {:?}",
        cfg.hosts, universe_size, cfg.worker_counts
    );

    let mut runs = Vec::new();
    let mut baseline_seconds = None;
    let mut baseline_digest: Option<String> = None;
    for &workers in &cfg.worker_counts {
        // A fresh identically-seeded world per run: scans advance the
        // virtual clock, and identical worlds keep runs comparable.
        let (net, population) = cfg.build_world();
        let scanner = cfg.scanner(net, workers);
        let (seconds, (summary, records)) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));

        // Cheap order-sensitive digest over the record stream.
        let digest = format!(
            "{}/{}/{:x}",
            records.len(),
            summary.opcua_hosts,
            records.iter().fold(0u64, |acc, r| acc
                .wrapping_mul(1_000_003)
                .wrapping_add(u64::from(r.address.0))
                .wrapping_add(r.rx_bytes))
        );
        match &baseline_digest {
            None => baseline_digest = Some(digest),
            Some(expected) => assert_eq!(
                expected, &digest,
                "sharded scan output diverged at workers={workers}"
            ),
        }

        let addrs_per_sec = universe_size as f64 / seconds;
        let hosts_per_sec = summary.sweep.responsive as f64 / seconds;
        let speedup = baseline_seconds.map(|base: f64| base / seconds);
        if baseline_seconds.is_none() {
            baseline_seconds = Some(seconds);
        }
        println!(
            "  workers={workers}: {seconds:.3}s, {addrs_per_sec:.0} addrs/s, \
             {hosts_per_sec:.0} hosts/s, {} OPC UA hosts{}",
            summary.opcua_hosts,
            speedup
                .map(|s| format!(", speedup {s:.2}x"))
                .unwrap_or_default()
        );
        assert_eq!(summary.opcua_hosts as usize, population.len());
        runs.push(
            Json::obj()
                .set("workers", Json::int(workers as i64))
                .set("seconds", Json::Num(seconds))
                .set("addresses_per_second", Json::Num(addrs_per_sec))
                .set("hosts_per_second", Json::Num(hosts_per_sec))
                .set(
                    "responsive_hosts",
                    Json::int(summary.sweep.responsive as i64),
                )
                .set("probes_sent", Json::int(summary.sweep.probes_sent as i64))
                .set(
                    "speedup_vs_1_worker",
                    speedup.map(Json::Num).unwrap_or(Json::Num(1.0)),
                ),
        );
    }

    // Lazy-materialization run: identical world, but hosts are built on
    // first probe contact. The record digest must match the eager
    // baseline byte-for-byte, and not one host beyond the responsive
    // population may have been materialized.
    let lazy_workers = cfg.worker_counts.first().copied().unwrap_or(1);
    let (lazy_net, lazy_world) = cfg.build_lazy_world();
    let scanner = cfg.scanner(lazy_net, lazy_workers);
    let (lazy_seconds, (lazy_summary, lazy_records)) =
        time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let lazy_digest = format!(
        "{}/{}/{:x}",
        lazy_records.len(),
        lazy_summary.opcua_hosts,
        lazy_records.iter().fold(0u64, |acc, r| acc
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(r.address.0))
            .wrapping_add(r.rx_bytes))
    );
    assert_eq!(
        baseline_digest.as_ref(),
        Some(&lazy_digest),
        "lazy scan output diverged from the eager baseline"
    );
    let stats = lazy_world.stats();
    assert_eq!(
        stats.hosts_materialized, lazy_summary.opcua_hosts,
        "lazy world materialized hosts the scan never reached"
    );
    println!(
        "  lazy (workers={lazy_workers}): {lazy_seconds:.3}s, \
         {} hosts materialized, {} keygens, ~{} bytes resident",
        stats.hosts_materialized, stats.keygen_count, stats.bytes_resident_estimate
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = Json::obj()
        .set("bench", Json::str("sweep"))
        .set("available_parallelism", Json::int(cores as i64))
        .set("hosts", Json::int(cfg.hosts as i64))
        .set("universe_addresses", Json::int(universe_size as i64))
        .set("seed", Json::int(cfg.seed as i64))
        .set("deterministic_across_worker_counts", Json::Bool(true))
        .set("runs", Json::Arr(runs))
        .set(
            "lazy",
            Json::obj()
                .set("workers", Json::int(lazy_workers as i64))
                .set("seconds", Json::Num(lazy_seconds))
                .set("hosts_materialized", Json::int(stats.hosts_materialized))
                .set("keygen_count", Json::int(stats.keygen_count))
                .set(
                    "bytes_resident_estimate",
                    Json::int(stats.bytes_resident_estimate),
                )
                .set(
                    "peak_bytes_resident_estimate",
                    Json::int(stats.peak_bytes_resident_estimate),
                )
                .set("digest_matches_eager", Json::Bool(true)),
        );
    let path = write_bench_json("sweep", &out);
    println!("wrote {}", path.display());
}
