//! Sweep throughput vs. worker count.
//!
//! Runs the full campaign (zmap-style sweep → probe stack → streamed
//! records) over the same seeded world at every configured worker count,
//! measures wall-clock throughput, and verifies on the way that the
//! records stay byte-identical — the sharding contract CI relies on.
//! A lazy-materialization run repeats the scan against a
//! [`population::LazyWorld`], asserts the digest still matches, and
//! records the materialization counters so the perf trail shows sweeps
//! paying only for the hosts probes actually reach.
//! A final event-loop section runs the timer-wheel engine
//! (`scanner::sched`) at a fixed in-flight cap and two worker counts,
//! asserting the digest still matches the threaded baseline and that
//! throughput tracks the in-flight budget, not `ScanConfig::workers`.
//!
//! ```sh
//! BENCH_HOSTS=300 BENCH_UNIVERSE=20 BENCH_WORKERS=1,2,4,8 \
//!     cargo bench --bench sweep
//! ```
//!
//! Emits `BENCH_sweep.json`.

use bench::{time, write_bench_json, BenchConfig, Json};
use netsim::Blocklist;
use scanner::{
    CancelToken, CertStore, EngineStats, ScanConfig, ScanEngine, ScanOutcome, ScanRecord, Scanner,
};

/// Cheap order-sensitive digest over a record stream — any reordering,
/// dropped record, or changed payload shifts it.
fn digest(records: &[ScanRecord], opcua_hosts: u64) -> String {
    format!(
        "{}/{}/{:x}",
        records.len(),
        opcua_hosts,
        records.iter().fold(0u64, |acc, r| acc
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(r.address.0))
            .wrapping_add(r.rx_bytes))
    )
}

/// In-flight window for the event-loop runs: large enough to keep the
/// wheel busy, small enough that the high-water gate means something.
const EVENT_LOOP_CAP: usize = 64;
/// Best-of-N rounds for the event-loop and threaded-reference timings —
/// each round on a fresh identically-seeded world.
const EVENT_LOOP_ROUNDS: usize = 3;

/// Times the event-loop engine at `workers` on fresh worlds. Returns
/// the best-of-N wall-clock seconds plus the (identical every round)
/// digest, record count, and engine counters of the last round.
fn event_loop_run(cfg: &BenchConfig, workers: usize) -> (f64, String, usize, EngineStats) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..EVENT_LOOP_ROUNDS {
        let (net, _population) = cfg.build_world();
        let config = ScanConfig {
            workers,
            engine: ScanEngine::EventLoop,
            max_in_flight: EVENT_LOOP_CAP,
            ..ScanConfig::default()
        };
        let scanner = Scanner::new(net, Blocklist::new(), config);
        let certs = CertStore::new();
        let mut records = Vec::new();
        let (seconds, outcome) = time(|| {
            scanner.scan_resumable(
                &cfg.universe,
                cfg.seed,
                &certs,
                None,
                &CancelToken::new(),
                |r| records.push(r),
            )
        });
        let (summary, engine) = match outcome {
            ScanOutcome::Complete { summary, engine } => (summary, engine),
            ScanOutcome::Aborted { .. } => unreachable!("no cancellation armed"),
        };
        best = best.min(seconds);
        last = Some((digest(&records, summary.opcua_hosts), records.len(), engine));
    }
    let (d, n, engine) = last.expect("at least one round");
    (best, d, n, engine)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let universe_size = cfg.universe_size();
    println!(
        "sweep bench: {} hosts in {} addresses, workers {:?}",
        cfg.hosts, universe_size, cfg.worker_counts
    );

    let mut runs = Vec::new();
    let mut baseline_seconds = None;
    let mut baseline_digest: Option<String> = None;
    for &workers in &cfg.worker_counts {
        // A fresh identically-seeded world per run: scans advance the
        // virtual clock, and identical worlds keep runs comparable.
        let (net, population) = cfg.build_world();
        let scanner = cfg.scanner(net, workers);
        let (seconds, (summary, records)) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));

        let run_digest = digest(&records, summary.opcua_hosts);
        match &baseline_digest {
            None => baseline_digest = Some(run_digest),
            Some(expected) => assert_eq!(
                expected, &run_digest,
                "sharded scan output diverged at workers={workers}"
            ),
        }

        let addrs_per_sec = universe_size as f64 / seconds;
        let hosts_per_sec = summary.sweep.responsive as f64 / seconds;
        let speedup = baseline_seconds.map(|base: f64| base / seconds);
        if baseline_seconds.is_none() {
            baseline_seconds = Some(seconds);
        }
        println!(
            "  workers={workers}: {seconds:.3}s, {addrs_per_sec:.0} addrs/s, \
             {hosts_per_sec:.0} hosts/s, {} OPC UA hosts{}",
            summary.opcua_hosts,
            speedup
                .map(|s| format!(", speedup {s:.2}x"))
                .unwrap_or_default()
        );
        assert_eq!(summary.opcua_hosts as usize, population.len());
        runs.push(
            Json::obj()
                .set("workers", Json::int(workers as i64))
                .set("seconds", Json::Num(seconds))
                .set("addresses_per_second", Json::Num(addrs_per_sec))
                .set("hosts_per_second", Json::Num(hosts_per_sec))
                .set(
                    "responsive_hosts",
                    Json::int(summary.sweep.responsive as i64),
                )
                .set("probes_sent", Json::int(summary.sweep.probes_sent as i64))
                .set(
                    "speedup_vs_1_worker",
                    speedup.map(Json::Num).unwrap_or(Json::Num(1.0)),
                ),
        );
    }

    // Lazy-materialization run: identical world, but hosts are built on
    // first probe contact. The record digest must match the eager
    // baseline byte-for-byte, and not one host beyond the responsive
    // population may have been materialized.
    let lazy_workers = cfg.worker_counts.first().copied().unwrap_or(1);
    let (lazy_net, lazy_world) = cfg.build_lazy_world();
    let scanner = cfg.scanner(lazy_net, lazy_workers);
    let (lazy_seconds, (lazy_summary, lazy_records)) =
        time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let lazy_digest = digest(&lazy_records, lazy_summary.opcua_hosts);
    assert_eq!(
        baseline_digest.as_ref(),
        Some(&lazy_digest),
        "lazy scan output diverged from the eager baseline"
    );
    let stats = lazy_world.stats();
    assert_eq!(
        stats.hosts_materialized, lazy_summary.opcua_hosts,
        "lazy world materialized hosts the scan never reached"
    );
    println!(
        "  lazy (workers={lazy_workers}): {lazy_seconds:.3}s, \
         {} hosts materialized, {} keygens, ~{} bytes resident",
        stats.hosts_materialized, stats.keygen_count, stats.bytes_resident_estimate
    );

    // Event-loop engine: the single-threaded timer wheel must produce
    // the threaded digest at any worker count (the knob is inert for
    // this engine — throughput tracks the in-flight cap instead), and
    // it must not lose to the 1-worker threaded reference it replaces.
    let el_low_workers = cfg.worker_counts.first().copied().unwrap_or(1);
    let el_high_workers = cfg.worker_counts.last().copied().unwrap_or(4).max(2);
    let mut el_runs = Vec::new();
    let mut el_best_seconds = f64::INFINITY;
    let mut el_engine = EngineStats::default();
    for workers in [el_low_workers, el_high_workers] {
        let (seconds, el_digest, n_records, engine) = event_loop_run(&cfg, workers);
        assert_eq!(
            baseline_digest.as_ref(),
            Some(&el_digest),
            "event-loop output diverged from the threaded baseline at workers={workers}"
        );
        assert!(
            engine.in_flight_high_water <= EVENT_LOOP_CAP,
            "in-flight window overran the cap: {} > {EVENT_LOOP_CAP}",
            engine.in_flight_high_water
        );
        let records_per_sec = n_records as f64 / seconds;
        println!(
            "  event_loop (workers={workers}, cap {EVENT_LOOP_CAP}): {seconds:.3}s, \
             {records_per_sec:.0} records/s, high water {}, {} cascades",
            engine.in_flight_high_water, engine.wheel_cascades
        );
        el_best_seconds = el_best_seconds.min(seconds);
        el_engine = engine;
        el_runs.push(
            Json::obj()
                .set("workers", Json::int(workers as i64))
                .set("seconds", Json::Num(seconds))
                .set("records_per_second", Json::Num(records_per_sec))
                .set(
                    "addresses_per_second",
                    Json::Num(universe_size as f64 / seconds),
                ),
        );
    }
    // Re-time the 1-worker threaded reference best-of-N so the engine
    // comparison is noise-robust on both sides (world construction
    // stays outside the timed region, as everywhere above).
    let mut threaded_1w_seconds = f64::INFINITY;
    for _ in 0..EVENT_LOOP_ROUNDS {
        let (net, _population) = cfg.build_world();
        let scanner = cfg.scanner(net, 1);
        let (seconds, _) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
        threaded_1w_seconds = threaded_1w_seconds.min(seconds);
    }
    println!(
        "  threaded reference (workers=1, best of {EVENT_LOOP_ROUNDS}): \
         {threaded_1w_seconds:.3}s → event loop speedup {:.2}x",
        threaded_1w_seconds / el_best_seconds
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = Json::obj()
        .set("bench", Json::str("sweep"))
        .set("available_parallelism", Json::int(cores as i64))
        .set("hosts", Json::int(cfg.hosts as i64))
        .set("universe_addresses", Json::int(universe_size as i64))
        .set("seed", Json::int(cfg.seed as i64))
        .set("deterministic_across_worker_counts", Json::Bool(true))
        .set("runs", Json::Arr(runs))
        .set(
            "lazy",
            Json::obj()
                .set("workers", Json::int(lazy_workers as i64))
                .set("seconds", Json::Num(lazy_seconds))
                .set("hosts_materialized", Json::int(stats.hosts_materialized))
                .set("keygen_count", Json::int(stats.keygen_count))
                .set(
                    "bytes_resident_estimate",
                    Json::int(stats.bytes_resident_estimate),
                )
                .set(
                    "peak_bytes_resident_estimate",
                    Json::int(stats.peak_bytes_resident_estimate),
                )
                .set("digest_matches_eager", Json::Bool(true)),
        )
        .set(
            "event_loop",
            Json::obj()
                .set("max_in_flight", Json::int(EVENT_LOOP_CAP as i64))
                .set("rounds", Json::int(EVENT_LOOP_ROUNDS as i64))
                .set("runs", Json::Arr(el_runs))
                .set("digest_matches_threaded", Json::Bool(true))
                .set(
                    "in_flight_high_water",
                    Json::int(el_engine.in_flight_high_water as i64),
                )
                .set("timer_cascades", Json::int(el_engine.wheel_cascades as i64))
                .set("timers_fired", Json::int(el_engine.timers_fired as i64))
                .set("threaded_1worker_seconds", Json::Num(threaded_1w_seconds))
                .set(
                    "speedup_vs_threaded_1worker",
                    Json::Num(threaded_1w_seconds / el_best_seconds),
                ),
        );
    let path = write_bench_json("sweep", &out);
    println!("wrote {}", path.display());
}
