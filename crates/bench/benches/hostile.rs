//! Hostile-network sweep: recovery vs planted truth, retry cost vs a
//! polite single-attempt baseline, and determinism under fire.
//!
//! A [`MiddleboxPlan`] (hostile preset) lays loss, flaky stacks,
//! tarpits, and rate-limiting firewalls over the bench world; the
//! scanner runs with [`RetryPolicy::hostile`]. Because the plan replays
//! the exact fate sequence a retrying scanner sees, the bench can
//! assert — not sample — that every recoverable swept host is
//! recovered and every write-off is classified to match its planted
//! fate, at every worker count and on both engines, byte-identically.
//!
//! ```sh
//! BENCH_HOSTS=300 BENCH_UNIVERSE=20 BENCH_WORKERS=1,2,4,8 \
//!     cargo bench --bench hostile
//! ```
//!
//! Emits `BENCH_hostile.json`.

use std::sync::Arc;

use bench::{time, write_bench_json, BenchConfig, Json};
use netsim::{Blocklist, Internet};
use population::{FaultStratum, MiddleboxConfig, MiddleboxPlan, Population};
use scanner::{HostOutcome, RetryPolicy, ScanConfig, ScanEngine, ScanRecord, ScanSummary, Scanner};

/// Order-sensitive digest over a record stream (same fold as the sweep
/// bench) — any reordering, dropped record, or changed payload shifts
/// it.
fn digest(records: &[ScanRecord], opcua_hosts: u64) -> String {
    format!(
        "{}/{}/{:x}",
        records.len(),
        opcua_hosts,
        records.iter().fold(0u64, |acc, r| acc
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(r.address.0))
            .wrapping_add(r.rx_bytes))
    )
}

/// A fresh identically-seeded world with the hostile plan installed.
fn hostile_world(cfg: &BenchConfig) -> (Internet, Population, MiddleboxPlan) {
    let (net, population) = cfg.build_world();
    let plan = MiddleboxPlan::plan(&population, &MiddleboxConfig::hostile(), cfg.seed);
    net.set_profiles(Arc::new(plan.clone()));
    (net, population, plan)
}

fn scanner_with(net: Internet, workers: usize, engine: ScanEngine, retry: RetryPolicy) -> Scanner {
    let config = ScanConfig {
        workers,
        engine,
        retry,
        ..ScanConfig::default()
    };
    Scanner::new(net, Blocklist::new(), config)
}

/// Checks the scan against the plan's replay over the *swept* planted
/// hosts (referral-only strata ride behind possibly-unrecoverable LDS
/// announcers, so their reachability is not the retry layer's claim).
/// Returns (recoverable, recovered, misclassified).
fn recovery_vs_truth(
    population: &Population,
    plan: &MiddleboxPlan,
    records: &[ScanRecord],
    budget: u32,
) -> (usize, usize, usize) {
    let by_addr: std::collections::BTreeMap<u32, HostOutcome> =
        records.iter().map(|r| (r.address.0, r.outcome)).collect();
    let mut recoverable = 0;
    let mut recovered = 0;
    let mut misclassified = 0;
    for host in population.hosts.iter().filter(|h| !h.class.referral_only()) {
        let outcome = by_addr.get(&host.address.0).copied();
        if plan.recoverable(host.address, budget) {
            recoverable += 1;
            if outcome == Some(HostOutcome::Ok) {
                recovered += 1;
            }
        } else {
            let want = match plan.terminal_fate(host.address, budget) {
                netsim::ConnectFate::Deliver => HostOutcome::Ok,
                netsim::ConnectFate::SynLost => HostOutcome::TimedOut,
                netsim::ConnectFate::Throttled { .. } => HostOutcome::Throttled,
                netsim::ConnectFate::Tarpit(_) => HostOutcome::Tarpitted,
            };
            if outcome != Some(want) {
                misclassified += 1;
            }
        }
    }
    (recoverable, recovered, misclassified)
}

fn faults_json(summary: &ScanSummary) -> Json {
    let f = summary.faults;
    Json::obj()
        .set("ok", Json::int(f.ok as i64))
        .set("unreachable", Json::int(f.unreachable as i64))
        .set("timed_out", Json::int(f.timed_out as i64))
        .set("throttled", Json::int(f.throttled as i64))
        .set("tarpitted", Json::int(f.tarpitted as i64))
        .set("retried_hosts", Json::int(f.retried_hosts as i64))
        .set("connect_attempts", Json::int(f.connect_attempts as i64))
        .set("backoff_micros", Json::int(f.backoff_micros as i64))
}

fn main() {
    let cfg = BenchConfig::from_env();
    let budget = RetryPolicy::hostile().max_attempts;
    println!(
        "hostile bench: {} hosts in {} addresses, workers {:?}, retry budget {budget}",
        cfg.hosts,
        cfg.universe_size(),
        cfg.worker_counts
    );

    // Hostile sweep at every worker count: byte-identical, and checked
    // against the planted truth each time.
    let mut runs = Vec::new();
    let mut baseline_digest: Option<String> = None;
    let mut hostile_seconds = f64::INFINITY;
    let mut hostile_summary: Option<ScanSummary> = None;
    let mut truth = (0usize, 0usize, 0usize);
    for &workers in &cfg.worker_counts {
        let (net, population, plan) = hostile_world(&cfg);
        let scanner = scanner_with(net, workers, ScanEngine::Threaded, RetryPolicy::hostile());
        let (seconds, (summary, records)) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
        let run_digest = digest(&records, summary.opcua_hosts);
        match &baseline_digest {
            None => baseline_digest = Some(run_digest.clone()),
            Some(expected) => assert_eq!(
                expected, &run_digest,
                "hostile scan output diverged at workers={workers}"
            ),
        }
        truth = recovery_vs_truth(&population, &plan, &records, budget);
        let (recoverable, recovered, misclassified) = truth;
        assert_eq!(
            recovered, recoverable,
            "retry layer failed to recover every recoverable planted host"
        );
        assert_eq!(misclassified, 0, "write-offs misclassified vs planted fate");
        println!(
            "  workers={workers}: {seconds:.3}s, {} records, {}/{} recoverable recovered, \
             {} retried hosts, {:.1}s virtual backoff",
            records.len(),
            recovered,
            recoverable,
            summary.faults.retried_hosts,
            summary.faults.backoff_micros as f64 / 1e6,
        );
        hostile_seconds = hostile_seconds.min(seconds);
        hostile_summary = Some(summary);
        runs.push(
            Json::obj()
                .set("workers", Json::int(workers as i64))
                .set("seconds", Json::Num(seconds))
                .set("digest", Json::str(&run_digest)),
        );
    }
    // ua-lint: allow(panic-hygiene) -- BENCH_WORKERS always yields at least one run
    let hostile_summary = hostile_summary.expect("at least one worker count");
    let (recoverable, recovered, _) = truth;

    // Event-loop engine under fire: same bytes as the threaded runs.
    let (net, _, _) = hostile_world(&cfg);
    let scanner = scanner_with(net, 1, ScanEngine::EventLoop, RetryPolicy::hostile());
    let (el_seconds, (el_summary, el_records)) =
        time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let el_digest = digest(&el_records, el_summary.opcua_hosts);
    assert_eq!(
        baseline_digest.as_ref(),
        Some(&el_digest),
        "event-loop hostile output diverged from the threaded baseline"
    );
    println!("  event_loop: {el_seconds:.3}s, digest matches threaded");

    // Polite single-attempt baseline on the same hostile world: what a
    // pre-retry scanner would have reported, and what the retry layer
    // costs on top of it.
    let polite_workers = cfg.worker_counts.first().copied().unwrap_or(1);
    let (net, _, _) = hostile_world(&cfg);
    let scanner = scanner_with(
        net,
        polite_workers,
        ScanEngine::Threaded,
        RetryPolicy::default(),
    );
    let (polite_seconds, (polite_summary, _)) =
        time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let undercount = hostile_summary.faults.ok - polite_summary.faults.ok;
    assert!(
        undercount > 0,
        "the hostile preset must make a single-attempt scanner undercount"
    );
    println!(
        "  polite baseline (workers={polite_workers}): {polite_seconds:.3}s, \
         {} ok vs {} with retries (+{undercount}), retry overhead {:.2}x wall",
        polite_summary.faults.ok,
        hostile_summary.faults.ok,
        hostile_seconds / polite_seconds,
    );

    // Planted strata, for the perf trail's context.
    let (_, _, plan) = hostile_world(&cfg);
    let mut strata = Json::obj();
    for stratum in FaultStratum::ALL {
        strata = strata.set(
            stratum.label(),
            Json::int(plan.stratum_count(stratum) as i64),
        );
    }

    let out = Json::obj()
        .set("bench", Json::str("hostile"))
        .set("hosts", Json::int(cfg.hosts as i64))
        .set("universe_addresses", Json::int(cfg.universe_size() as i64))
        .set("seed", Json::int(cfg.seed as i64))
        .set("retry_budget", Json::int(budget as i64))
        .set("deterministic_across_worker_counts", Json::Bool(true))
        .set("event_loop_digest_matches_threaded", Json::Bool(true))
        .set("recoverable_swept_hosts", Json::int(recoverable as i64))
        .set("recovered_swept_hosts", Json::int(recovered as i64))
        .set(
            "recovery_rate",
            Json::Num(if recoverable == 0 {
                1.0
            } else {
                recovered as f64 / recoverable as f64
            }),
        )
        .set("planted_strata", strata)
        .set("faults", faults_json(&hostile_summary))
        .set(
            "polite_baseline",
            Json::obj()
                .set("ok", Json::int(polite_summary.faults.ok as i64))
                .set("undercount_fixed_by_retries", Json::int(undercount as i64))
                .set("seconds", Json::Num(polite_seconds)),
        )
        .set("hostile_seconds", Json::Num(hostile_seconds))
        .set(
            "retry_overhead_wall_ratio",
            Json::Num(hostile_seconds / polite_seconds),
        )
        .set("runs", Json::Arr(runs));
    let path = write_bench_json("hostile", &out);
    println!("wrote {}", path.display());
}
