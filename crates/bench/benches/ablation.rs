//! Ablation: batch GCD vs. naive pairwise GCD for shared-prime detection
//! (Heninger et al.'s optimization, which the paper applies to OPC UA
//! certificates).
//!
//! Both detectors run over the same campaign moduli; the bench asserts
//! they find the same shared factors and reports the speedup. Throughput
//! is also measured end-to-end: full pipeline with assessment, batch vs.
//! pairwise finalization.
//!
//! ```sh
//! BENCH_HOSTS=300 cargo bench --bench ablation
//! ```
//!
//! Emits `BENCH_ablation.json`.

use bench::{
    campaign_moduli, campaign_modulus_sightings, time, time_min, write_bench_json, BenchConfig,
    Json,
};
use ua_crypto::{batch_gcd, find_shared_factors, pairwise_shared_factors};

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, _population) = cfg.build_world();
    let scanner = cfg.scanner(net, 1);
    let (_, records) = scanner.scan_collect(&cfg.universe, cfg.seed);

    // The deduplicated moduli exactly as the assessor accumulates them.
    let moduli = campaign_moduli(&records);
    // And the raw sighting multiset a dedup-unaware pipeline would feed.
    let sightings = campaign_modulus_sightings(&records);
    println!(
        "ablation bench: {} distinct moduli ({} sightings)",
        moduli.len(),
        sightings.len()
    );
    assert!(moduli.len() > 2, "need moduli to compare detectors");
    assert!(sightings.len() >= moduli.len());

    let (batch_seconds, batch_hits) = time(|| find_shared_factors(&moduli));
    let (pairwise_seconds, pairwise_hits) = time(|| pairwise_shared_factors(&moduli));

    // Same findings, order-insensitively.
    let normalize = |hits: &[ua_crypto::SharedFactor]| {
        let mut pairs: Vec<(usize, usize)> =
            hits.iter().map(|h| (h.a.min(h.b), h.a.max(h.b))).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    };
    let batch_pairs = normalize(&batch_hits);
    let pairwise_pairs = normalize(&pairwise_hits);
    assert_eq!(
        batch_pairs, pairwise_pairs,
        "batch GCD and pairwise GCD must find the same shared primes"
    );

    let speedup = pairwise_seconds / batch_seconds.max(1e-12);
    println!(
        "  batch    {:>10.3} ms  ({} hits)",
        batch_seconds * 1e3,
        batch_pairs.len()
    );
    println!(
        "  pairwise {:>10.3} ms  ({} hits)  → batch speedup {speedup:.1}x",
        pairwise_seconds * 1e3,
        pairwise_pairs.len()
    );

    // What certificate interning buys the GCD stage: the same tree over
    // the deduplicated moduli vs. the raw per-sighting multiset.
    // Minimum-of-5 timing keeps the comparison meaningful on noisy CI
    // hardware.
    let (dedup_tree_seconds, dedup_rems) = time_min(5, || batch_gcd(&moduli));
    let (sightings_tree_seconds, sighting_rems) = time_min(5, || batch_gcd(&sightings));
    assert_eq!(dedup_rems.len(), moduli.len());
    assert_eq!(sighting_rems.len(), sightings.len());
    let dedup_speedup = sightings_tree_seconds / dedup_tree_seconds.max(1e-12);
    println!(
        "  gcd tree deduplicated {:>8.3} ms vs all sightings {:>8.3} ms  → dedup {dedup_speedup:.1}x",
        dedup_tree_seconds * 1e3,
        sightings_tree_seconds * 1e3,
    );

    let moduli_per_second = moduli.len() as f64 / batch_seconds.max(1e-12);
    let out = Json::obj()
        .set("bench", Json::str("ablation"))
        .set("distinct_moduli", Json::int(moduli.len() as i64))
        .set("total_cert_sightings", Json::int(sightings.len() as i64))
        .set("shared_prime_hits", Json::int(batch_pairs.len() as i64))
        .set("batch_gcd_seconds", Json::Num(batch_seconds))
        .set("pairwise_gcd_seconds", Json::Num(pairwise_seconds))
        .set("batch_moduli_per_second", Json::Num(moduli_per_second))
        .set("batch_speedup_vs_pairwise", Json::Num(speedup))
        .set("batch_gcd_dedup_seconds", Json::Num(dedup_tree_seconds))
        .set(
            "batch_gcd_all_sightings_seconds",
            Json::Num(sightings_tree_seconds),
        )
        .set("dedup_speedup", Json::Num(dedup_speedup))
        .set("detectors_agree", Json::Bool(true));
    let path = write_bench_json("ablation", &out);
    println!("wrote {}", path.display());
}
