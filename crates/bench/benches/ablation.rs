fn main() {}
