//! Multi-protocol campaign: per-suite throughput over one sweep
//! engine, TLS deficit columns vs planted truth, and digest identity
//! across engines and worker counts.
//!
//! The bench world is the usual paper-like OPC UA population plus
//! [`MultiProtoPlan`]'s TLS-wrapped strata on the `uat-tls` port; one
//! campaign drives both suites (each with vendor fingerprinting). The
//! digest asserts — not samples — that the two-suite record stream is
//! byte-stable at every worker count and on both engines.
//!
//! ```sh
//! BENCH_HOSTS=300 BENCH_UNIVERSE=20 BENCH_WORKERS=1,2,4,8 \
//!     cargo bench --bench multiproto
//! ```
//!
//! Emits `BENCH_multiproto.json`.

use std::collections::BTreeMap;
use std::sync::Arc;

use assessment::{assess, Deficit};
use bench::{time, write_bench_json, BenchConfig, Json};
use netsim::{Blocklist, Internet};
use population::{MultiProtoConfig, MultiProtoPlan, TlsClass};
use scanner::{
    OpcUaSuite, ProtocolPayload, ScanConfig, ScanEngine, ScanRecord, Scanner, UatTlsSuite,
    DEFAULT_OPCUA_PORT, DEFAULT_UATLS_PORT,
};

/// Order-sensitive digest over a record stream (same fold as the sweep
/// and hostile benches) — any reordering, dropped record, or changed
/// payload shifts it.
fn digest(records: &[ScanRecord], opcua_hosts: u64) -> String {
    format!(
        "{}/{}/{:x}",
        records.len(),
        opcua_hosts,
        records.iter().fold(0u64, |acc, r| acc
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(r.address.0))
            .wrapping_add(r.rx_bytes))
    )
}

/// TLS strata scaled to the bench size (at least one host per class).
fn tls_config(cfg: &BenchConfig) -> MultiProtoConfig {
    MultiProtoConfig {
        secure: cfg.hosts / 10 + 1,
        anonymous_inner: cfg.hosts / 15 + 1,
        expired_cert: cfg.hosts / 20 + 1,
        ..MultiProtoConfig::default()
    }
}

/// A fresh identically-seeded two-protocol world per measured run.
fn two_protocol_world(cfg: &BenchConfig) -> (Internet, MultiProtoPlan) {
    let (net, _) = cfg.build_world();
    let plan = MultiProtoPlan::deploy(&net, &cfg.universe, &tls_config(cfg), cfg.seed);
    (net, plan)
}

fn two_suite_scanner(net: Internet, workers: usize, engine: ScanEngine) -> Scanner {
    let config = ScanConfig::builder()
        .workers(workers)
        .engine(engine)
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .build()
        .expect("valid two-suite config");
    Scanner::new(net, Blocklist::new(), config)
}

/// Records per suite label. Exhaustive on purpose: a new suite must
/// force this tally to account for its records (ua-lint rejects `_`).
fn per_suite_counts(records: &[ScanRecord]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for r in records {
        let label = match &r.payload {
            ProtocolPayload::OpcUa(_) => "opcua",
            ProtocolPayload::UatTls(_) => "uat-tls",
        };
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

fn main() {
    let cfg = BenchConfig::from_env();
    let tls = tls_config(&cfg);
    println!(
        "multiproto bench: {} opcua hosts + {} uat-tls hosts in {} addresses, workers {:?}",
        cfg.hosts,
        tls.total(),
        cfg.universe_size(),
        cfg.worker_counts
    );

    // Two-suite campaign at every worker count: byte-identical digest,
    // per-suite throughput from the fastest run.
    let mut runs = Vec::new();
    let mut baseline_digest: Option<String> = None;
    let mut best_seconds = f64::INFINITY;
    let mut suite_counts = BTreeMap::new();
    let mut last_records = Vec::new();
    for &workers in &cfg.worker_counts {
        let (net, _) = two_protocol_world(&cfg);
        let scanner = two_suite_scanner(net, workers, ScanEngine::Threaded);
        let (seconds, (summary, records)) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
        let run_digest = digest(&records, summary.opcua_hosts);
        match &baseline_digest {
            None => baseline_digest = Some(run_digest.clone()),
            Some(expected) => assert_eq!(
                expected, &run_digest,
                "two-suite scan output diverged at workers={workers}"
            ),
        }
        suite_counts = per_suite_counts(&records);
        println!(
            "  workers={workers}: {seconds:.3}s, {} records ({} opcua, {} uat-tls)",
            records.len(),
            suite_counts.get("opcua").copied().unwrap_or(0),
            suite_counts.get("uat-tls").copied().unwrap_or(0),
        );
        best_seconds = best_seconds.min(seconds);
        last_records = records;
        runs.push(
            Json::obj()
                .set("workers", Json::int(workers as i64))
                .set("seconds", Json::Num(seconds))
                .set("digest", Json::str(&run_digest)),
        );
    }

    // Event-loop engine: same bytes as the threaded runs.
    let (net, _) = two_protocol_world(&cfg);
    let scanner = two_suite_scanner(net, 1, ScanEngine::EventLoop);
    let (el_seconds, (el_summary, el_records)) =
        time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let el_digest = digest(&el_records, el_summary.opcua_hosts);
    assert_eq!(
        baseline_digest.as_ref(),
        Some(&el_digest),
        "event-loop two-suite output diverged from the threaded baseline"
    );
    println!("  event_loop: {el_seconds:.3}s, digest matches threaded");

    // TLS deficit columns against the planted strata.
    let (_, plan) = two_protocol_world(&cfg);
    let report = assess(&last_records);
    assert_eq!(
        report.count(Deficit::TlsButAnonymous),
        plan.expected_tls_anonymous(),
        "TLS-but-anonymous column diverged from the planted stratum"
    );
    assert_eq!(
        report.count(Deficit::TlsExpiredCert),
        plan.expected_tls_expired(),
        "TLS-cert-expired column diverged from the planted stratum"
    );

    let mut per_suite = Json::obj();
    for (label, count) in &suite_counts {
        assert!(*count > 0, "suite {label} produced no records");
        per_suite = per_suite.set(
            label,
            Json::obj().set("records", Json::int(*count as i64)).set(
                "records_per_second",
                Json::Num(*count as f64 / best_seconds),
            ),
        );
    }
    let mut strata = Json::obj();
    for class in TlsClass::ALL {
        strata = strata.set(class.label(), Json::int(plan.count(class) as i64));
    }

    let out = Json::obj()
        .set("bench", Json::str("multiproto"))
        .set("opcua_hosts", Json::int(cfg.hosts as i64))
        .set("uattls_hosts", Json::int(tls.total() as i64))
        .set("universe_addresses", Json::int(cfg.universe_size() as i64))
        .set("seed", Json::int(cfg.seed as i64))
        .set("deterministic_across_worker_counts", Json::Bool(true))
        .set("event_loop_digest_matches_threaded", Json::Bool(true))
        .set(
            "tls_but_anonymous",
            Json::int(report.count(Deficit::TlsButAnonymous) as i64),
        )
        .set(
            "tls_cert_expired",
            Json::int(report.count(Deficit::TlsExpiredCert) as i64),
        )
        .set("planted_strata", strata)
        .set("per_suite", per_suite)
        .set("best_seconds", Json::Num(best_seconds))
        .set("event_loop_seconds", Json::Num(el_seconds))
        .set("runs", Json::Arr(runs));
    let path = write_bench_json("multiproto", &out);
    println!("wrote {}", path.display());
}
