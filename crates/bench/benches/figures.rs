//! Figure/table reproduction: runs the full pipeline on a paper-like
//! population and emits the study's headline tables — security-mode,
//! policy, and identity-token distributions (Table 2), the deficit
//! shares (§5), and the session-stage outcomes — next to the paper's
//! published shares for eyeballing drift.
//!
//! ```sh
//! BENCH_HOSTS=500 cargo bench --bench figures
//! ```
//!
//! Emits `BENCH_figures.json`.

use assessment::{assess, Deficit};
use bench::{counts_to_json, time, write_bench_json, BenchConfig, Json};

/// The paper's headline shares (of OPC UA hosts), for side-by-side
/// comparison in the emitted JSON.
const PAPER_SHARES: [(Deficit, f64); 5] = [
    (Deficit::OnlyNoneMode, 0.24),
    (Deficit::DeprecatedPolicy, 0.45),
    (Deficit::AnonymousAccess, 0.50),
    (Deficit::SelfSignedCertificate, 0.99),
    (Deficit::SharedPrimeKey, 0.0),
];

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, population) = cfg.build_world();
    let scanner = cfg.scanner(net, 1);
    let (scan_seconds, (summary, records)) = time(|| scanner.scan_collect(&cfg.universe, cfg.seed));
    let (assess_seconds, report) = time(|| assess(&records));

    println!(
        "figures bench: {} deployments, {} OPC UA hosts, scan {scan_seconds:.2}s, assess {assess_seconds:.3}s",
        population.len(),
        report.hosts
    );
    println!("{report}");

    let mut deficits = Json::obj();
    for d in Deficit::ALL {
        deficits = deficits.set(
            d.label(),
            Json::obj()
                .set("hosts", Json::int(report.count(d) as i64))
                .set("share", Json::Num(report.share(d))),
        );
    }

    let mut paper = Json::obj();
    for (d, share) in PAPER_SHARES {
        paper = paper.set(
            d.label(),
            Json::obj()
                .set("paper_share", Json::Num(share))
                .set("measured_share", Json::Num(report.share(d))),
        );
    }

    let mut modes = std::collections::BTreeMap::new();
    for (mode, n) in &report.mode_distribution {
        modes.insert(mode.abbrev().to_string(), *n);
    }
    let mut policies = std::collections::BTreeMap::new();
    for (policy, n) in &report.policy_distribution {
        policies.insert(policy.abbrev().to_string(), *n);
    }
    let mut tokens = std::collections::BTreeMap::new();
    for (token, n) in &report.token_distribution {
        tokens.insert(token.label().to_string(), *n);
    }

    let out = Json::obj()
        .set("bench", Json::str("figures"))
        .set("deployments", Json::int(population.len() as i64))
        .set("opcua_hosts", Json::int(report.hosts as i64))
        .set(
            "discovery_servers",
            Json::int(report.discovery_servers as i64),
        )
        .set("probes_sent", Json::int(summary.sweep.probes_sent as i64))
        .set("scan_seconds", Json::Num(scan_seconds))
        .set("assess_seconds", Json::Num(assess_seconds))
        .set("mode_distribution", counts_to_json(&modes))
        .set("policy_distribution", counts_to_json(&policies))
        .set("token_distribution", counts_to_json(&tokens))
        .set(
            "sessions",
            Json::obj()
                .set(
                    "anonymous_activated",
                    Json::int(report.sessions.anonymous_activated as i64),
                )
                .set(
                    "auth_rejected",
                    Json::int(report.sessions.auth_rejected as i64),
                )
                .set(
                    "channel_rejected",
                    Json::int(report.sessions.channel_rejected as i64),
                )
                .set(
                    "protocol_error",
                    Json::int(report.sessions.protocol_error as i64),
                )
                .set(
                    "not_attempted",
                    Json::int(report.sessions.not_attempted as i64),
                ),
        )
        .set("deficits", deficits)
        .set("paper_comparison", paper)
        .set(
            "reuse_clusters",
            Json::Arr(
                report
                    .reuse_clusters
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .set("thumbprint", Json::str(&c.thumbprint_hex[..16]))
                            .set("hosts", Json::int(c.hosts.len() as i64))
                    })
                    .collect(),
            ),
        );
    let path = write_bench_json("figures", &out);
    println!("wrote {}", path.display());
}
