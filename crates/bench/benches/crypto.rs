//! Crypto-layer benchmarks and the perf gate for the Montgomery /
//! Karatsuba / interning work:
//!
//! * 2048-bit `mod_pow`: the Montgomery windowed path
//!   (`BigUint::mod_pow`) against the legacy square-and-multiply path
//!   (`BigUint::mod_pow_legacy`) — both stay measurable, and CI fails
//!   if Montgomery is ever slower;
//! * Karatsuba vs. schoolbook multiplication at product-tree sizes;
//! * SHA-1 thumbprinting and DER parse throughput over the campaign's
//!   certificates;
//! * batch GCD over the deduplicated campaign moduli;
//! * certificate-interning hit rate: total sightings vs. distinct DERs
//!   as counted by the campaign's `CertStore`.
//!
//! ```sh
//! BENCH_HOSTS=300 cargo bench --bench crypto
//! ```
//!
//! Emits `BENCH_crypto.json`.

use bench::{campaign_moduli, time, time_min, write_bench_json, BenchConfig, Json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ua_crypto::{batch_gcd, find_shared_factors, sha1, BigUint, Certificate};

/// Modulus width for the mod_pow gate — the paper's dominant real-world
/// RSA key length (Figure 4).
const MOD_POW_BITS: usize = 2048;

fn env_rounds(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(default)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, _population) = cfg.build_world();
    let scanner = cfg.scanner(net, 1);
    let (summary, records) = scanner.scan_collect(&cfg.universe, cfg.seed);

    // --- mod_pow: Montgomery windowed vs. legacy square-and-multiply ---
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6d6f_6e74);
    let mut modulus = BigUint::random_bits(&mut rng, MOD_POW_BITS);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let base = BigUint::random_below(&mut rng, &modulus);
    let exponent = BigUint::random_bits(&mut rng, MOD_POW_BITS);
    let rounds = env_rounds("BENCH_MODPOW_ROUNDS", 3);

    // Minimum-of-N timing: per-op seconds robust against CI noise.
    let (legacy_seconds, legacy_result) =
        time_min(rounds, || base.mod_pow_legacy(&exponent, &modulus));
    let (mont_seconds, mont_result) = time_min(rounds, || base.mod_pow(&exponent, &modulus));
    assert_eq!(
        legacy_result, mont_result,
        "Montgomery and legacy mod_pow must agree"
    );
    let mod_pow_speedup = legacy_seconds / mont_seconds.max(1e-12);

    // --- Karatsuba vs. schoolbook at product-tree operand sizes ---
    let a = BigUint::random_bits(&mut rng, 16 * 1024);
    let b = BigUint::random_bits(&mut rng, 16 * 1024);
    let mul_rounds = env_rounds("BENCH_MUL_ROUNDS", 20);
    let (school_seconds, school_product) = time_min(mul_rounds, || a.mul_schoolbook(&b));
    let (kara_seconds, kara_product) = time_min(mul_rounds, || a.mul(&b));
    assert_eq!(school_product, kara_product);
    let karatsuba_speedup = school_seconds / kara_seconds.max(1e-12);

    // --- Campaign certificates: hashing / parsing throughput ---
    let ders: Vec<Vec<u8>> = records
        .iter()
        .flat_map(|r| {
            r.certificates()
                .into_iter()
                .map(|c| c.der().to_vec())
                .collect::<Vec<_>>()
        })
        .collect();
    let der_bytes: usize = ders.iter().map(Vec::len).sum();
    assert!(!ders.is_empty(), "population must deliver certificates");

    const HASH_ROUNDS: usize = 200;
    let (sha_seconds, _) = time(|| {
        let mut acc = 0u8;
        for _ in 0..HASH_ROUNDS {
            for der in &ders {
                acc ^= sha1(der)[0];
            }
        }
        acc
    });
    let sha_mib_per_sec = (der_bytes * HASH_ROUNDS) as f64 / (1024.0 * 1024.0) / sha_seconds;

    const PARSE_ROUNDS: usize = 50;
    let (parse_seconds, parsed) = time(|| {
        let mut ok = 0usize;
        for _ in 0..PARSE_ROUNDS {
            ok += ders
                .iter()
                .filter(|der| Certificate::from_der(der).is_ok())
                .count();
        }
        ok
    });
    let certs_per_sec = parsed as f64 / parse_seconds;

    // --- Batch GCD over the deduplicated moduli ---
    let moduli = campaign_moduli(&records);
    let (tree_seconds, remainders) = time(|| batch_gcd(&moduli));
    let (scan_seconds, hits) = time(|| find_shared_factors(&moduli));
    assert_eq!(remainders.len(), moduli.len());

    // --- Interning observability (the §5.2 reuse factor) ---
    let interning = summary.certs;
    assert!(interning.sightings >= interning.distinct);
    assert!(interning.distinct > 0);

    println!(
        "crypto bench: {} cert sightings, {} distinct ({}% intern hit rate), {} distinct moduli",
        interning.sightings,
        interning.distinct,
        (interning.hit_rate() * 100.0).round(),
        moduli.len()
    );
    println!(
        "  mod_pow {MOD_POW_BITS}-bit  legacy {:>8.1} ms/op, montgomery {:>7.2} ms/op  → {mod_pow_speedup:.1}x",
        legacy_seconds * 1e3,
        mont_seconds * 1e3,
    );
    println!(
        "  mul 16k-bit     schoolbook {:>6.2} ms/op, karatsuba {:>6.2} ms/op  → {karatsuba_speedup:.1}x",
        school_seconds * 1e3,
        kara_seconds * 1e3,
    );
    println!("  sha1        {sha_mib_per_sec:>10.1} MiB/s");
    println!("  der parse   {certs_per_sec:>10.0} certs/s");
    println!(
        "  batch gcd   {:>10.3} ms tree + {:.3} ms factor scan, {} shared-prime hits",
        tree_seconds * 1e3,
        scan_seconds * 1e3,
        hits.len()
    );

    let out = Json::obj()
        .set("bench", Json::str("crypto"))
        .set("mod_pow_bits", Json::int(MOD_POW_BITS as i64))
        .set("mod_pow_rounds", Json::int(rounds as i64))
        .set("mod_pow_legacy_seconds", Json::Num(legacy_seconds))
        .set("mod_pow_montgomery_seconds", Json::Num(mont_seconds))
        .set("mod_pow_speedup", Json::Num(mod_pow_speedup))
        .set("mod_pow_paths_agree", Json::Bool(true))
        .set("karatsuba_speedup", Json::Num(karatsuba_speedup))
        .set("cert_sightings", Json::int(interning.sightings as i64))
        .set("distinct_certs", Json::int(interning.distinct as i64))
        .set("intern_hit_rate", Json::Num(interning.hit_rate()))
        .set("certificate_bytes", Json::int(der_bytes as i64))
        .set("distinct_moduli", Json::int(moduli.len() as i64))
        .set("sha1_mib_per_second", Json::Num(sha_mib_per_sec))
        .set("der_parse_certs_per_second", Json::Num(certs_per_sec))
        .set("batch_gcd_seconds", Json::Num(tree_seconds))
        .set("shared_factor_scan_seconds", Json::Num(scan_seconds))
        .set("shared_prime_hits", Json::int(hits.len() as i64));
    let path = write_bench_json("crypto", &out);
    println!("wrote {}", path.display());
}
