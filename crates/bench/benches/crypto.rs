//! Crypto-layer micro-benchmarks: SHA-1 thumbprinting, DER certificate
//! parsing, and batch-GCD over the population's RSA moduli — the three
//! crypto hot paths of the assessment stage.
//!
//! ```sh
//! BENCH_HOSTS=300 cargo bench --bench crypto
//! ```
//!
//! Emits `BENCH_crypto.json`.

use bench::{campaign_moduli, time, write_bench_json, BenchConfig, Json};
use ua_crypto::{batch_gcd, find_shared_factors, sha1, Certificate};

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, _population) = cfg.build_world();
    let scanner = cfg.scanner(net, 1);
    let (_, records) = scanner.scan_collect(&cfg.universe, cfg.seed);

    // Harvest the DER certificates the campaign actually delivered.
    let ders: Vec<Vec<u8>> = records
        .iter()
        .flat_map(|r| r.certificates().into_iter().map(<[u8]>::to_vec))
        .collect();
    let der_bytes: usize = ders.iter().map(Vec::len).sum();
    assert!(!ders.is_empty(), "population must deliver certificates");

    // SHA-1 thumbprinting throughput over every DER, repeated to get a
    // stable number.
    const HASH_ROUNDS: usize = 200;
    let (sha_seconds, _) = time(|| {
        let mut acc = 0u8;
        for _ in 0..HASH_ROUNDS {
            for der in &ders {
                acc ^= sha1(der)[0];
            }
        }
        acc
    });
    let sha_mib_per_sec = (der_bytes * HASH_ROUNDS) as f64 / (1024.0 * 1024.0) / sha_seconds;

    // DER parse rate.
    const PARSE_ROUNDS: usize = 50;
    let (parse_seconds, parsed) = time(|| {
        let mut ok = 0usize;
        for _ in 0..PARSE_ROUNDS {
            ok += ders
                .iter()
                .filter(|der| Certificate::from_der(der).is_ok())
                .count();
        }
        ok
    });
    let certs_per_sec = parsed as f64 / parse_seconds;

    // Batch GCD over the deduplicated moduli (the finalization step of
    // the incremental assessor).
    let moduli = campaign_moduli(&records);
    let (tree_seconds, remainders) = time(|| batch_gcd(&moduli));
    let (scan_seconds, hits) = time(|| find_shared_factors(&moduli));
    assert_eq!(remainders.len(), moduli.len());

    println!(
        "crypto bench: {} certs ({} bytes), {} distinct moduli",
        ders.len(),
        der_bytes,
        moduli.len()
    );
    println!("  sha1        {sha_mib_per_sec:>10.1} MiB/s");
    println!("  der parse   {certs_per_sec:>10.0} certs/s");
    println!(
        "  batch gcd   {:>10.3} ms tree + {:.3} ms factor scan, {} shared-prime hits",
        tree_seconds * 1e3,
        scan_seconds * 1e3,
        hits.len()
    );

    let out = Json::obj()
        .set("bench", Json::str("crypto"))
        .set("certificates", Json::int(ders.len() as i64))
        .set("certificate_bytes", Json::int(der_bytes as i64))
        .set("distinct_moduli", Json::int(moduli.len() as i64))
        .set("sha1_mib_per_second", Json::Num(sha_mib_per_sec))
        .set("der_parse_certs_per_second", Json::Num(certs_per_sec))
        .set("batch_gcd_seconds", Json::Num(tree_seconds))
        .set("shared_factor_scan_seconds", Json::Num(scan_seconds))
        .set("shared_prime_hits", Json::int(hits.len() as i64));
    let path = write_bench_json("crypto", &out);
    println!("wrote {}", path.display());
}
