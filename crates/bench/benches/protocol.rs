//! Probe-stack latency, stage by stage.
//!
//! Probes every deployed host three times with growing stacks — UACP
//! hello only, + discovery, + anonymous session & traversal — and
//! reports wall-clock per-stage latency (the increments between stacks).
//!
//! ```sh
//! BENCH_HOSTS=200 cargo bench --bench protocol
//! ```
//!
//! Emits `BENCH_protocol.json`.

use bench::{time, write_bench_json, BenchConfig, Json, Stats};
use scanner::probe::{default_stack, discovery_stack, UacpProbe};
use scanner::Probe;

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, population) = cfg.build_world();
    // Probe every host on its *ground-truth* port: referral-only strata
    // listen on non-default ports and would otherwise be timed as dead
    // connects and silently dropped from the stats.
    let mut targets: Vec<(netsim::Ipv4, u16)> = population
        .hosts
        .iter()
        .map(|h| (h.address, h.port))
        .collect();
    targets.sort();
    println!(
        "protocol bench: {} hosts ({} strata population)",
        targets.len(),
        population.len()
    );
    let scanner = cfg.scanner(net, 1);

    let mut uacp_us = Vec::with_capacity(targets.len());
    let mut discovery_us = Vec::with_capacity(targets.len());
    let mut session_us = Vec::with_capacity(targets.len());
    let mut full_us = Vec::with_capacity(targets.len());
    let (total_seconds, ()) = time(|| {
        for &(addr, port) in &targets {
            let seed = cfg.seed ^ u64::from(addr.0);
            let mut uacp_only: Vec<Box<dyn Probe>> = vec![Box::new(UacpProbe)];
            let (t_uacp, _) = time(|| scanner.probe_host(&mut uacp_only, addr, port, seed));
            let mut discovery = discovery_stack();
            let (t_disc, _) = time(|| scanner.probe_host(&mut discovery, addr, port, seed));
            let mut full = default_stack();
            let (t_full, record) = time(|| scanner.probe_host(&mut full, addr, port, seed));
            if !record.hello_ok() {
                continue;
            }
            uacp_us.push(t_uacp * 1e6);
            discovery_us.push((t_disc - t_uacp).max(0.0) * 1e6);
            session_us.push((t_full - t_disc).max(0.0) * 1e6);
            full_us.push(t_full * 1e6);
        }
    });

    let hosts_per_second = full_us.len() as f64 / total_seconds;
    for (stage, samples) in [
        ("uacp", &uacp_us),
        ("discovery", &discovery_us),
        ("session", &session_us),
        ("full_stack", &full_us),
    ] {
        let s = Stats::of(samples);
        println!(
            "  {stage:<11} mean {:>8.1} µs  p50 {:>8.1} µs  p99 {:>8.1} µs",
            s.mean, s.p50, s.p99
        );
    }

    let out = Json::obj()
        .set("bench", Json::str("protocol"))
        .set("hosts_probed", Json::int(full_us.len() as i64))
        .set("seconds", Json::Num(total_seconds))
        .set("hosts_per_second", Json::Num(hosts_per_second))
        .set("uacp_micros", Stats::of(&uacp_us).to_json())
        .set("discovery_micros", Stats::of(&discovery_us).to_json())
        .set("session_micros", Stats::of(&session_us).to_json())
        .set("full_stack_micros", Stats::of(&full_us).to_json());
    let path = write_bench_json("protocol", &out);
    println!("wrote {}", path.display());
}
