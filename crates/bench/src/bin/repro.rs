//! One-shot study reproduction: population → sharded scan → incremental
//! assessment, printed as the paper-style report. The five bench bins
//! (`cargo bench --bench sweep|protocol|crypto|ablation|figures`) measure
//! the same pipeline and emit `BENCH_*.json`; this bin just runs it.
//!
//! ```sh
//! BENCH_HOSTS=500 BENCH_UNIVERSE=19 cargo run --release -p bench --bin repro
//! ```

use assessment::Assessor;
use bench::BenchConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    let (net, population) = cfg.build_world();
    println!(
        "repro: {} deployments in {} addresses (seed {})",
        population.len(),
        cfg.universe_size(),
        cfg.seed
    );
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scanner = cfg.scanner(net, workers);
    let mut stream = scanner.scan_stream(cfg.universe.clone(), cfg.seed);
    let mut assessor = Assessor::new();
    for record in stream.by_ref() {
        assessor.fold(&record);
    }
    let summary = stream.finish();
    println!(
        "scan: {} probes sent, {} OPC UA hosts ({} workers)",
        summary.sweep.probes_sent, summary.opcua_hosts, workers
    );
    println!("\n{}", assessor.finalize());
}
