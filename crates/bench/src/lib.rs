//! # bench
//!
//! The benchmark and figure-reproduction harness behind the five bench
//! bins (`sweep`, `protocol`, `crypto`, `ablation`, `figures`). Each bin
//! drives the real pipeline (population → sharded scan → incremental
//! assessment) on a configurable universe, measures wall-clock cost, and
//! emits a machine-readable `BENCH_<name>.json` so CI leaves a perf trail
//! per PR.
//!
//! Everything here is dependency-free by construction (builds are
//! hermetic): JSON is written by hand via [`Json`], configuration comes
//! from `BENCH_*` environment variables, and timing uses
//! `std::time::Instant`.
//!
//! | variable           | default | meaning                                 |
//! |--------------------|---------|-----------------------------------------|
//! | `BENCH_HOSTS`      | 300     | deployments synthesized per scenario    |
//! | `BENCH_UNIVERSE`   | /20     | scanned universe as `10.0.0.0/<bits>`   |
//! | `BENCH_WORKERS`    | 1,2,4,8 | comma-separated worker counts (`sweep`) |
//! | `BENCH_SEED`       | 2020    | campaign seed                           |
//! | `BENCH_OUT_DIR`    | `.`     | where `BENCH_<name>.json` files land    |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{synthesize, LazyWorld, Population, PopulationConfig, StrataMix};
use scanner::{ScanConfig, ScanRecord, Scanner};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// A JSON value, built by hand so the harness stays dependency-free.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (emitted with up to 6 significant decimals).
    Num(f64),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends) a field to an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("set on non-object {other:?}"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (from any unsigned count).
    pub fn int(n: impl TryInto<i64>) -> Json {
        Json::Int(n.try_into().unwrap_or(i64::MAX))
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{:.6}", n)
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(&mut buf, k);
                    write!(f, "\"{buf}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Shared bench configuration, read from `BENCH_*` env vars.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Deployments synthesized per scenario.
    pub hosts: usize,
    /// Scanned universe.
    pub universe: Vec<Cidr>,
    /// Worker counts the `sweep` bench compares.
    pub worker_counts: Vec<usize>,
    /// Campaign seed.
    pub seed: u64,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let bits: u8 = env_parse("BENCH_UNIVERSE", 20);
        let universe: Cidr = format!("10.0.0.0/{bits}")
            .parse()
            .expect("valid BENCH_UNIVERSE prefix length");
        let worker_counts = std::env::var("BENCH_WORKERS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|w| w.trim().parse().ok())
                    .filter(|&w| w > 0)
                    .collect()
            })
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        BenchConfig {
            hosts: env_parse("BENCH_HOSTS", 300),
            universe: vec![universe],
            worker_counts,
            seed: env_parse("BENCH_SEED", 2020),
        }
    }

    /// Total addresses in the configured universe.
    pub fn universe_size(&self) -> u64 {
        self.universe.iter().map(Cidr::size).sum()
    }

    /// Synthesizes a fresh paper-like world (Internet + population) for
    /// one measured run. Every run gets its own world: scans advance the
    /// virtual clock, and identical worlds keep runs comparable.
    pub fn build_world(&self) -> (Internet, Population) {
        let net = Internet::new(VirtualClock::default());
        let cfg = PopulationConfig::new(
            self.seed,
            self.universe.clone(),
            StrataMix::paper_like(self.hosts),
        );
        let population = synthesize(&net, &cfg);
        (net, population)
    }

    /// The identically-seeded world as a [`LazyWorld`]: nothing is
    /// built up front, hosts materialize on first probe contact, and
    /// the returned handle exposes the materialization counters
    /// ([`population::MaterializationStats`]) the perf trail records.
    pub fn build_lazy_world(&self) -> (Internet, LazyWorld) {
        let net = Internet::new(VirtualClock::default());
        let cfg = PopulationConfig::new(
            self.seed,
            self.universe.clone(),
            StrataMix::paper_like(self.hosts),
        );
        let world = LazyWorld::deploy(&net, &cfg);
        (net, world)
    }

    /// A scanner over `net` with the given worker count.
    pub fn scanner(&self, net: Internet, workers: usize) -> Scanner {
        let config = ScanConfig {
            workers,
            ..ScanConfig::default()
        };
        Scanner::new(net, Blocklist::new(), config)
    }
}

/// The campaign's deduplicated RSA moduli in first-seen order — the
/// same set (and the same dedup key: the modulus value) the incremental
/// `Assessor` accumulates for batch GCD. Shared by the `crypto` and
/// `ablation` benches so they measure exactly the moduli the pipeline
/// finalizes over. Reads the interned certificate handles, so no DER is
/// re-parsed here.
pub fn campaign_moduli(records: &[ScanRecord]) -> Vec<ua_crypto::BigUint> {
    let mut moduli = Vec::new();
    let mut seen: HashSet<ua_crypto::BigUint> = HashSet::new();
    for record in records {
        for cert in record.certificates() {
            if let Some(n) = cert.modulus() {
                if seen.insert(n.clone()) {
                    moduli.push(n.clone());
                }
            }
        }
    }
    moduli
}

/// One modulus per certificate *sighting* (every endpoint snapshot
/// carrying a parseable certificate), with no deduplication at all —
/// the input a dedup-unaware finalization would feed batch GCD. The
/// `ablation` bench times this against the deduplicated set to
/// quantify what interning buys the GCD stage; the length matches the
/// campaign `CertStore`'s sighting counter for parseable certificates.
pub fn campaign_modulus_sightings(records: &[ScanRecord]) -> Vec<ua_crypto::BigUint> {
    let mut moduli = Vec::new();
    for record in records {
        for ep in record.endpoints() {
            if let Some(n) = ep.certificate.as_ref().and_then(|c| c.modulus()) {
                moduli.push(n.clone());
            }
        }
    }
    moduli
}

/// Runs `f` `rounds` times, returning the *minimum* wall-clock seconds
/// and the last value — the noise-robust way to time sub-10ms work on
/// shared CI hardware.
pub fn time_min<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(rounds > 0);
    let (mut best, mut value) = time(&mut f);
    for _ in 1..rounds {
        let (t, v) = time(&mut f);
        if t < best {
            best = t;
        }
        value = v;
    }
    (best, value)
}

/// Runs `f`, returning its wall-clock duration in seconds and its value.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

/// Simple descriptive statistics over a latency sample (microseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Stats {
    /// Computes stats over `samples` (need not be sorted).
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        // Nearest-rank percentile: index ⌈q·n⌉ − 1.
        let pct = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Stats {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: pct(0.50),
            p99: pct(0.99),
        }
    }

    /// The stats as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("n", Json::int(self.n as i64))
            .set("mean", Json::Num(self.mean))
            .set("min", Json::Num(self.min))
            .set("max", Json::Num(self.max))
            .set("p50", Json::Num(self.p50))
            .set("p99", Json::Num(self.p99))
    }
}

/// A `BTreeMap<String-able, count>` as a JSON object.
pub fn counts_to_json<K: ToString>(counts: &BTreeMap<K, usize>) -> Json {
    let mut obj = Json::obj();
    for (k, v) in counts {
        obj = obj.set(&k.to_string(), Json::int(*v as i64));
    }
    obj
}

/// Writes `BENCH_<name>.json` into `BENCH_OUT_DIR` (default: the current
/// directory) and returns the path.
pub fn write_bench_json(name: &str, value: &Json) -> PathBuf {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = PathBuf::from(dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{value}\n")).expect("write bench json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_escaped_and_ordered() {
        let j = Json::obj()
            .set("name", Json::str("a\"b\\c\nd"))
            .set("count", Json::int(3_i64))
            .set("ratio", Json::Num(0.5))
            .set("flag", Json::Bool(true))
            .set("items", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            j.to_string(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":3,\"ratio\":0.500000,\"flag\":true,\"items\":[1,null]}"
        );
    }

    #[test]
    fn stats_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Stats::of(&samples);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn bench_config_defaults() {
        let cfg = BenchConfig::from_env();
        assert!(cfg.hosts > 0);
        assert!(cfg.universe_size() >= cfg.hosts as u64);
        assert!(!cfg.worker_counts.is_empty());
    }

    #[test]
    fn world_builds_and_scans() {
        let cfg = BenchConfig {
            hosts: 12,
            universe: vec!["10.0.0.0/24".parse().unwrap()],
            worker_counts: vec![1, 2],
            seed: 7,
        };
        let (net, population) = cfg.build_world();
        let scanner = cfg.scanner(net, 2);
        let (summary, records) = scanner.scan_collect(&cfg.universe, cfg.seed);
        assert_eq!(summary.opcua_hosts as usize, population.len());
        assert_eq!(
            records.iter().filter(|r| r.hello_ok()).count(),
            population.len()
        );
    }

    #[test]
    fn lazy_world_scans_identically_to_eager() {
        let cfg = BenchConfig {
            hosts: 12,
            universe: vec!["10.0.0.0/24".parse().unwrap()],
            worker_counts: vec![1],
            seed: 7,
        };
        let (eager_net, _) = cfg.build_world();
        let (_, eager_records) = cfg
            .scanner(eager_net, 1)
            .scan_collect(&cfg.universe, cfg.seed);

        let (lazy_net, world) = cfg.build_lazy_world();
        assert_eq!(world.stats().hosts_materialized, 0);
        let (summary, lazy_records) = cfg
            .scanner(lazy_net, 1)
            .scan_collect(&cfg.universe, cfg.seed);

        assert_eq!(eager_records, lazy_records);
        assert_eq!(world.stats().hosts_materialized, summary.opcua_hosts);
    }
}
