//! Randomized cross-checks of the subquadratic arithmetic against the
//! schoolbook/legacy reference paths, over 1000+ mixed-width operands.
//!
//! * Karatsuba `mul` vs. schoolbook `mul_schoolbook` (widths straddling
//!   the Karatsuba threshold in both balanced and lopsided shapes);
//! * `sqr` vs. `mul(self, self)`;
//! * Montgomery `mod_pow` vs. the legacy square-and-multiply
//!   `mod_pow_legacy` (odd moduli), plus the documented fallback for
//!   even moduli;
//! * edge cases: zero, one, modulus − 1, and single-limb extremes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_crypto::bigint::KARATSUBA_THRESHOLD;
use ua_crypto::{BigUint, Montgomery};

/// A random value of exactly `bits` bits, or zero when `bits == 0`.
fn random_exact(rng: &mut StdRng, bits: usize) -> BigUint {
    if bits == 0 {
        BigUint::zero()
    } else {
        BigUint::random_bits(rng, bits)
    }
}

/// Mixed operand widths in bits: small, around one limb, around the
/// Karatsuba threshold (32 limbs = 2048 bits), and well above it.
fn mixed_widths(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..6u32) {
        0 => rng.gen_range(0..65) as usize,
        1 => rng.gen_range(65..256) as usize,
        2 => rng.gen_range(256..1024) as usize,
        3 => rng.gen_range(1900..2200) as usize, // straddles the threshold
        4 => rng.gen_range(2200..4096) as usize,
        _ => rng.gen_range(4096..6000) as usize,
    }
}

#[test]
fn karatsuba_matches_schoolbook_on_1000_mixed_pairs() {
    let mut rng = StdRng::seed_from_u64(0x6b61_7261);
    for i in 0..1000 {
        let wa = mixed_widths(&mut rng);
        let wb = mixed_widths(&mut rng);
        let a = random_exact(&mut rng, wa);
        let b = random_exact(&mut rng, wb);
        let fast = a.mul(&b);
        let reference = a.mul_schoolbook(&b);
        assert_eq!(fast, reference, "iteration {i}: {a} * {b}");
        // Commutativity as a second, independent path through the split.
        assert_eq!(b.mul(&a), reference, "iteration {i} (swapped)");
    }
}

#[test]
fn karatsuba_handles_lopsided_operands() {
    let mut rng = StdRng::seed_from_u64(0x6c6f_7073);
    for _ in 0..100 {
        // One operand far above the threshold, the other barely at it:
        // exercises the unbalanced split-at-min path.
        let wide = rng.gen_range(8000..12000) as usize;
        let a = random_exact(&mut rng, wide);
        let narrow = (KARATSUBA_THRESHOLD * 64) + rng.gen_range(0..128) as usize;
        let b = random_exact(&mut rng, narrow);
        assert_eq!(a.mul(&b), a.mul_schoolbook(&b));
    }
}

#[test]
fn sqr_matches_self_multiplication() {
    let mut rng = StdRng::seed_from_u64(0x7371_7200);
    for i in 0..1000 {
        let w = mixed_widths(&mut rng);
        let a = random_exact(&mut rng, w);
        assert_eq!(a.sqr(), a.mul(&a), "iteration {i}: {a}²");
    }
    assert_eq!(BigUint::zero().sqr(), BigUint::zero());
    assert_eq!(BigUint::one().sqr(), BigUint::one());
}

#[test]
fn montgomery_mod_pow_matches_legacy_on_odd_moduli() {
    let mut rng = StdRng::seed_from_u64(0x6d6f_6e74);
    for i in 0..250 {
        let bits = match rng.gen_range(0..4u32) {
            0 => rng.gen_range(2..64) as usize,
            1 => rng.gen_range(64..256) as usize,
            2 => rng.gen_range(256..1024) as usize,
            _ => rng.gen_range(1024..2100) as usize,
        };
        let mut modulus = BigUint::random_bits(&mut rng, bits);
        if modulus.is_even() {
            modulus = modulus.add(&BigUint::one());
        }
        if modulus.is_one() {
            continue;
        }
        let base = BigUint::random_below(&mut rng, &modulus);
        let ebits = rng.gen_range(0..600) as usize;
        let exponent = random_exact(&mut rng, ebits);
        assert_eq!(
            base.mod_pow(&exponent, &modulus),
            base.mod_pow_legacy(&exponent, &modulus),
            "iteration {i}: {base}^{exponent} mod {modulus}"
        );
    }
}

#[test]
fn mod_pow_falls_back_for_even_moduli() {
    // Montgomery needs gcd(n, 2⁶⁴) = 1; even moduli must reject the
    // context and the public mod_pow must still answer via the legacy
    // path.
    let mut rng = StdRng::seed_from_u64(0x6576_656e);
    for _ in 0..100 {
        let mbits = rng.gen_range(2..300) as usize;
        let mut modulus = BigUint::random_bits(&mut rng, mbits);
        if !modulus.is_even() {
            modulus = modulus.add(&BigUint::one());
        }
        assert!(
            Montgomery::new(&modulus).is_none(),
            "even modulus {modulus}"
        );
        let base = BigUint::random_below(&mut rng, &modulus);
        let ebits = rng.gen_range(0..200) as usize;
        let exponent = random_exact(&mut rng, ebits);
        assert_eq!(
            base.mod_pow(&exponent, &modulus),
            base.mod_pow_legacy(&exponent, &modulus),
        );
    }
}

#[test]
fn mod_pow_edge_cases() {
    let mut rng = StdRng::seed_from_u64(0x6564_6765);
    let one = BigUint::one();
    for bits in [3usize, 64, 65, 192, 1024, 2048] {
        let mut n = BigUint::random_bits(&mut rng, bits);
        if n.is_even() {
            n = n.add(&one);
        }
        let n_minus_1 = n.sub(&one);
        let e = BigUint::random_bits(&mut rng, 64);

        // 0^e = 0 (e > 0), x^0 = 1, 1^e = 1.
        assert_eq!(BigUint::zero().mod_pow(&e, &n), BigUint::zero());
        assert_eq!(n_minus_1.mod_pow(&BigUint::zero(), &n), one);
        assert_eq!(one.mod_pow(&e, &n), one);
        // (n−1)² ≡ 1 (mod n): n−1 is its own inverse.
        assert_eq!(n_minus_1.mod_pow(&BigUint::from_u64(2), &n), one);
        // Base ≥ modulus is reduced first.
        let big_base = n.add(&n_minus_1);
        assert_eq!(
            big_base.mod_pow(&e, &n),
            big_base.rem(&n).mod_pow_legacy(&e, &n)
        );
        // mod 1 = 0 regardless of path.
        assert_eq!(n_minus_1.mod_pow(&e, &one), BigUint::zero());
    }
    // Montgomery rejects a modulus of one (and zero is a caller error).
    assert!(Montgomery::new(&one).is_none());
    assert!(Montgomery::new(&BigUint::zero()).is_none());
}

#[test]
fn montgomery_context_is_reusable_across_exponents() {
    // One context, many exponentiations — the RSA verification pattern.
    let mut rng = StdRng::seed_from_u64(0x7265_7573);
    let mut n = BigUint::random_bits(&mut rng, 512);
    if n.is_even() {
        n = n.add(&BigUint::one());
    }
    let ctx = Montgomery::new(&n).expect("odd modulus");
    assert_eq!(ctx.modulus(), &n);
    for _ in 0..25 {
        let base = BigUint::random_below(&mut rng, &n);
        let e = BigUint::random_bits(&mut rng, 128);
        assert_eq!(ctx.pow(&base, &e), base.mod_pow_legacy(&e, &n));
    }
}

#[test]
fn mul_mod_fast_paths() {
    let mut rng = StdRng::seed_from_u64(0x6d6d_6f64);
    let m = BigUint::random_bits(&mut rng, 200);
    let a = BigUint::random_bits(&mut rng, 300);
    assert_eq!(BigUint::zero().mul_mod(&a, &m), BigUint::zero());
    assert_eq!(a.mul_mod(&BigUint::zero(), &m), BigUint::zero());
    assert_eq!(BigUint::one().mul_mod(&a, &m), a.rem(&m));
    assert_eq!(a.mul_mod(&BigUint::one(), &m), a.rem(&m));
    assert_eq!(a.mul_mod(&a, &m), a.mul(&a).rem(&m));
}

#[test]
fn exact_serialization_roundtrips() {
    // to_bytes_be / to_hex are sized exactly from the bit length; check
    // lengths and roundtrips across widths including limb boundaries.
    let mut rng = StdRng::seed_from_u64(0x7365_7269);
    for bits in [1usize, 7, 8, 9, 63, 64, 65, 127, 128, 129, 511, 2048] {
        let v = BigUint::random_bits(&mut rng, bits);
        let bytes = v.to_bytes_be();
        assert_eq!(bytes.len(), bits.div_ceil(8), "bits={bits}");
        assert_ne!(bytes[0], 0, "no leading zero byte at bits={bits}");
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        let hex = v.to_hex();
        assert_eq!(hex.len(), bits.div_ceil(4), "bits={bits}");
        assert_eq!(BigUint::from_hex(&hex), Some(v));
    }
    assert!(BigUint::zero().to_bytes_be().is_empty());
    assert_eq!(BigUint::zero().to_hex(), "0");
}
