//! Shared-prime detection across RSA moduli.
//!
//! §5.3 of the paper: *"we have not found any evidence of key material that
//! is subject to insufficient randomness by pairwise checking the keys of
//! all received certificates for shared primes."* This module implements
//! both the naive pairwise check and the scalable product-/remainder-tree
//! batch GCD of Heninger et al. (USENIX Security 2012), which the paper
//! cites as motivation (its reference \[27\]).

use crate::bigint::BigUint;

/// A detected common factor between two moduli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFactor {
    /// Index of the first modulus.
    pub a: usize,
    /// Index of the second modulus.
    pub b: usize,
    /// The common factor (a prime, for honest RSA moduli).
    pub factor: BigUint,
}

/// Naive O(n²) pairwise GCD scan. Exact and simple; used as the reference
/// implementation and for the ablation benchmark.
pub fn pairwise_shared_factors(moduli: &[BigUint]) -> Vec<SharedFactor> {
    let mut out = Vec::new();
    for i in 0..moduli.len() {
        for j in (i + 1)..moduli.len() {
            if moduli[i].is_zero() || moduli[j].is_zero() {
                continue;
            }
            let g = moduli[i].gcd(&moduli[j]);
            if !g.is_one() && !g.is_zero() {
                out.push(SharedFactor {
                    a: i,
                    b: j,
                    factor: g,
                });
            }
        }
    }
    out
}

/// The product tree over a set of moduli: level 0 holds the moduli,
/// each level above holds pairwise products, the root their full
/// product.
///
/// Built once per batch; the inner nodes use [`BigUint::mul`]'s
/// Karatsuba path (tree nodes grow far past the threshold within a few
/// levels) and the remainder-tree descent uses [`BigUint::sqr`] for the
/// `child²` moduli. [`ProductTree::leaf_remainders`] ping-pongs between
/// two reusable level buffers instead of allocating a fresh vector per
/// level.
#[derive(Debug, Clone)]
pub struct ProductTree {
    levels: Vec<Vec<BigUint>>,
}

impl ProductTree {
    /// Builds the tree bottom-up. Level 0 is `moduli` verbatim.
    pub fn build(moduli: &[BigUint]) -> ProductTree {
        let mut levels: Vec<Vec<BigUint>> = vec![moduli.to_vec()];
        // ua-lint: allow(panic-hygiene) -- `levels` starts with one level and only grows
        while levels.last().expect("at least one level").len() > 1 {
            // ua-lint: allow(panic-hygiene) -- `levels` starts with one level and only grows
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(pair[0].mul(&pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            levels.push(next);
        }
        ProductTree { levels }
    }

    /// The product of all moduli.
    pub fn root(&self) -> &BigUint {
        // ua-lint: allow(panic-hygiene) -- `build` always leaves at least one level
        &self.levels.last().expect("at least one level")[0]
    }

    /// Remainder-tree descent: returns `root mod n_i²` for every leaf,
    /// by pushing `rem[child] = parent_rem mod child²` down the levels.
    /// Two level buffers are reused (swap per level) so the descent
    /// performs one allocation pair total, not one per level.
    pub fn leaf_remainders(&self) -> Vec<BigUint> {
        let mut cur: Vec<BigUint> = vec![self.root().clone()];
        let mut next: Vec<BigUint> = Vec::new();
        for level in (0..self.levels.len() - 1).rev() {
            let nodes = &self.levels[level];
            next.clear();
            next.reserve(nodes.len());
            for (i, node) in nodes.iter().enumerate() {
                let parent = &cur[i / 2];
                next.push(parent.rem(&node.sqr()));
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

/// Product-tree/remainder-tree batch GCD: returns, for each modulus `n_i`,
/// `gcd(n_i, prod_{j != i} n_j)`. A result of 1 means no shared factor.
///
/// Runs in quasi-linear big-number operations instead of the naive
/// quadratic scan, and — fed the *deduplicated* moduli the incremental
/// assessor accumulates — its input shrinks by exactly the certificate
/// reuse factor the paper measured (§5.2).
pub fn batch_gcd(moduli: &[BigUint]) -> Vec<BigUint> {
    let n = moduli.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![BigUint::one()];
    }

    let tree = ProductTree::build(moduli);
    let rems = tree.leaf_remainders();

    // gcd(n_i, rem_i / n_i)
    moduli
        .iter()
        .zip(rems.iter())
        .map(|(m, r)| {
            if m.is_zero() {
                return BigUint::zero();
            }
            let (q, _) = r.div_rem(m);
            m.gcd(&q)
        })
        .collect()
}

/// Convenience wrapper: runs [`batch_gcd`] and expands hits into concrete
/// pairs by factoring out the shared primes (falling back to pairwise GCD
/// restricted to the flagged indices, which is tiny in practice).
pub fn find_shared_factors(moduli: &[BigUint]) -> Vec<SharedFactor> {
    let hits: Vec<usize> = batch_gcd(moduli)
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_one() && !g.is_zero())
        .map(|(i, _)| i)
        .collect();
    if hits.is_empty() {
        return Vec::new();
    }
    let subset: Vec<BigUint> = hits.iter().map(|&i| moduli[i].clone()).collect();
    pairwise_shared_factors(&subset)
        .into_iter()
        .map(|sf| SharedFactor {
            a: hits[sf.a],
            b: hits[sf.b],
            factor: sf.factor,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moduli_with_share(seed: u64, count: usize) -> (Vec<BigUint>, usize, usize, BigUint) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut moduli = Vec::new();
        let shared = generate_prime(&mut rng, 96);
        for _ in 0..count {
            let p = generate_prime(&mut rng, 96);
            let q = generate_prime(&mut rng, 96);
            moduli.push(p.mul(&q));
        }
        // Plant the shared prime into two moduli.
        let qa = generate_prime(&mut rng, 96);
        let qb = generate_prime(&mut rng, 96);
        let ia = moduli.len();
        moduli.push(shared.mul(&qa));
        let ib = moduli.len();
        moduli.push(shared.mul(&qb));
        (moduli, ia, ib, shared)
    }

    #[test]
    fn pairwise_finds_planted_share() {
        let (moduli, ia, ib, shared) = moduli_with_share(11, 6);
        let found = pairwise_shared_factors(&moduli);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].a, ia);
        assert_eq!(found[0].b, ib);
        assert_eq!(found[0].factor, shared);
    }

    #[test]
    fn batch_gcd_flags_planted_share() {
        let (moduli, ia, ib, shared) = moduli_with_share(12, 9);
        let gcds = batch_gcd(&moduli);
        assert_eq!(gcds.len(), moduli.len());
        for (i, g) in gcds.iter().enumerate() {
            if i == ia || i == ib {
                assert_eq!(g, &shared, "index {i}");
            } else {
                assert!(g.is_one(), "index {i} should be clean, got {g}");
            }
        }
    }

    #[test]
    fn find_shared_factors_matches_pairwise() {
        let (moduli, _, _, _) = moduli_with_share(13, 12);
        let a = find_shared_factors(&moduli);
        let b = pairwise_shared_factors(&moduli);
        assert_eq!(a, b);
    }

    #[test]
    fn clean_set_yields_no_findings() {
        let mut rng = StdRng::seed_from_u64(14);
        let moduli: Vec<BigUint> = (0..10)
            .map(|_| {
                let p = generate_prime(&mut rng, 80);
                let q = generate_prime(&mut rng, 80);
                p.mul(&q)
            })
            .collect();
        assert!(pairwise_shared_factors(&moduli).is_empty());
        assert!(batch_gcd(&moduli).iter().all(|g| g.is_one()));
        assert!(find_shared_factors(&moduli).is_empty());
    }

    #[test]
    fn edge_cases() {
        assert!(batch_gcd(&[]).is_empty());
        let one_mod = vec![BigUint::from_u64(15)];
        assert_eq!(batch_gcd(&one_mod), vec![BigUint::one()]);
        // Duplicate modulus: gcd is the full modulus.
        let m = BigUint::from_u64(77);
        let gcds = batch_gcd(&[m.clone(), m.clone()]);
        assert_eq!(gcds[0], m);
        assert_eq!(gcds[1], m);
    }

    #[test]
    fn odd_count_product_tree() {
        // Exercise the odd-node-count carry in the product tree.
        let (moduli, ia, ib, shared) = moduli_with_share(15, 5); // 7 total
        assert_eq!(moduli.len() % 2, 1);
        let gcds = batch_gcd(&moduli);
        assert_eq!(gcds[ia], shared);
        assert_eq!(gcds[ib], shared);
    }

    #[test]
    fn three_way_share_detected() {
        let mut rng = StdRng::seed_from_u64(16);
        let shared = generate_prime(&mut rng, 80);
        let mut moduli: Vec<BigUint> = (0..3)
            .map(|_| shared.mul(&generate_prime(&mut rng, 80)))
            .collect();
        moduli.push(generate_prime(&mut rng, 80).mul(&generate_prime(&mut rng, 80)));
        let found = find_shared_factors(&moduli);
        // 3 choose 2 = 3 pairs.
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.factor == shared));
    }
}
