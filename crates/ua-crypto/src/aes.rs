//! AES-128/AES-256 block cipher with CBC mode (FIPS 197 / SP 800-38A).
//!
//! OPC UA's symmetric channel encryption uses AES-CBC with keys derived by
//! `P_SHA` (Part 6). The secure-channel code in `ua-proto` uses this
//! implementation for `SignAndEncrypt` endpoints.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut result = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            result ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    result
}

/// AES errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AesError {
    /// Key length is not 16 or 32 bytes.
    BadKeyLength(usize),
    /// IV is not 16 bytes.
    BadIvLength(usize),
    /// Ciphertext length is not a multiple of the block size.
    BadCiphertextLength(usize),
    /// PKCS#7 padding check failed.
    BadPadding,
}

impl std::fmt::Display for AesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesError::BadKeyLength(n) => write!(f, "bad AES key length {n}"),
            AesError::BadIvLength(n) => write!(f, "bad AES IV length {n}"),
            AesError::BadCiphertextLength(n) => write!(f, "bad ciphertext length {n}"),
            AesError::BadPadding => write!(f, "bad PKCS#7 padding"),
        }
    }
}

impl std::error::Error for AesError {}

/// An expanded AES key (128- or 256-bit).
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands a 16-byte (AES-128) or 32-byte (AES-256) key.
    pub fn new(key: &[u8]) -> Result<Self, AesError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            32 => (8, 14),
            n => return Err(AesError::BadKeyLength(n)),
        };
        let total_words = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(Aes { round_keys, rounds })
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        for r in (1..self.rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: state[4*c + r] = byte at row r, column c (column-major,
// matching the FIPS-197 byte order of a block).
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

/// Encrypts with AES-CBC and PKCS#7 padding.
pub fn cbc_encrypt(key: &[u8], iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, AesError> {
    let aes = Aes::new(key)?;
    if iv.len() != 16 {
        return Err(AesError::BadIvLength(iv.len()));
    }
    let pad = 16 - plaintext.len() % 16;
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));

    // ua-lint: allow(panic-hygiene) -- iv length was checked to be 16 above
    let mut prev: [u8; 16] = iv.try_into().unwrap();
    for chunk in data.chunks_exact_mut(16) {
        // ua-lint: allow(panic-hygiene) -- chunks_exact_mut(16) yields 16-byte slices
        let mut block: [u8; 16] = chunk.try_into().unwrap();
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    Ok(data)
}

/// Decrypts AES-CBC with PKCS#7 padding.
pub fn cbc_decrypt(key: &[u8], iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, AesError> {
    let aes = Aes::new(key)?;
    if iv.len() != 16 {
        return Err(AesError::BadIvLength(iv.len()));
    }
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return Err(AesError::BadCiphertextLength(ciphertext.len()));
    }
    let mut out = ciphertext.to_vec();
    // ua-lint: allow(panic-hygiene) -- iv length was checked to be 16 above
    let mut prev: [u8; 16] = iv.try_into().unwrap();
    for chunk in out.chunks_exact_mut(16) {
        // ua-lint: allow(panic-hygiene) -- chunks_exact_mut(16) yields 16-byte slices
        let cipher_block: [u8; 16] = chunk.try_into().unwrap();
        let mut block = cipher_block;
        aes.decrypt_block(&mut block);
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        chunk.copy_from_slice(&block);
        prev = cipher_block;
    }
    // ua-lint: allow(panic-hygiene) -- ciphertext was checked non-empty above
    let pad = *out.last().unwrap() as usize;
    if pad == 0 || pad > 16 || pad > out.len() {
        return Err(AesError::BadPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
        return Err(AesError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::to_hex;

    #[test]
    fn aes128_fips197_vector() {
        // FIPS-197 Appendix C.1.
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(to_hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut block);
        assert_eq!(to_hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn aes256_fips197_vector() {
        // FIPS-197 Appendix C.3.
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(to_hex(&block), "8ea2b7ca516745bfeafc49904b496089");
        aes.decrypt_block(&mut block);
        assert_eq!(to_hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn cbc_sp80038a_vector() {
        // NIST SP 800-38A F.2.1 (CBC-AES128, first block), without padding
        // interference: we check the first ciphertext block only.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let pt = hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&key, &iv, &pt).unwrap();
        assert_eq!(to_hex(&ct[..16]), "7649abac8119b246cee98e9b12e9197d");
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = [7u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cbc_encrypt(&key, &iv, &pt).unwrap();
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len()); // always padded
            assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn cbc_aes256_roundtrip() {
        let key = [0x42u8; 32];
        let iv = [9u8; 16];
        let pt = b"open secure channel".to_vec();
        let ct = cbc_encrypt(&key, &iv, &pt).unwrap();
        assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn tampered_ciphertext_fails_or_corrupts() {
        let key = [1u8; 16];
        let iv = [2u8; 16];
        let pt = b"sensitive fill level".to_vec();
        let mut ct = cbc_encrypt(&key, &iv, &pt).unwrap();
        let last = ct.len() - 1;
        ct[last] ^= 0xFF;
        // Either padding fails or the plaintext differs.
        match cbc_decrypt(&key, &iv, &ct) {
            Err(AesError::BadPadding) => {}
            Ok(out) => assert_ne!(out, pt),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(Aes::new(&[0; 5]).unwrap_err(), AesError::BadKeyLength(5));
        assert_eq!(
            cbc_encrypt(&[0; 16], &[0; 3], b"x").unwrap_err(),
            AesError::BadIvLength(3)
        );
        assert_eq!(
            cbc_decrypt(&[0; 16], &[0; 16], &[0; 15]).unwrap_err(),
            AesError::BadCiphertextLength(15)
        );
        assert_eq!(
            cbc_decrypt(&[0; 16], &[0; 16], &[]).unwrap_err(),
            AesError::BadCiphertextLength(0)
        );
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }
}
