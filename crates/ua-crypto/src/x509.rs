//! X.509-like certificates for OPC UA application instances.
//!
//! OPC UA servers authenticate with X.509v3 certificates whose
//! `subjectAltName` carries the server's ApplicationURI. The paper's
//! analysis (§5.2–§5.5) revolves around certificate properties: signature
//! hash function, (nominal) key length, self- vs. CA-signed, validity
//! window (`NotBefore`), per-host reuse (by thumbprint), and shared prime
//! factors. This module models exactly those properties.

use crate::bigint::BigUint;
use crate::der::{tag, DerError, Reader, Writer};
use crate::hash::{sha1, to_hex, HashAlgorithm};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};

/// A distinguished name, reduced to the fields the study inspects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    /// Common name (CN).
    pub common_name: String,
    /// Organization (O) — the paper identified a manufacturer through this
    /// field in a massively reused certificate (§5.3).
    pub organization: String,
    /// Country (C).
    pub country: String,
}

impl DistinguishedName {
    /// Creates a DN with the given common name and organization.
    pub fn new(common_name: impl Into<String>, organization: impl Into<String>) -> Self {
        DistinguishedName {
            common_name: common_name.into(),
            organization: organization.into(),
            country: String::new(),
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.nested(tag::SEQUENCE, |w| {
            w.utf8(&self.common_name);
            w.utf8(&self.organization);
            w.utf8(&self.country);
        });
    }

    fn decode(r: &mut Reader) -> Result<Self, DerError> {
        let mut seq = r.nested(tag::SEQUENCE)?;
        let dn = DistinguishedName {
            common_name: seq.utf8()?.to_string(),
            organization: seq.utf8()?.to_string(),
            country: seq.utf8()?.to_string(),
        };
        seq.expect_end()?;
        Ok(dn)
    }
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number.
    pub serial: u64,
    /// Hash algorithm of the signature (duplicated into the outer
    /// certificate, as X.509 does).
    pub signature_hash: HashAlgorithm,
    /// Issuer DN.
    pub issuer: DistinguishedName,
    /// Start of validity (unix seconds). The paper's §5.5 analyses
    /// `NotBefore` against the 2017 SHA-1 policy deprecation.
    pub not_before: i64,
    /// End of validity (unix seconds).
    pub not_after: i64,
    /// Subject DN.
    pub subject: DistinguishedName,
    /// Subject public key.
    pub public_key: RsaPublicKey,
    /// ApplicationURI carried in subjectAltName (OPC UA Part 6 requires
    /// this to match the server's ApplicationDescription).
    pub application_uri: String,
    /// Optional DNS/host names in subjectAltName (these are the fields the
    /// dataset release blackens for anonymization).
    pub dns_names: Vec<String>,
    /// CA flag (basicConstraints).
    pub is_ca: bool,
}

impl TbsCertificate {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            w.integer_u64(self.serial);
            w.integer_u64(hash_alg_code(self.signature_hash));
            self.issuer.encode(w);
            w.nested(tag::SEQUENCE, |w| {
                w.time(self.not_before);
                w.time(self.not_after);
            });
            self.subject.encode(w);
            // SubjectPublicKeyInfo: nominal bits + modulus + exponent.
            w.nested(tag::SEQUENCE, |w| {
                w.integer_u64(self.public_key.nominal_bits as u64);
                w.integer_bytes(&self.public_key.n.to_bytes_be());
                w.integer_bytes(&self.public_key.e.to_bytes_be());
            });
            // Extensions.
            w.nested(tag::CONTEXT_0, |w| {
                w.boolean(self.is_ca);
                w.utf8(&self.application_uri);
                w.nested(tag::CONTEXT_1, |w| {
                    for name in &self.dns_names {
                        w.utf8(name);
                    }
                });
            });
        });
        w.finish()
    }

    fn decode(r: &mut Reader) -> Result<Self, DerError> {
        let mut seq = r.nested(tag::SEQUENCE)?;
        let serial = seq.integer_u64()?;
        let hash = code_hash_alg(seq.integer_u64()?)?;
        let issuer = DistinguishedName::decode(&mut seq)?;
        let mut validity = seq.nested(tag::SEQUENCE)?;
        let not_before = validity.time()?;
        let not_after = validity.time()?;
        validity.expect_end()?;
        let subject = DistinguishedName::decode(&mut seq)?;
        let mut spki = seq.nested(tag::SEQUENCE)?;
        let nominal_bits = spki.integer_u64()? as u32;
        let n = BigUint::from_bytes_be(spki.integer_bytes()?);
        let e = BigUint::from_bytes_be(spki.integer_bytes()?);
        spki.expect_end()?;
        let mut ext = seq.nested(tag::CONTEXT_0)?;
        let is_ca = ext.boolean()?;
        let application_uri = ext.utf8()?.to_string();
        let mut alt = ext.nested(tag::CONTEXT_1)?;
        let mut dns_names = Vec::new();
        while !alt.is_empty() {
            dns_names.push(alt.utf8()?.to_string());
        }
        ext.expect_end()?;
        seq.expect_end()?;
        Ok(TbsCertificate {
            serial,
            signature_hash: hash,
            issuer,
            not_before,
            not_after,
            subject,
            public_key: RsaPublicKey { n, e, nominal_bits },
            application_uri,
            dns_names,
            is_ca,
        })
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed payload.
    pub tbs: TbsCertificate,
    /// RSA signature over the encoded TBS bytes.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Serializes the full certificate.
    pub fn to_der(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            let tbs = self.tbs.encode();
            w.tlv(tag::OCTET_STRING, &tbs);
            w.integer_u64(hash_alg_code(self.tbs.signature_hash));
            w.tlv(tag::BIT_STRING, &self.signature);
        });
        w.finish()
    }

    /// Parses a certificate from its serialized form.
    pub fn from_der(bytes: &[u8]) -> Result<Self, DerError> {
        let mut r = Reader::new(bytes);
        let mut seq = r.nested(tag::SEQUENCE)?;
        let tbs_raw = seq.expect(tag::OCTET_STRING)?;
        let mut tbs_reader = Reader::new(tbs_raw);
        let tbs = TbsCertificate::decode(&mut tbs_reader)?;
        tbs_reader.expect_end()?;
        let outer_alg = code_hash_alg(seq.integer_u64()?)?;
        if outer_alg != tbs.signature_hash {
            // X.509 requires inner and outer algorithms to agree.
            return Err(DerError::UnexpectedTag {
                expected: hash_alg_code(tbs.signature_hash) as u8,
                found: hash_alg_code(outer_alg) as u8,
            });
        }
        let signature = seq.expect(tag::BIT_STRING)?.to_vec();
        seq.expect_end()?;
        r.expect_end()?;
        Ok(Certificate { tbs, signature })
    }

    /// SHA-1 thumbprint of the serialized certificate — OPC UA identifies
    /// certificates by this value, and the paper clusters reused
    /// certificates by it (Figure 5).
    pub fn thumbprint(&self) -> [u8; 20] {
        sha1(&self.to_der())
    }

    /// Thumbprint as lowercase hex.
    pub fn thumbprint_hex(&self) -> String {
        to_hex(&self.thumbprint())
    }

    /// Verifies the signature with the given issuer key.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify(self.tbs.signature_hash, &self.tbs.encode(), &self.signature)
    }

    /// True if issuer equals subject and the embedded key verifies the
    /// signature (the paper found 99 % of OPC UA certs self-signed).
    pub fn is_self_signed(&self) -> bool {
        self.tbs.issuer == self.tbs.subject && self.verify_signature(&self.tbs.public_key)
    }

    /// True if `at_unix` falls in the validity window.
    pub fn is_valid_at(&self, at_unix: i64) -> bool {
        self.tbs.not_before <= at_unix && at_unix <= self.tbs.not_after
    }

    /// Advertised key length in bits (nominal; see `ua-crypto::rsa` docs).
    pub fn key_bits(&self) -> u32 {
        self.tbs.public_key.nominal_bits
    }

    /// Hash algorithm of the certificate signature.
    pub fn signature_hash(&self) -> HashAlgorithm {
        self.tbs.signature_hash
    }
}

/// Builds certificates for OPC UA applications.
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    serial: u64,
    subject: DistinguishedName,
    not_before: i64,
    not_after: i64,
    application_uri: String,
    dns_names: Vec<String>,
    is_ca: bool,
}

impl CertificateBuilder {
    /// Starts a builder for `subject`.
    pub fn new(subject: DistinguishedName) -> Self {
        CertificateBuilder {
            serial: 1,
            subject,
            not_before: 0,
            not_after: i64::MAX,
            application_uri: String::new(),
            dns_names: Vec::new(),
            is_ca: false,
        }
    }

    /// Sets the serial number.
    pub fn serial(mut self, serial: u64) -> Self {
        self.serial = serial;
        self
    }

    /// Sets the validity window (unix seconds).
    pub fn validity(mut self, not_before: i64, not_after: i64) -> Self {
        self.not_before = not_before;
        self.not_after = not_after;
        self
    }

    /// Sets the ApplicationURI (subjectAltName URI).
    pub fn application_uri(mut self, uri: impl Into<String>) -> Self {
        self.application_uri = uri.into();
        self
    }

    /// Adds a DNS name to subjectAltName.
    pub fn dns_name(mut self, name: impl Into<String>) -> Self {
        self.dns_names.push(name.into());
        self
    }

    /// Marks the certificate as a CA certificate.
    pub fn ca(mut self, is_ca: bool) -> Self {
        self.is_ca = is_ca;
        self
    }

    /// Self-signs with `key` using `hash`.
    pub fn self_signed(self, hash: HashAlgorithm, key: &RsaPrivateKey) -> Certificate {
        let issuer = self.subject.clone();
        self.signed_by(hash, issuer, key, &key.public)
    }

    /// Signs with an external issuer.
    pub fn issued_by(
        self,
        hash: HashAlgorithm,
        issuer: DistinguishedName,
        issuer_key: &RsaPrivateKey,
        subject_public: &RsaPublicKey,
    ) -> Certificate {
        self.signed_by(hash, issuer, issuer_key, subject_public)
    }

    fn signed_by(
        self,
        hash: HashAlgorithm,
        issuer: DistinguishedName,
        issuer_key: &RsaPrivateKey,
        subject_public: &RsaPublicKey,
    ) -> Certificate {
        let tbs = TbsCertificate {
            serial: self.serial,
            signature_hash: hash,
            issuer,
            not_before: self.not_before,
            not_after: self.not_after,
            subject: self.subject,
            public_key: subject_public.clone(),
            application_uri: self.application_uri,
            dns_names: self.dns_names,
            is_ca: self.is_ca,
        };
        let signature = issuer_key.sign(hash, &tbs.encode());
        Certificate { tbs, signature }
    }
}

fn hash_alg_code(alg: HashAlgorithm) -> u64 {
    match alg {
        HashAlgorithm::Md5 => 1,
        HashAlgorithm::Sha1 => 2,
        HashAlgorithm::Sha256 => 3,
    }
}

fn code_hash_alg(code: u64) -> Result<HashAlgorithm, DerError> {
    match code {
        1 => Ok(HashAlgorithm::Md5),
        2 => Ok(HashAlgorithm::Sha1),
        3 => Ok(HashAlgorithm::Sha256),
        _ => Err(DerError::BadLength),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaPrivateKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key(seed: u64) -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaPrivateKey::generate(&mut rng, 256, 2048)
    }

    fn sample_cert(key: &RsaPrivateKey, hash: HashAlgorithm) -> Certificate {
        CertificateBuilder::new(DistinguishedName::new("device-1", "Acme Automation"))
            .serial(42)
            .validity(1_483_228_800, 1_893_456_000) // 2017-01-01 .. 2030-01-01
            .application_uri("urn:acme:device-1")
            .dns_name("device-1.factory.example")
            .self_signed(hash, key)
    }

    #[test]
    fn der_roundtrip() {
        let key = test_key(1);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let der = cert.to_der();
        let parsed = Certificate::from_der(&der).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.tbs.subject.common_name, "device-1");
        assert_eq!(parsed.tbs.application_uri, "urn:acme:device-1");
        assert_eq!(parsed.key_bits(), 2048);
    }

    #[test]
    fn self_signed_verifies() {
        let key = test_key(2);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        assert!(cert.is_self_signed());
        assert!(cert.verify_signature(&key.public));
    }

    #[test]
    fn ca_signed_verifies_with_issuer_only() {
        let ca_key = test_key(3);
        let dev_key = test_key(4);
        let cert = CertificateBuilder::new(DistinguishedName::new("dev", "Op"))
            .application_uri("urn:op:dev")
            .issued_by(
                HashAlgorithm::Sha256,
                DistinguishedName::new("Acme CA", "Acme"),
                &ca_key,
                &dev_key.public,
            );
        assert!(!cert.is_self_signed());
        assert!(cert.verify_signature(&ca_key.public));
        assert!(!cert.verify_signature(&dev_key.public));
    }

    #[test]
    fn thumbprint_is_stable_and_distinct() {
        let key = test_key(5);
        let c1 = sample_cert(&key, HashAlgorithm::Sha256);
        let c2 = sample_cert(&key, HashAlgorithm::Sha256);
        assert_eq!(c1.thumbprint(), c2.thumbprint());
        let c3 = sample_cert(&key, HashAlgorithm::Sha1);
        assert_ne!(c1.thumbprint(), c3.thumbprint());
        assert_eq!(c1.thumbprint_hex().len(), 40);
    }

    #[test]
    fn validity_window() {
        let key = test_key(6);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        assert!(cert.is_valid_at(1_600_000_000)); // 2020
        assert!(!cert.is_valid_at(1_400_000_000)); // 2014
        assert!(!cert.is_valid_at(2_000_000_000)); // 2033
    }

    #[test]
    fn tampered_cert_fails_verification() {
        let key = test_key(7);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let mut tampered = cert.clone();
        tampered.tbs.subject.common_name = "evil".into();
        assert!(!tampered.verify_signature(&key.public));
    }

    #[test]
    fn sha1_and_md5_certs_encode_their_hash() {
        let key = test_key(8);
        for hash in [HashAlgorithm::Md5, HashAlgorithm::Sha1] {
            let cert = sample_cert(&key, hash);
            let parsed = Certificate::from_der(&cert.to_der()).unwrap();
            assert_eq!(parsed.signature_hash(), hash);
            assert!(parsed.is_self_signed());
        }
    }

    #[test]
    fn from_der_rejects_garbage() {
        assert!(Certificate::from_der(&[]).is_err());
        assert!(Certificate::from_der(&[0x30, 0x02, 0x01, 0x01]).is_err());
        let key = test_key(9);
        let mut der = sample_cert(&key, HashAlgorithm::Sha256).to_der();
        der.truncate(der.len() / 2);
        assert!(Certificate::from_der(&der).is_err());
    }

    #[test]
    fn mismatched_inner_outer_alg_rejected() {
        let key = test_key(10);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        // Manually rebuild the outer TLV with a different outer algorithm.
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            w.tlv(tag::OCTET_STRING, &cert.tbs.encode());
            w.integer_u64(hash_alg_code(HashAlgorithm::Sha1));
            w.tlv(tag::BIT_STRING, &cert.signature);
        });
        assert!(Certificate::from_der(&w.finish()).is_err());
    }
}
