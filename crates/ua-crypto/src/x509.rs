//! X.509-like certificates for OPC UA application instances.
//!
//! OPC UA servers authenticate with X.509v3 certificates whose
//! `subjectAltName` carries the server's ApplicationURI. The paper's
//! analysis (§5.2–§5.5) revolves around certificate properties: signature
//! hash function, (nominal) key length, self- vs. CA-signed, validity
//! window (`NotBefore`), per-host reuse (by thumbprint), and shared prime
//! factors. This module models exactly those properties.
//!
//! ## Campaign-wide interning
//!
//! The paper found certificates massively *reused*: one certificate can
//! be served by 1,000+ hosts (§5.2). A scanner that re-parses and
//! re-hashes the same DER once per host does the same cryptographic work
//! N times over. [`CertStore`] interns certificates by their DER bytes:
//! the first sighting parses, thumbprints, and self-signature-checks the
//! certificate into an [`Arc<ParsedCert>`]; every later sighting is a
//! map hit handing out the same `Arc`. Because a [`ParsedCert`] is a
//! pure function of the DER, interning is order- and thread-insensitive
//! — the scanner's worker-count byte-identity guarantee survives it.

use crate::bigint::BigUint;
use crate::der::{tag, DerError, Reader, Writer};
use crate::hash::{sha1, to_hex, HashAlgorithm};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A distinguished name, reduced to the fields the study inspects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    /// Common name (CN).
    pub common_name: String,
    /// Organization (O) — the paper identified a manufacturer through this
    /// field in a massively reused certificate (§5.3).
    pub organization: String,
    /// Country (C).
    pub country: String,
}

impl DistinguishedName {
    /// Creates a DN with the given common name and organization.
    pub fn new(common_name: impl Into<String>, organization: impl Into<String>) -> Self {
        DistinguishedName {
            common_name: common_name.into(),
            organization: organization.into(),
            country: String::new(),
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.nested(tag::SEQUENCE, |w| {
            w.utf8(&self.common_name);
            w.utf8(&self.organization);
            w.utf8(&self.country);
        });
    }

    fn decode(r: &mut Reader) -> Result<Self, DerError> {
        let mut seq = r.nested(tag::SEQUENCE)?;
        let dn = DistinguishedName {
            common_name: seq.utf8()?.to_string(),
            organization: seq.utf8()?.to_string(),
            country: seq.utf8()?.to_string(),
        };
        seq.expect_end()?;
        Ok(dn)
    }
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number.
    pub serial: u64,
    /// Hash algorithm of the signature (duplicated into the outer
    /// certificate, as X.509 does).
    pub signature_hash: HashAlgorithm,
    /// Issuer DN.
    pub issuer: DistinguishedName,
    /// Start of validity (unix seconds). The paper's §5.5 analyses
    /// `NotBefore` against the 2017 SHA-1 policy deprecation.
    pub not_before: i64,
    /// End of validity (unix seconds).
    pub not_after: i64,
    /// Subject DN.
    pub subject: DistinguishedName,
    /// Subject public key.
    pub public_key: RsaPublicKey,
    /// ApplicationURI carried in subjectAltName (OPC UA Part 6 requires
    /// this to match the server's ApplicationDescription).
    pub application_uri: String,
    /// Optional DNS/host names in subjectAltName (these are the fields the
    /// dataset release blackens for anonymization).
    pub dns_names: Vec<String>,
    /// CA flag (basicConstraints).
    pub is_ca: bool,
}

impl TbsCertificate {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            w.integer_u64(self.serial);
            w.integer_u64(hash_alg_code(self.signature_hash));
            self.issuer.encode(w);
            w.nested(tag::SEQUENCE, |w| {
                w.time(self.not_before);
                w.time(self.not_after);
            });
            self.subject.encode(w);
            // SubjectPublicKeyInfo: nominal bits + modulus + exponent.
            w.nested(tag::SEQUENCE, |w| {
                w.integer_u64(self.public_key.nominal_bits as u64);
                w.integer_bytes(&self.public_key.n.to_bytes_be());
                w.integer_bytes(&self.public_key.e.to_bytes_be());
            });
            // Extensions.
            w.nested(tag::CONTEXT_0, |w| {
                w.boolean(self.is_ca);
                w.utf8(&self.application_uri);
                w.nested(tag::CONTEXT_1, |w| {
                    for name in &self.dns_names {
                        w.utf8(name);
                    }
                });
            });
        });
        w.finish()
    }

    fn decode(r: &mut Reader) -> Result<Self, DerError> {
        let mut seq = r.nested(tag::SEQUENCE)?;
        let serial = seq.integer_u64()?;
        let hash = code_hash_alg(seq.integer_u64()?)?;
        let issuer = DistinguishedName::decode(&mut seq)?;
        let mut validity = seq.nested(tag::SEQUENCE)?;
        let not_before = validity.time()?;
        let not_after = validity.time()?;
        validity.expect_end()?;
        let subject = DistinguishedName::decode(&mut seq)?;
        let mut spki = seq.nested(tag::SEQUENCE)?;
        let nominal_bits = spki.integer_u64()? as u32;
        let n = BigUint::from_bytes_be(spki.integer_bytes()?);
        let e = BigUint::from_bytes_be(spki.integer_bytes()?);
        spki.expect_end()?;
        let mut ext = seq.nested(tag::CONTEXT_0)?;
        let is_ca = ext.boolean()?;
        let application_uri = ext.utf8()?.to_string();
        let mut alt = ext.nested(tag::CONTEXT_1)?;
        let mut dns_names = Vec::new();
        while !alt.is_empty() {
            dns_names.push(alt.utf8()?.to_string());
        }
        ext.expect_end()?;
        seq.expect_end()?;
        Ok(TbsCertificate {
            serial,
            signature_hash: hash,
            issuer,
            not_before,
            not_after,
            subject,
            public_key: RsaPublicKey { n, e, nominal_bits },
            application_uri,
            dns_names,
            is_ca,
        })
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed payload.
    pub tbs: TbsCertificate,
    /// RSA signature over the encoded TBS bytes.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Serializes the full certificate.
    pub fn to_der(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            let tbs = self.tbs.encode();
            w.tlv(tag::OCTET_STRING, &tbs);
            w.integer_u64(hash_alg_code(self.tbs.signature_hash));
            w.tlv(tag::BIT_STRING, &self.signature);
        });
        w.finish()
    }

    /// Parses a certificate from its serialized form.
    pub fn from_der(bytes: &[u8]) -> Result<Self, DerError> {
        let mut r = Reader::new(bytes);
        let mut seq = r.nested(tag::SEQUENCE)?;
        let tbs_raw = seq.expect(tag::OCTET_STRING)?;
        let mut tbs_reader = Reader::new(tbs_raw);
        let tbs = TbsCertificate::decode(&mut tbs_reader)?;
        tbs_reader.expect_end()?;
        let outer_alg = code_hash_alg(seq.integer_u64()?)?;
        if outer_alg != tbs.signature_hash {
            // X.509 requires inner and outer algorithms to agree.
            return Err(DerError::UnexpectedTag {
                expected: hash_alg_code(tbs.signature_hash) as u8,
                found: hash_alg_code(outer_alg) as u8,
            });
        }
        let signature = seq.expect(tag::BIT_STRING)?.to_vec();
        seq.expect_end()?;
        r.expect_end()?;
        Ok(Certificate { tbs, signature })
    }

    /// SHA-1 thumbprint of the serialized certificate — OPC UA identifies
    /// certificates by this value, and the paper clusters reused
    /// certificates by it (Figure 5).
    pub fn thumbprint(&self) -> [u8; 20] {
        sha1(&self.to_der())
    }

    /// Thumbprint as lowercase hex.
    pub fn thumbprint_hex(&self) -> String {
        to_hex(&self.thumbprint())
    }

    /// Verifies the signature with the given issuer key.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify(self.tbs.signature_hash, &self.tbs.encode(), &self.signature)
    }

    /// True if issuer equals subject and the embedded key verifies the
    /// signature (the paper found 99 % of OPC UA certs self-signed).
    pub fn is_self_signed(&self) -> bool {
        self.tbs.issuer == self.tbs.subject && self.verify_signature(&self.tbs.public_key)
    }

    /// True if `at_unix` falls in the validity window.
    pub fn is_valid_at(&self, at_unix: i64) -> bool {
        self.tbs.not_before <= at_unix && at_unix <= self.tbs.not_after
    }

    /// Advertised key length in bits (nominal; see `ua-crypto::rsa` docs).
    pub fn key_bits(&self) -> u32 {
        self.tbs.public_key.nominal_bits
    }

    /// Hash algorithm of the certificate signature.
    pub fn signature_hash(&self) -> HashAlgorithm {
        self.tbs.signature_hash
    }
}

/// Builds certificates for OPC UA applications.
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    serial: u64,
    subject: DistinguishedName,
    not_before: i64,
    not_after: i64,
    application_uri: String,
    dns_names: Vec<String>,
    is_ca: bool,
}

impl CertificateBuilder {
    /// Starts a builder for `subject`.
    pub fn new(subject: DistinguishedName) -> Self {
        CertificateBuilder {
            serial: 1,
            subject,
            not_before: 0,
            not_after: i64::MAX,
            application_uri: String::new(),
            dns_names: Vec::new(),
            is_ca: false,
        }
    }

    /// Sets the serial number.
    pub fn serial(mut self, serial: u64) -> Self {
        self.serial = serial;
        self
    }

    /// Sets the validity window (unix seconds).
    pub fn validity(mut self, not_before: i64, not_after: i64) -> Self {
        self.not_before = not_before;
        self.not_after = not_after;
        self
    }

    /// Sets the ApplicationURI (subjectAltName URI).
    pub fn application_uri(mut self, uri: impl Into<String>) -> Self {
        self.application_uri = uri.into();
        self
    }

    /// Adds a DNS name to subjectAltName.
    pub fn dns_name(mut self, name: impl Into<String>) -> Self {
        self.dns_names.push(name.into());
        self
    }

    /// Marks the certificate as a CA certificate.
    pub fn ca(mut self, is_ca: bool) -> Self {
        self.is_ca = is_ca;
        self
    }

    /// Self-signs with `key` using `hash`.
    pub fn self_signed(self, hash: HashAlgorithm, key: &RsaPrivateKey) -> Certificate {
        let issuer = self.subject.clone();
        self.signed_by(hash, issuer, key, &key.public)
    }

    /// Signs with an external issuer.
    pub fn issued_by(
        self,
        hash: HashAlgorithm,
        issuer: DistinguishedName,
        issuer_key: &RsaPrivateKey,
        subject_public: &RsaPublicKey,
    ) -> Certificate {
        self.signed_by(hash, issuer, issuer_key, subject_public)
    }

    fn signed_by(
        self,
        hash: HashAlgorithm,
        issuer: DistinguishedName,
        issuer_key: &RsaPrivateKey,
        subject_public: &RsaPublicKey,
    ) -> Certificate {
        let tbs = TbsCertificate {
            serial: self.serial,
            signature_hash: hash,
            issuer,
            not_before: self.not_before,
            not_after: self.not_after,
            subject: self.subject,
            public_key: subject_public.clone(),
            application_uri: self.application_uri,
            dns_names: self.dns_names,
            is_ca: self.is_ca,
        };
        let signature = issuer_key.sign(hash, &tbs.encode());
        Certificate { tbs, signature }
    }
}

/// A certificate parsed, thumbprinted, and identity-checked exactly
/// once, shared by every host that serves the same DER bytes.
///
/// Precomputed at intern time:
///
/// * the SHA-1 thumbprint of the DER (what OPC UA identifies
///   certificates by, and what reuse clustering keys on);
/// * the parsed [`Certificate`] (or the parse error, for hosts serving
///   garbage where a certificate belongs);
/// * the self-signed verdict — an RSA verification, by far the most
///   expensive per-certificate step, now paid once per *distinct*
///   certificate instead of once per host.
pub struct ParsedCert {
    der: Vec<u8>,
    thumbprint: [u8; 20],
    parsed: Result<Certificate, DerError>,
    self_signed: bool,
}

impl ParsedCert {
    /// Parses and thumbprints `der`. Never fails: unparseable bytes
    /// yield a handle whose [`Self::certificate`] is `None` (the
    /// assessment treats those hosts as serving no usable certificate).
    pub fn parse(der: Vec<u8>) -> ParsedCert {
        let thumbprint = sha1(&der);
        let parsed = Certificate::from_der(&der);
        let self_signed = parsed.as_ref().map(Certificate::is_self_signed) == Ok(true);
        ParsedCert {
            der,
            thumbprint,
            parsed,
            self_signed,
        }
    }

    /// The raw DER bytes as delivered.
    pub fn der(&self) -> &[u8] {
        &self.der
    }

    /// SHA-1 thumbprint of the DER bytes.
    pub fn thumbprint(&self) -> [u8; 20] {
        self.thumbprint
    }

    /// Thumbprint as lowercase hex.
    pub fn thumbprint_hex(&self) -> String {
        to_hex(&self.thumbprint)
    }

    /// The parsed certificate, `None` when the DER did not parse.
    pub fn certificate(&self) -> Option<&Certificate> {
        self.parsed.as_ref().ok()
    }

    /// The parse error, `None` when the DER parsed cleanly.
    pub fn parse_error(&self) -> Option<&DerError> {
        self.parsed.as_ref().err()
    }

    /// The RSA modulus of the subject key, `None` for unparseable DER.
    pub fn modulus(&self) -> Option<&BigUint> {
        self.certificate().map(|c| &c.tbs.public_key.n)
    }

    /// Precomputed self-signed verdict (`false` for unparseable DER).
    pub fn is_self_signed(&self) -> bool {
        self.self_signed
    }
}

impl PartialEq for ParsedCert {
    fn eq(&self, other: &Self) -> bool {
        // Everything else is derived from the DER.
        self.der == other.der
    }
}

impl Eq for ParsedCert {}

impl std::hash::Hash for ParsedCert {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.der.hash(state);
    }
}

impl std::fmt::Debug for ParsedCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParsedCert")
            .field("thumbprint", &self.thumbprint_hex())
            .field("der_len", &self.der.len())
            .field("parsed", &self.parsed.is_ok())
            .field("self_signed", &self.self_signed)
            .finish()
    }
}

/// Observability counters of a [`CertStore`]: how many certificates
/// were sighted versus how many were actually distinct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertStoreStats {
    /// Intern calls — one per certificate-bearing endpoint snapshot.
    pub sightings: u64,
    /// Distinct DER payloads behind those sightings.
    pub distinct: u64,
}

impl CertStoreStats {
    /// Share of sightings served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.sightings == 0 {
            0.0
        } else {
            1.0 - self.distinct as f64 / self.sightings as f64
        }
    }
}

/// A SHA-1 certificate thumbprint, used as a first-class identity.
///
/// OPC UA identifies certificates by this value, and the longitudinal
/// study leans on it twice over: reused certificates cluster by
/// thumbprint within one campaign (§5.3), and *across* campaigns the
/// thumbprint is the cross-week host identity — a host that keeps its
/// certificate while DHCP hands it a new address is recognizably the
/// same deployment (§4.3's stable-key-despite-IP-churn matching).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Thumbprint(pub [u8; 20]);

impl Thumbprint {
    /// The thumbprint of serialized certificate bytes.
    pub fn of_der(der: &[u8]) -> Thumbprint {
        Thumbprint(sha1(der))
    }

    /// Lowercase hex rendering.
    pub fn to_hex(self) -> String {
        to_hex(&self.0)
    }
}

impl From<[u8; 20]> for Thumbprint {
    fn from(bytes: [u8; 20]) -> Self {
        Thumbprint(bytes)
    }
}

impl std::fmt::Display for Thumbprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::fmt::Debug for Thumbprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Thumbprint({})", self.to_hex())
    }
}

impl ParsedCert {
    /// The thumbprint as a typed identity (see [`Thumbprint`]).
    pub fn identity(&self) -> Thumbprint {
        Thumbprint(self.thumbprint)
    }
}

/// A campaign-wide certificate interner keyed by DER bytes.
///
/// Thread-safe behind a single mutex whose critical section is only a
/// map probe/insert — the expensive work (DER parse, thumbprint, RSA
/// self-signature check) runs *outside* the lock, so scanner shards
/// never stall behind each other's parses. Two shards racing on the
/// same fresh DER may both parse it; the first insert wins, and since
/// a [`ParsedCert`] is a pure function of the DER the loser's handle
/// is an equal value — determinism is unaffected.
#[derive(Debug, Default)]
pub struct CertStore {
    inner: Mutex<CertStoreInner>,
}

#[derive(Debug, Default)]
struct CertStoreInner {
    by_der: HashMap<Vec<u8>, Arc<ParsedCert>>,
    sightings: u64,
}

impl CertStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single acquisition point for the store lock. Guard scopes are a
    /// map probe or insert; a poisoned store means a sibling probe
    /// worker panicked and the dedup counters can no longer be
    /// trusted — propagate.
    fn locked(&self) -> std::sync::MutexGuard<'_, CertStoreInner> {
        // ua-lint: allow(panic-hygiene) -- poisoned cert store: a worker panicked; propagate it
        self.inner.lock().expect("cert store poisoned")
    }

    /// Interns `der`: parses and hashes on first sighting, hands out the
    /// shared handle on every later one.
    pub fn intern(&self, der: &[u8]) -> Arc<ParsedCert> {
        {
            let mut inner = self.locked();
            inner.sightings += 1;
            if let Some(hit) = inner.by_der.get(der) {
                return Arc::clone(hit);
            }
        }
        // Miss: parse without holding the lock, then insert
        // first-wins.
        let parsed = Arc::new(ParsedCert::parse(der.to_vec()));
        let mut inner = self.locked();
        Arc::clone(inner.by_der.entry(der.to_vec()).or_insert(parsed))
    }

    /// Current sighting/distinct counters.
    pub fn stats(&self) -> CertStoreStats {
        let inner = self.locked();
        CertStoreStats {
            sightings: inner.sightings,
            distinct: inner.by_der.len() as u64,
        }
    }
}

fn hash_alg_code(alg: HashAlgorithm) -> u64 {
    match alg {
        HashAlgorithm::Md5 => 1,
        HashAlgorithm::Sha1 => 2,
        HashAlgorithm::Sha256 => 3,
    }
}

fn code_hash_alg(code: u64) -> Result<HashAlgorithm, DerError> {
    match code {
        1 => Ok(HashAlgorithm::Md5),
        2 => Ok(HashAlgorithm::Sha1),
        3 => Ok(HashAlgorithm::Sha256),
        _ => Err(DerError::BadLength),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaPrivateKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key(seed: u64) -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaPrivateKey::generate(&mut rng, 256, 2048)
    }

    fn sample_cert(key: &RsaPrivateKey, hash: HashAlgorithm) -> Certificate {
        CertificateBuilder::new(DistinguishedName::new("device-1", "Acme Automation"))
            .serial(42)
            .validity(1_483_228_800, 1_893_456_000) // 2017-01-01 .. 2030-01-01
            .application_uri("urn:acme:device-1")
            .dns_name("device-1.factory.example")
            .self_signed(hash, key)
    }

    #[test]
    fn der_roundtrip() {
        let key = test_key(1);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let der = cert.to_der();
        let parsed = Certificate::from_der(&der).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.tbs.subject.common_name, "device-1");
        assert_eq!(parsed.tbs.application_uri, "urn:acme:device-1");
        assert_eq!(parsed.key_bits(), 2048);
    }

    #[test]
    fn self_signed_verifies() {
        let key = test_key(2);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        assert!(cert.is_self_signed());
        assert!(cert.verify_signature(&key.public));
    }

    #[test]
    fn ca_signed_verifies_with_issuer_only() {
        let ca_key = test_key(3);
        let dev_key = test_key(4);
        let cert = CertificateBuilder::new(DistinguishedName::new("dev", "Op"))
            .application_uri("urn:op:dev")
            .issued_by(
                HashAlgorithm::Sha256,
                DistinguishedName::new("Acme CA", "Acme"),
                &ca_key,
                &dev_key.public,
            );
        assert!(!cert.is_self_signed());
        assert!(cert.verify_signature(&ca_key.public));
        assert!(!cert.verify_signature(&dev_key.public));
    }

    #[test]
    fn thumbprint_is_stable_and_distinct() {
        let key = test_key(5);
        let c1 = sample_cert(&key, HashAlgorithm::Sha256);
        let c2 = sample_cert(&key, HashAlgorithm::Sha256);
        assert_eq!(c1.thumbprint(), c2.thumbprint());
        let c3 = sample_cert(&key, HashAlgorithm::Sha1);
        assert_ne!(c1.thumbprint(), c3.thumbprint());
        assert_eq!(c1.thumbprint_hex().len(), 40);
    }

    #[test]
    fn validity_window() {
        let key = test_key(6);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        assert!(cert.is_valid_at(1_600_000_000)); // 2020
        assert!(!cert.is_valid_at(1_400_000_000)); // 2014
        assert!(!cert.is_valid_at(2_000_000_000)); // 2033
    }

    #[test]
    fn tampered_cert_fails_verification() {
        let key = test_key(7);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let mut tampered = cert.clone();
        tampered.tbs.subject.common_name = "evil".into();
        assert!(!tampered.verify_signature(&key.public));
    }

    #[test]
    fn sha1_and_md5_certs_encode_their_hash() {
        let key = test_key(8);
        for hash in [HashAlgorithm::Md5, HashAlgorithm::Sha1] {
            let cert = sample_cert(&key, hash);
            let parsed = Certificate::from_der(&cert.to_der()).unwrap();
            assert_eq!(parsed.signature_hash(), hash);
            assert!(parsed.is_self_signed());
        }
    }

    #[test]
    fn from_der_rejects_garbage() {
        assert!(Certificate::from_der(&[]).is_err());
        assert!(Certificate::from_der(&[0x30, 0x02, 0x01, 0x01]).is_err());
        let key = test_key(9);
        let mut der = sample_cert(&key, HashAlgorithm::Sha256).to_der();
        der.truncate(der.len() / 2);
        assert!(Certificate::from_der(&der).is_err());
    }

    #[test]
    fn cert_store_interns_by_der() {
        let key = test_key(11);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let der = cert.to_der();
        let other = sample_cert(&key, HashAlgorithm::Sha1).to_der();

        let store = CertStore::new();
        let a = store.intern(&der);
        let b = store.intern(&der);
        let c = store.intern(&other);
        assert!(Arc::ptr_eq(&a, &b), "same DER must share one handle");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.thumbprint(), cert.thumbprint());
        assert_eq!(a.certificate().unwrap(), &cert);
        assert!(a.is_self_signed());
        assert_eq!(a.modulus(), Some(&key.public.n));

        let stats = store.stats();
        assert_eq!(stats.sightings, 3);
        assert_eq!(stats.distinct, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cert_store_survives_garbage() {
        let store = CertStore::new();
        let junk = store.intern(&[1, 2, 3]);
        assert!(junk.certificate().is_none());
        assert!(junk.parse_error().is_some());
        assert!(!junk.is_self_signed());
        assert_eq!(junk.modulus(), None);
        assert_eq!(junk.thumbprint(), sha1(&[1, 2, 3]));
        assert_eq!(store.stats().distinct, 1);
    }

    #[test]
    fn cert_store_is_deterministic_across_threads() {
        let key = test_key(12);
        let der = sample_cert(&key, HashAlgorithm::Sha256).to_der();
        let store = CertStore::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(store.intern(&der).thumbprint(), sha1(&der));
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.sightings, 32);
        assert_eq!(stats.distinct, 1);
    }

    #[test]
    fn thumbprint_identity_round_trips() {
        let key = test_key(21);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        let der = cert.to_der();
        let tp = Thumbprint::of_der(&der);
        assert_eq!(tp, Thumbprint::from(cert.thumbprint()));
        assert_eq!(tp.to_hex(), cert.thumbprint_hex());
        assert_eq!(format!("{tp}"), cert.thumbprint_hex());
        // The interned handle agrees — one identity, three spellings.
        let store = CertStore::new();
        assert_eq!(store.intern(&der).identity(), tp);
        // Distinct DER, distinct identity; identities order totally.
        let other = Thumbprint::of_der(b"other");
        assert_ne!(tp, other);
        assert!(tp < other || other < tp);
    }

    #[test]
    fn mismatched_inner_outer_alg_rejected() {
        let key = test_key(10);
        let cert = sample_cert(&key, HashAlgorithm::Sha256);
        // Manually rebuild the outer TLV with a different outer algorithm.
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            w.tlv(tag::OCTET_STRING, &cert.tbs.encode());
            w.integer_u64(hash_alg_code(HashAlgorithm::Sha1));
            w.tlv(tag::BIT_STRING, &cert.signature);
        });
        assert!(Certificate::from_der(&w.finish()).is_err());
    }
}
