//! # ua-crypto
//!
//! Cryptographic substrate for the OPC UA measurement study reproduction.
//!
//! The paper ("Easing the Conscience with OPC UA", IMC 2020) assesses the
//! *cryptographic configuration* of Internet-facing OPC UA servers:
//! signature hash functions, key lengths, certificate reuse, and shared
//! prime factors. Reproducing that requires a real (if scaled-down) crypto
//! stack, implemented here from scratch:
//!
//! * [`bigint`] — arbitrary-precision unsigned integers: Karatsuba
//!   multiplication above [`bigint::KARATSUBA_THRESHOLD`], a dedicated
//!   squaring path, and [`Montgomery`]-form windowed exponentiation for
//!   odd moduli (the legacy division-per-step path stays available as
//!   [`BigUint::mod_pow_legacy`] for even moduli and benchmarking);
//! * [`prime`] — Miller–Rabin primality testing and prime generation;
//! * [`rsa`] — RSA keys, PKCS#1-style signatures, and encryption
//!   (verification rides the Montgomery `mod_pow` path);
//! * [`hash`] — MD5 / SHA-1 / SHA-256, HMAC, and the OPC UA `P_SHA` KDF;
//! * [`der`] — a minimal DER-style TLV codec;
//! * [`x509`] — X.509-like application-instance certificates, plus the
//!   campaign-wide [`CertStore`] interner: a certificate served by N
//!   hosts is parsed/thumbprinted/identity-checked once, not N times;
//! * [`batch_gcd`](mod@batch_gcd) — pairwise and product-tree shared-prime detection
//!   (Heninger et al.), used for the §5.3 weak-key analysis; the tree
//!   runs on the Karatsuba/squaring kernels and consumes deduplicated
//!   moduli.
//!
//! ## Security note
//!
//! This crate exists to *study* insecure configurations; MD5/SHA-1 and
//! PKCS#1 v1.5 are implemented deliberately, and key sizes are scaled for
//! simulation throughput. Do not use it to secure anything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod batch_gcd;
pub mod bigint;
pub mod der;
pub mod hash;
pub mod prime;
pub mod rsa;
pub mod x509;

pub use aes::{cbc_decrypt, cbc_encrypt, Aes, AesError};
pub use batch_gcd::{
    batch_gcd, find_shared_factors, pairwise_shared_factors, ProductTree, SharedFactor,
};
pub use bigint::{BigUint, Montgomery};
pub use hash::{hmac, md5, p_sha, sha1, sha256, HashAlgorithm};
pub use prime::{generate_prime, is_probable_prime};
pub use rsa::{RsaError, RsaPrivateKey, RsaPublicKey};
pub use x509::{
    CertStore, CertStoreStats, Certificate, CertificateBuilder, DistinguishedName, ParsedCert,
    TbsCertificate, Thumbprint,
};
