//! Cryptographic hash functions used by OPC UA security policies.
//!
//! Implements MD5 (RFC 1321), SHA-1 (FIPS 180-1), and SHA-256 (FIPS 180-4)
//! from scratch, plus HMAC (RFC 2104) and the `P_SHA` pseudo-random
//! function that OPC UA Part 6 uses to derive symmetric channel keys.
//!
//! MD5 and SHA-1 are implemented *because the study needs them*: the paper
//! finds servers delivering MD5- and SHA-1-signed certificates (Figure 4)
//! and security policies deprecated for their SHA-1 use (Table 1).
//! They must never be used for new designs.

/// Identifies a hash algorithm, as recorded in certificates and policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashAlgorithm {
    /// MD5 — broken; appears in the wild on old embedded devices (§5.2).
    Md5,
    /// SHA-1 — deprecated since 2017 for OPC UA policies (Table 1).
    Sha1,
    /// SHA-256 — the recommended baseline.
    Sha256,
}

impl HashAlgorithm {
    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlgorithm::Md5 => 16,
            HashAlgorithm::Sha1 => 20,
            HashAlgorithm::Sha256 => 32,
        }
    }

    /// Hashes `data` with this algorithm.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgorithm::Md5 => md5(data).to_vec(),
            HashAlgorithm::Sha1 => sha1(data).to_vec(),
            HashAlgorithm::Sha256 => sha256(data).to_vec(),
        }
    }

    /// Human-readable name as it would appear in a certificate's
    /// `signatureAlgorithm` field.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgorithm::Md5 => "MD5",
            HashAlgorithm::Sha1 => "SHA-1",
            HashAlgorithm::Sha256 => "SHA-256",
        }
    }

    /// True for algorithms considered secure at the time of the study.
    pub fn is_secure(self) -> bool {
        matches!(self, HashAlgorithm::Sha256)
    }
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let padded = merkle_damgard_pad(data, false);
    for block in padded.chunks_exact(64) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, v) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];
    let padded = merkle_damgard_pad(data, false);
    for block in padded.chunks_exact(64) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, v) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// MD5
// ---------------------------------------------------------------------------

const MD5_S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const MD5_K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;
    let padded = merkle_damgard_pad(data, true);
    for block in padded.chunks_exact(64) {
        let mut m = [0u32; 16];
        for i in 0..16 {
            m[i] = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let f2 = f.wrapping_add(a).wrapping_add(MD5_K[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f2.rotate_left(MD5_S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// Merkle–Damgård padding shared by MD5/SHA-1/SHA-256: append `0x80`, pad
/// with zeros to 56 mod 64, then the bit length as a 64-bit integer
/// (little-endian for MD5, big-endian otherwise).
fn merkle_damgard_pad(data: &[u8], le_length: bool) -> Vec<u8> {
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut out = Vec::with_capacity(data.len() + 72);
    out.extend_from_slice(data);
    out.push(0x80);
    while out.len() % 64 != 56 {
        out.push(0);
    }
    if le_length {
        out.extend_from_slice(&bit_len.to_le_bytes());
    } else {
        out.extend_from_slice(&bit_len.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// HMAC and P_SHA
// ---------------------------------------------------------------------------

/// HMAC (RFC 2104) keyed by `key` over `message` with the given algorithm.
///
/// OPC UA symmetric message signing uses HMAC-SHA1 (deprecated policies)
/// or HMAC-SHA256 (current policies).
pub fn hmac(alg: HashAlgorithm, key: &[u8], message: &[u8]) -> Vec<u8> {
    const BLOCK: usize = 64; // MD5/SHA-1/SHA-256 all use 64-byte blocks
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kd = alg.digest(key);
        key_block[..kd.len()].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + alg.digest_len());
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_digest = alg.digest(&inner);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_digest);
    alg.digest(&outer)
}

/// The `P_SHA` pseudo-random function from OPC UA Part 6 (identical to the
/// TLS 1.x P_hash construction): expands `secret` and `seed` into `len`
/// bytes of key material for the secure-channel symmetric keys.
pub fn p_sha(alg: HashAlgorithm, secret: &[u8], seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + alg.digest_len());
    // A(0) = seed; A(i) = HMAC(secret, A(i-1))
    let mut a = hmac(alg, secret, seed);
    while out.len() < len {
        let mut input = a.clone();
        input.extend_from_slice(seed);
        out.extend_from_slice(&hmac(alg, secret, &input));
        a = hmac(alg, secret, &a);
    }
    out.truncate(len);
    out
}

/// Formats a digest as lowercase hex (used for thumbprint display).
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_long_input() {
        // "a" repeated one million times.
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&million_a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha1_vectors() {
        assert_eq!(
            to_hex(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            to_hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            to_hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn md5_vectors() {
        // RFC 1321 appendix A.5.
        assert_eq!(to_hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(to_hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(to_hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            to_hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            to_hex(&md5(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
    }

    #[test]
    fn hmac_sha256_rfc4231() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let out = hmac(HashAlgorithm::Sha256, &key, b"Hi There");
        assert_eq!(
            to_hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // RFC 4231 test case 2 ("Jefe").
        let out = hmac(
            HashAlgorithm::Sha256,
            b"Jefe",
            b"what do ya want for nothing?",
        );
        assert_eq!(
            to_hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_sha1_rfc2202() {
        let key = [0x0bu8; 20];
        let out = hmac(HashAlgorithm::Sha1, &key, b"Hi There");
        assert_eq!(to_hex(&out), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = vec![0xaau8; 131]; // longer than block size
        let out = hmac(
            HashAlgorithm::Sha256,
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        // RFC 4231 test case 6.
        assert_eq!(
            to_hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn p_sha_deterministic_and_length() {
        let a = p_sha(HashAlgorithm::Sha256, b"secret", b"seed", 100);
        let b = p_sha(HashAlgorithm::Sha256, b"secret", b"seed", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // Prefix property: shorter expansion is a prefix of longer.
        let c = p_sha(HashAlgorithm::Sha256, b"secret", b"seed", 40);
        assert_eq!(&a[..40], c.as_slice());
        // Different seeds diverge.
        let d = p_sha(HashAlgorithm::Sha256, b"secret", b"seed2", 40);
        assert_ne!(c, d);
    }

    #[test]
    fn digest_len_matches_output() {
        for alg in [
            HashAlgorithm::Md5,
            HashAlgorithm::Sha1,
            HashAlgorithm::Sha256,
        ] {
            assert_eq!(alg.digest(b"x").len(), alg.digest_len());
        }
    }

    #[test]
    fn algorithm_metadata() {
        assert!(HashAlgorithm::Sha256.is_secure());
        assert!(!HashAlgorithm::Sha1.is_secure());
        assert!(!HashAlgorithm::Md5.is_secure());
        assert_eq!(HashAlgorithm::Sha1.name(), "SHA-1");
    }
}
