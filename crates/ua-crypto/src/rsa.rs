//! RSA key generation, signatures, and encryption.
//!
//! OPC UA's asymmetric security (certificate signatures, OpenSecureChannel
//! encryption) is RSA-based. This module provides a from-scratch RSA over
//! [`crate::bigint::BigUint`].
//!
//! Every raw RSA operation (`m^e mod n`, `c^d mod n`) goes through
//! [`BigUint::mod_pow`], which — RSA moduli being odd — always takes the
//! windowed [`crate::bigint::Montgomery`] path: zero divisions per
//! square/multiply step. At campaign scale this is what makes
//! verifying thousands of certificate signatures (and the Miller–Rabin
//! tests behind key generation) cheap.
//!
//! # Nominal vs. actual key size
//!
//! The paper assesses key lengths of 1024/2048/4096 bits (Table 1). Real
//! keys of those sizes are expensive to generate in the volume the
//! simulation needs (thousands of certificates), so a key carries two
//! sizes:
//!
//! * `nominal_bits` — the advertised modulus length that the assessment
//!   pipeline sees and that Figure 4 buckets by;
//! * the *actual* modulus, which may be smaller (default 256 bit) so that
//!   millions of operations stay cheap.
//!
//! All arithmetic (sign/verify/encrypt/decrypt, shared-prime GCD) is real
//! arithmetic on the actual modulus, so every code path a real key would
//! take is exercised; only the magnitude is scaled. Tests exercise
//! full-size (512/1024-bit actual) keys as well. This substitution is
//! recorded in DESIGN.md.
//!
//! # Padding
//!
//! Signatures use a PKCS#1 v1.5-like encoding: `0x00 0x01 0xFF… 0x00 ||
//! alg-id(2 bytes) || digest`, with the digest truncated if the modulus is
//! too small to hold it (only possible with scaled-down simulation keys;
//! full-size keys never truncate). Encryption uses PKCS#1 v1.5 type-2
//! random padding.

use crate::bigint::BigUint;
use crate::hash::HashAlgorithm;
use crate::prime::generate_prime;
use rand::Rng;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too large for the modulus.
    MessageTooLong,
    /// Ciphertext or signature is not smaller than the modulus.
    ValueOutOfRange,
    /// Padding check failed on decryption.
    BadPadding,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            RsaError::ValueOutOfRange => write!(f, "value out of range for RSA modulus"),
            RsaError::BadPadding => write!(f, "bad RSA padding"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent (65537 by convention).
    pub e: BigUint,
    /// Advertised key length in bits (what certificates claim; see module
    /// docs for the nominal/actual distinction).
    pub nominal_bits: u32,
}

impl RsaPublicKey {
    /// Modulus size in bytes (actual).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_length().div_ceil(8)
    }

    /// Raw RSA public operation `m^e mod n`.
    pub fn raw(&self, m: &BigUint) -> Result<BigUint, RsaError> {
        if m >= &self.n {
            return Err(RsaError::ValueOutOfRange);
        }
        Ok(m.mod_pow(&self.e, &self.n))
    }

    /// Verifies a signature over `message` hashed with `alg`.
    pub fn verify(&self, alg: HashAlgorithm, message: &[u8], signature: &[u8]) -> bool {
        let s = BigUint::from_bytes_be(signature);
        let em = match self.raw(&s) {
            Ok(v) => v.to_bytes_be_padded(self.modulus_len()),
            Err(_) => return false,
        };
        match pkcs1_sign_encode(alg, message, self.modulus_len()) {
            Ok(expected) => constant_time_eq(&em, &expected),
            Err(_) => false,
        }
    }

    /// Encrypts `plaintext` with PKCS#1 v1.5 type-2 padding.
    ///
    /// This is what an OPC UA client does with its secret nonce during an
    /// OpenSecureChannel handshake on an encrypting policy.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        plaintext: &[u8],
    ) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        if plaintext.len() + 11 > k {
            return Err(RsaError::MessageTooLong);
        }
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..(k - plaintext.len() - 3) {
            // Nonzero random padding bytes.
            loop {
                let b: u8 = rng.gen();
                if b != 0 {
                    em.push(b);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&em);
        Ok(self.raw(&m)?.to_bytes_be_padded(k))
    }

    /// Maximum plaintext bytes per encrypted block.
    pub fn max_plaintext_len(&self) -> usize {
        self.modulus_len().saturating_sub(11)
    }
}

/// An RSA private key (with public half and prime factors).
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// The public half.
    pub public: RsaPublicKey,
    /// Prime factor `p` (kept for the shared-prime experiment and tests).
    pub p: BigUint,
    /// Prime factor `q`.
    pub q: BigUint,
    /// Private exponent `d = e^-1 mod lcm(p-1, q-1)`.
    pub d: BigUint,
}

impl RsaPrivateKey {
    /// Generates a key with an actual modulus of `actual_bits` and an
    /// advertised length of `nominal_bits` (see module docs).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, actual_bits: usize, nominal_bits: u32) -> Self {
        assert!(actual_bits >= 64, "modulus too small");
        let half = actual_bits / 2;
        loop {
            let p = generate_prime(rng, half);
            let q = generate_prime(rng, actual_bits - half);
            if p == q {
                continue;
            }
            if let Some(key) = Self::from_primes(p, q, nominal_bits) {
                return key;
            }
        }
    }

    /// Generates a key reusing a known prime `p` — used by the population
    /// generator *not at all*, and by tests to validate that the batch-GCD
    /// detector finds deliberately weak key pairs (the paper checked for
    /// shared primes and found none; our fleet must also have none).
    pub fn generate_with_shared_prime<R: Rng + ?Sized>(
        rng: &mut R,
        shared_p: &BigUint,
        other_bits: usize,
        nominal_bits: u32,
    ) -> Self {
        loop {
            let q = generate_prime(rng, other_bits);
            if &q == shared_p {
                continue;
            }
            if let Some(key) = Self::from_primes(shared_p.clone(), q, nominal_bits) {
                return key;
            }
        }
    }

    /// Assembles a key from two primes; `None` if `e` is not invertible.
    pub fn from_primes(p: BigUint, q: BigUint, nominal_bits: u32) -> Option<Self> {
        let one = BigUint::one();
        let n = p.mul(&q);
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        // λ(n) = lcm(p-1, q-1) = (p-1)(q-1)/gcd(p-1, q-1)
        let g = p1.gcd(&q1);
        let lambda = p1.mul(&q1).div_rem(&g).0;
        let e = BigUint::from_u64(65537);
        let d = e.mod_inverse(&lambda)?;
        Some(RsaPrivateKey {
            public: RsaPublicKey { n, e, nominal_bits },
            p,
            q,
            d,
        })
    }

    /// Raw RSA private operation `c^d mod n`.
    pub fn raw(&self, c: &BigUint) -> Result<BigUint, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::ValueOutOfRange);
        }
        Ok(c.mod_pow(&self.d, &self.public.n))
    }

    /// Signs `message` (hashed with `alg`) with PKCS#1 v1.5-style padding.
    pub fn sign(&self, alg: HashAlgorithm, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        // ua-lint: allow(panic-hygiene) -- generated keys are always wide enough for a digest block
        let em = pkcs1_sign_encode(alg, message, k).expect("modulus large enough for digest");
        let m = BigUint::from_bytes_be(&em);
        self.raw(&m)
            // ua-lint: allow(panic-hygiene) -- the encoded block is k bytes with a zero top byte, below n
            .expect("encoded message below modulus")
            .to_bytes_be_padded(k)
    }

    /// Decrypts a PKCS#1 v1.5 type-2 ciphertext.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(RsaError::ValueOutOfRange);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let em = self.raw(&c)?.to_bytes_be_padded(k);
        if em.len() < 11 || em[0] != 0x00 || em[1] != 0x02 {
            return Err(RsaError::BadPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::BadPadding)?;
        if sep < 8 {
            return Err(RsaError::BadPadding); // at least 8 padding bytes
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

/// Algorithm identifier bytes embedded in the signature encoding (a compact
/// stand-in for the DER `DigestInfo` prefix).
fn alg_id(alg: HashAlgorithm) -> [u8; 2] {
    match alg {
        HashAlgorithm::Md5 => [0x30, 0x05],
        HashAlgorithm::Sha1 => [0x30, 0x21],
        HashAlgorithm::Sha256 => [0x30, 0x31],
    }
}

/// Builds the padded encoded message for signing:
/// `0x00 0x01 FF.. 0x00 alg-id digest`.
///
/// If the modulus is too small for the full digest (scaled-down simulation
/// keys only), the digest is truncated; a minimum of 8 digest bytes and 8
/// padding bytes is enforced.
fn pkcs1_sign_encode(alg: HashAlgorithm, message: &[u8], k: usize) -> Result<Vec<u8>, RsaError> {
    let digest = alg.digest(message);
    let id = alg_id(alg);
    // 3 framing bytes + 2 alg-id + >=8 padding.
    let room = k
        .checked_sub(3 + id.len() + 8)
        .ok_or(RsaError::MessageTooLong)?;
    let dlen = digest.len().min(room);
    if dlen < 8 {
        return Err(RsaError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xff, k - dlen - id.len() - 3));
    em.push(0x00);
    em.extend_from_slice(&id);
    em.extend_from_slice(&digest[..dlen]);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(bits: usize) -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        RsaPrivateKey::generate(&mut rng, bits, 2048)
    }

    #[test]
    fn keygen_produces_valid_key() {
        let k = key(256);
        assert_eq!(k.public.n, k.p.mul(&k.q));
        assert_eq!(k.public.nominal_bits, 2048);
        assert!(k.public.n.bit_length() >= 255);
        // e*d = 1 mod lambda — verified indirectly by a raw roundtrip.
        let m = BigUint::from_u64(0x1234_5678);
        let c = k.public.raw(&m).unwrap();
        assert_eq!(k.raw(&c).unwrap(), m);
    }

    #[test]
    fn sign_verify_roundtrip_all_algs() {
        let k = key(256);
        for alg in [
            HashAlgorithm::Md5,
            HashAlgorithm::Sha1,
            HashAlgorithm::Sha256,
        ] {
            let sig = k.sign(alg, b"easing the conscience");
            assert!(k.public.verify(alg, b"easing the conscience", &sig));
            assert!(!k.public.verify(alg, b"easing the conscienze", &sig));
        }
    }

    #[test]
    fn full_size_key_no_truncation() {
        // A 512-bit actual key holds a full SHA-256 DigestInfo; exercise the
        // untruncated path that real-world keys would take.
        let k = key(512);
        let sig = k.sign(HashAlgorithm::Sha256, b"full size");
        assert_eq!(sig.len(), k.public.modulus_len());
        assert!(k.public.verify(HashAlgorithm::Sha256, b"full size", &sig));
    }

    #[test]
    fn wrong_key_rejects_signature() {
        let k1 = key(256);
        let mut rng = StdRng::seed_from_u64(777);
        let k2 = RsaPrivateKey::generate(&mut rng, 256, 2048);
        let sig = k1.sign(HashAlgorithm::Sha256, b"msg");
        assert!(!k2.public.verify(HashAlgorithm::Sha256, b"msg", &sig));
    }

    #[test]
    fn wrong_alg_rejects_signature() {
        let k = key(256);
        let sig = k.sign(HashAlgorithm::Sha1, b"msg");
        assert!(!k.public.verify(HashAlgorithm::Sha256, b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let k = key(256);
        let mut sig = k.sign(HashAlgorithm::Sha256, b"msg");
        sig[0] ^= 0x80;
        assert!(!k.public.verify(HashAlgorithm::Sha256, b"msg", &sig));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let k = key(256);
        let mut rng = StdRng::seed_from_u64(42);
        let msg = b"nonce1234";
        let ct = k.public.encrypt(&mut rng, msg).unwrap();
        assert_eq!(ct.len(), k.public.modulus_len());
        assert_eq!(k.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn encrypt_too_long_fails() {
        let k = key(256);
        let mut rng = StdRng::seed_from_u64(42);
        let msg = vec![7u8; k.public.max_plaintext_len() + 1];
        assert_eq!(
            k.public.encrypt(&mut rng, &msg),
            Err(RsaError::MessageTooLong)
        );
    }

    #[test]
    fn decrypt_garbage_fails() {
        let k = key(256);
        let garbage = vec![0xabu8; k.public.modulus_len()];
        assert!(k.decrypt(&garbage).is_err());
        assert_eq!(k.decrypt(&[1, 2, 3]), Err(RsaError::ValueOutOfRange));
    }

    #[test]
    fn shared_prime_keys_share_gcd() {
        let mut rng = StdRng::seed_from_u64(55);
        let k1 = RsaPrivateKey::generate(&mut rng, 256, 1024);
        let k2 = RsaPrivateKey::generate_with_shared_prime(&mut rng, &k1.p, 128, 1024);
        let g = k1.public.n.gcd(&k2.public.n);
        assert_eq!(g, k1.p);
    }

    #[test]
    fn independent_keys_are_coprime() {
        let mut rng = StdRng::seed_from_u64(56);
        let k1 = RsaPrivateKey::generate(&mut rng, 192, 1024);
        let k2 = RsaPrivateKey::generate(&mut rng, 192, 1024);
        assert!(k1.public.n.gcd(&k2.public.n).is_one());
    }

    #[test]
    fn raw_out_of_range_rejected() {
        let k = key(256);
        let too_big = k.public.n.add(&BigUint::one());
        assert_eq!(k.public.raw(&too_big), Err(RsaError::ValueOutOfRange));
        assert_eq!(k.raw(&too_big), Err(RsaError::ValueOutOfRange));
    }
}
