//! Prime generation and primality testing for RSA key generation.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes used to pre-sieve candidates before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Number of Miller–Rabin rounds; 2^-128 error bound for random candidates.
const MR_ROUNDS: usize = 24;

/// Probabilistic primality test (Miller–Rabin with random bases).
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) || n == &BigUint::from_u64(3) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.div_rem_u64(p).1 == 0 {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr(s);
    let two = BigUint::from_u64(2);
    let n_minus_3 = n.sub(&BigUint::from_u64(3));

    'witness: for _ in 0..MR_ROUNDS {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3).add(&two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The candidate's two top bits are set (so products of two such primes
/// have exactly `2*bits` bits, as RSA key generation requires) and the low
/// bit is set (odd).
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime too small to be useful");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force the second-highest bit so p*q has full length.
        candidate = candidate.add(&BigUint::one().shl(bits - 2));
        if candidate.bit_length() > bits {
            continue;
        }
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bit_length() > bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_recognized() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 11, 13, 101, 211, 65537, 2147483647] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [
            0u64,
            1,
            4,
            6,
            9,
            15,
            21,
            25,
            100,
            65536,
            3 * 211,
            1009 * 1013,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729, 41041 are Carmichael numbers (Fermat liars
        // for all bases, but not Miller-Rabin liars).
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 1105, 1729, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut rng),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = StdRng::seed_from_u64(4);
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127, &mut rng));
        // 2^128 - 1 = 3 * 5 * 17 * 257 * ... is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, &mut rng));
    }

    #[test]
    fn generated_primes_have_exact_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [32usize, 64, 128, 192] {
            let p = generate_prime(&mut rng, bits);
            assert_eq!(p.bit_length(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit must be set");
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = generate_prime(&mut rng, 96);
        let b = generate_prime(&mut rng, 96);
        assert_ne!(a, b);
    }
}
