//! A minimal DER-style TLV codec used to serialize certificates.
//!
//! This is not a full ASN.1 implementation — it provides the same
//! *shape* as DER (tag, definite length, nested values, deterministic
//! byte-exact encoding) so that certificate thumbprints, re-encoding
//! stability, and parsing of hostile input are all exercised the way a
//! real scanner exercises them.

/// DER-style universal tags used by the certificate encoding.
pub mod tag {
    /// BOOLEAN
    pub const BOOLEAN: u8 = 0x01;
    /// INTEGER (big-endian, unsigned here)
    pub const INTEGER: u8 = 0x02;
    /// BIT STRING (we omit the unused-bits octet)
    pub const BIT_STRING: u8 = 0x03;
    /// OCTET STRING
    pub const OCTET_STRING: u8 = 0x04;
    /// UTF8String
    pub const UTF8_STRING: u8 = 0x0C;
    /// SEQUENCE (constructed)
    pub const SEQUENCE: u8 = 0x30;
    /// GeneralizedTime (stored as an 8-byte big-endian unix timestamp)
    pub const TIME: u8 = 0x18;
    /// Context-specific constructed tag 0 (extensions)
    pub const CONTEXT_0: u8 = 0xA0;
    /// Context-specific constructed tag 1 (alternative names)
    pub const CONTEXT_1: u8 = 0xA1;
}

/// Errors raised when parsing TLV data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerError {
    /// Input ended in the middle of a value.
    Truncated,
    /// A tag differed from the expected one.
    UnexpectedTag {
        /// The tag the caller required.
        expected: u8,
        /// The tag actually present.
        found: u8,
    },
    /// A length field was malformed (e.g. over 4 length octets).
    BadLength,
    /// Trailing bytes after a complete value.
    TrailingData,
    /// A string was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for DerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerError::Truncated => write!(f, "truncated DER value"),
            DerError::UnexpectedTag { expected, found } => {
                write!(
                    f,
                    "unexpected DER tag {found:#04x} (expected {expected:#04x})"
                )
            }
            DerError::BadLength => write!(f, "malformed DER length"),
            DerError::TrailingData => write!(f, "trailing data after DER value"),
            DerError::BadString => write!(f, "invalid UTF-8 in DER string"),
        }
    }
}

impl std::error::Error for DerError {}

/// Serializes TLV values into a buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a raw TLV with the given tag and contents.
    pub fn tlv(&mut self, tag: u8, contents: &[u8]) {
        self.buf.push(tag);
        Self::write_len(&mut self.buf, contents.len());
        self.buf.extend_from_slice(contents);
    }

    /// Writes a nested (constructed) value built by `f`.
    pub fn nested(&mut self, tag: u8, f: impl FnOnce(&mut Writer)) {
        let mut inner = Writer::new();
        f(&mut inner);
        self.tlv(tag, &inner.buf);
    }

    /// Writes an unsigned integer from big-endian bytes.
    pub fn integer_bytes(&mut self, be: &[u8]) {
        // Strip redundant leading zeros but keep at least one byte.
        let first_nonzero = be.iter().position(|&b| b != 0).unwrap_or(be.len());
        let trimmed = if first_nonzero == be.len() {
            &[0u8][..]
        } else {
            &be[first_nonzero..]
        };
        self.tlv(tag::INTEGER, trimmed);
    }

    /// Writes a `u64` integer.
    pub fn integer_u64(&mut self, v: u64) {
        self.integer_bytes(&v.to_be_bytes());
    }

    /// Writes a boolean.
    pub fn boolean(&mut self, v: bool) {
        self.tlv(tag::BOOLEAN, &[if v { 0xFF } else { 0x00 }]);
    }

    /// Writes a UTF-8 string.
    pub fn utf8(&mut self, s: &str) {
        self.tlv(tag::UTF8_STRING, s.as_bytes());
    }

    /// Writes a timestamp (unix seconds, signed 64-bit).
    pub fn time(&mut self, unix: i64) {
        self.tlv(tag::TIME, &unix.to_be_bytes());
    }

    fn write_len(buf: &mut Vec<u8>, len: usize) {
        if len < 0x80 {
            buf.push(len as u8);
        } else {
            let be = (len as u32).to_be_bytes();
            let skip = be.iter().position(|&b| b != 0).unwrap_or(3);
            let octets = &be[skip..];
            buf.push(0x80 | octets.len() as u8);
            buf.extend_from_slice(octets);
        }
    }
}

/// Parses TLV values from a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// True when all bytes are consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Peeks the next tag without consuming.
    pub fn peek_tag(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    /// Reads the next TLV, returning `(tag, contents)`.
    pub fn any(&mut self) -> Result<(u8, &'a [u8]), DerError> {
        let tag = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        let first = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        let len = if first < 0x80 {
            first as usize
        } else {
            let n = (first & 0x7f) as usize;
            if n == 0 || n > 4 {
                return Err(DerError::BadLength);
            }
            let mut len = 0usize;
            for _ in 0..n {
                let b = *self.data.get(self.pos).ok_or(DerError::Truncated)?;
                self.pos += 1;
                len = (len << 8) | b as usize;
            }
            len
        };
        let end = self.pos.checked_add(len).ok_or(DerError::BadLength)?;
        if end > self.data.len() {
            return Err(DerError::Truncated);
        }
        let contents = &self.data[self.pos..end];
        self.pos = end;
        Ok((tag, contents))
    }

    /// Reads a TLV and checks its tag.
    pub fn expect(&mut self, expected: u8) -> Result<&'a [u8], DerError> {
        let (tag, contents) = self.any()?;
        if tag != expected {
            return Err(DerError::UnexpectedTag {
                expected,
                found: tag,
            });
        }
        Ok(contents)
    }

    /// Reads a nested value and returns a reader over its contents.
    pub fn nested(&mut self, expected: u8) -> Result<Reader<'a>, DerError> {
        Ok(Reader::new(self.expect(expected)?))
    }

    /// Reads an unsigned integer as big-endian bytes.
    pub fn integer_bytes(&mut self) -> Result<&'a [u8], DerError> {
        self.expect(tag::INTEGER)
    }

    /// Reads a `u64` integer; values wider than 8 bytes are an error.
    pub fn integer_u64(&mut self) -> Result<u64, DerError> {
        let raw = self.integer_bytes()?;
        if raw.len() > 8 {
            return Err(DerError::BadLength);
        }
        let mut v = 0u64;
        for &b in raw {
            v = (v << 8) | b as u64;
        }
        Ok(v)
    }

    /// Reads a boolean.
    pub fn boolean(&mut self) -> Result<bool, DerError> {
        let raw = self.expect(tag::BOOLEAN)?;
        Ok(raw.first().copied().unwrap_or(0) != 0)
    }

    /// Reads a UTF-8 string.
    pub fn utf8(&mut self) -> Result<&'a str, DerError> {
        let raw = self.expect(tag::UTF8_STRING)?;
        std::str::from_utf8(raw).map_err(|_| DerError::BadString)
    }

    /// Reads a timestamp (unix seconds).
    pub fn time(&mut self) -> Result<i64, DerError> {
        let raw = self.expect(tag::TIME)?;
        if raw.len() != 8 {
            return Err(DerError::BadLength);
        }
        let mut be = [0u8; 8];
        be.copy_from_slice(raw);
        Ok(i64::from_be_bytes(be))
    }

    /// Asserts that no bytes remain.
    pub fn expect_end(&self) -> Result<(), DerError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DerError::TrailingData)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.integer_u64(0xdeadbeef);
        w.boolean(true);
        w.utf8("hello");
        w.time(1_583_000_000);
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.integer_u64().unwrap(), 0xdeadbeef);
        assert!(r.boolean().unwrap());
        assert_eq!(r.utf8().unwrap(), "hello");
        assert_eq!(r.time().unwrap(), 1_583_000_000);
        r.expect_end().unwrap();
    }

    #[test]
    fn nested_sequences() {
        let mut w = Writer::new();
        w.nested(tag::SEQUENCE, |w| {
            w.integer_u64(1);
            w.nested(tag::SEQUENCE, |w| {
                w.utf8("inner");
            });
        });
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let mut seq = r.nested(tag::SEQUENCE).unwrap();
        assert_eq!(seq.integer_u64().unwrap(), 1);
        let mut inner = seq.nested(tag::SEQUENCE).unwrap();
        assert_eq!(inner.utf8().unwrap(), "inner");
        inner.expect_end().unwrap();
        seq.expect_end().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn long_form_length() {
        let payload = vec![0x55u8; 300];
        let mut w = Writer::new();
        w.tlv(tag::OCTET_STRING, &payload);
        let bytes = w.finish();
        // 0x04, 0x82, 0x01, 0x2C, payload
        assert_eq!(bytes[0], tag::OCTET_STRING);
        assert_eq!(bytes[1], 0x82);
        assert_eq!(((bytes[2] as usize) << 8) | bytes[3] as usize, 300);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.expect(tag::OCTET_STRING).unwrap(), payload.as_slice());
    }

    #[test]
    fn integer_strips_leading_zeros() {
        let mut w = Writer::new();
        w.integer_u64(5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![tag::INTEGER, 1, 5]);
        let mut w = Writer::new();
        w.integer_u64(0);
        assert_eq!(w.finish(), vec![tag::INTEGER, 1, 0]);
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(Reader::new(&[0x02]).any(), Err(DerError::Truncated));
        assert_eq!(
            Reader::new(&[0x02, 0x05, 1, 2]).any(),
            Err(DerError::Truncated)
        );
        assert_eq!(Reader::new(&[]).any(), Err(DerError::Truncated));
    }

    #[test]
    fn bad_length_errors() {
        // 0x80 (indefinite) and >4 length octets are rejected.
        assert_eq!(
            Reader::new(&[0x02, 0x80, 0]).any(),
            Err(DerError::BadLength)
        );
        assert_eq!(
            Reader::new(&[0x02, 0x85, 0, 0, 0, 0, 1, 9]).any(),
            Err(DerError::BadLength)
        );
    }

    #[test]
    fn unexpected_tag_errors() {
        let mut w = Writer::new();
        w.boolean(false);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.integer_bytes(),
            Err(DerError::UnexpectedTag { .. })
        ));
    }

    #[test]
    fn trailing_data_detected() {
        let mut w = Writer::new();
        w.boolean(false);
        let mut bytes = w.finish();
        bytes.push(0x00);
        let mut r = Reader::new(&bytes);
        r.boolean().unwrap();
        assert_eq!(r.expect_end(), Err(DerError::TrailingData));
    }
}
