//! Arbitrary-precision unsigned integers.
//!
//! A compact big-integer implementation sufficient for RSA key generation,
//! signing, verification, and the shared-prime analysis of §5.3 of the
//! paper. Limbs are `u64`, stored little-endian and normalized (no trailing
//! zero limbs; zero is the empty limb vector).
//!
//! The hot paths are subquadratic where it pays off at campaign scale:
//!
//! * [`BigUint::mul`] switches from schoolbook to Karatsuba above
//!   [`KARATSUBA_THRESHOLD`] limbs — the product tree of
//!   [`crate::batch_gcd`](mod@crate::batch_gcd) multiplies thousands of
//!   moduli into numbers far past the threshold;
//! * [`BigUint::sqr`] exploits the symmetry of squaring (~1.5× cheaper
//!   than a general multiply), which the remainder tree and modular
//!   exponentiation hit on every step;
//! * [`BigUint::mod_pow`] runs 4-bit-windowed exponentiation in a
//!   [`Montgomery`] context for odd moduli — zero divisions per step —
//!   and falls back to the classic square-and-multiply
//!   ([`BigUint::mod_pow_legacy`], one Knuth division per step) only for
//!   even moduli. RSA moduli are odd, so signature verification and the
//!   Miller–Rabin witnesses of [`crate::prime`] always take the fast
//!   path. `crates/bench`'s `crypto` gate keeps both paths measurable.
//!
//! Division stays Knuth Algorithm D and GCD stays binary — correct for
//! arbitrary sizes (tested up to 4096 bit) and auditable.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// Limb count above which [`BigUint::mul`] switches to Karatsuba.
/// Below ~32 limbs (2048 bits) the recursion overhead beats the saved
/// limb products on current hardware.
pub const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Builds from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if acc != 0 || shift != 0 {
            limbs.push(acc);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes without leading zeros (`0` → empty).
    /// Sized exactly from the bit length: one allocation, no trimming.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let len = self.bit_length().div_ceil(8);
        let mut out = vec![0u8; len];
        for i in 0..len {
            let limb = i / 8;
            let shift = (i % 8) * 8;
            out[len - 1 - i] = (self.limbs[limb] >> shift) as u8;
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with
    /// zeros. Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit into {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        if chars.is_empty() {
            return None;
        }
        let mut iter = chars.chunks_exact(2).peekable();
        let mut out = Vec::new();
        if chars.len() % 2 == 1 {
            out.push(hex_val(chars[0])?);
            iter = chars[1..].chunks_exact(2).peekable();
        }
        for pair in iter {
            out.push(hex_val(pair[0])? * 16 + hex_val(pair[1])?);
        }
        bytes.extend_from_slice(&out);
        Some(Self::from_bytes_be(&bytes))
    }

    /// Lowercase hex representation (`"0"` for zero). Sized exactly from
    /// the bit length: one allocation, digits emitted in place.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let digits = self.bit_length().div_ceil(4);
        let mut s = String::with_capacity(digits);
        for i in (0..digits).rev() {
            let limb = i / 16;
            let shift = (i % 16) * 4;
            let d = ((self.limbs[limb] >> shift) & 0xF) as u32;
            // ua-lint: allow(panic-hygiene) -- `d` is masked to 0..=15, always a hex digit
            s.push(char::from_digit(d, 16).expect("nibble in range"));
        }
        s
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(a.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.limbs.len() {
            let bi = b.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.limbs[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self * other`: schoolbook below [`KARATSUBA_THRESHOLD`] limbs,
    /// Karatsuba above it.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut r = BigUint {
            limbs: mul_limbs(&self.limbs, &other.limbs),
        };
        r.normalize();
        r
    }

    /// `self * other` via schoolbook multiplication only, at any size.
    /// The O(n²) reference path — kept public so the randomized tests
    /// and the `crypto` bench can cross-check Karatsuba against it.
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut r = BigUint {
            limbs: schoolbook_mul(&self.limbs, &other.limbs),
        };
        r.normalize();
        r
    }

    /// `self * self`, exploiting the symmetry of squaring: the cross
    /// products `aᵢ·aⱼ` (i≠j) are computed once and doubled, roughly
    /// 1.5× cheaper than `self.mul(self)`. Karatsuba-split above the
    /// threshold like [`Self::mul`].
    pub fn sqr(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut r = BigUint {
            limbs: sqr_limbs(&self.limbs),
        };
        r.normalize();
        r
    }

    /// `self * m` for a single limb.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder: returns `(quotient, remainder)`.
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Fast path: divide by a single limb.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the divisor's top limb has its high bit set.
        // ua-lint: allow(panic-hygiene) -- callers reach Knuth division only with multi-limb divisors
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let mut u = self.shl(shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // extra headroom limb u[m + n]

        let v_limbs = &v.limbs;
        let v_top = v_limbs[n - 1];
        let v_next = v_limbs[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate qhat from the top two (three) limbs.
            let numerator = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            // Correct qhat (at most two iterations).
            while qhat >= 1 << 64 || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1 << 64 {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v_limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow != 0 {
                // qhat was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v_limbs[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: u };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus`, with fast paths when either operand
    /// is zero or one (no multiply, at most one reduction).
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.is_one() {
            return other.rem(modulus);
        }
        if other.is_one() {
            return self.rem(modulus);
        }
        self.mul(other).rem(modulus)
    }

    /// `self^exponent mod modulus`.
    ///
    /// Odd moduli (every RSA modulus, every Miller–Rabin candidate) run
    /// 4-bit-windowed exponentiation in a [`Montgomery`] context — zero
    /// divisions per square/multiply step. Even moduli fall back to
    /// [`Self::mod_pow_legacy`], the classic square-and-multiply with a
    /// full division per step (Montgomery reduction needs
    /// `gcd(modulus, 2⁶⁴) = 1`).
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        match Montgomery::new(modulus) {
            Some(ctx) => ctx.pow(self, exponent),
            None => self.mod_pow_legacy(exponent, modulus),
        }
    }

    /// `self^exponent mod modulus` via left-to-right square-and-multiply
    /// with a schoolbook multiply and a full Knuth division per step —
    /// the pre-Montgomery implementation, frozen (it deliberately does
    /// *not* pick up the Karatsuba dispatch) so the `crypto` bench
    /// measures the real before/after and the randomized tests have an
    /// independent reference. Also the documented fallback for even
    /// moduli, where [`Montgomery`] reduction is undefined.
    pub fn mod_pow_legacy(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let base = self.rem(modulus);
        if exponent.is_zero() {
            return BigUint::one();
        }
        let mut result = BigUint::one();
        let bits = exponent.bit_length();
        for i in (0..bits).rev() {
            result = result.mul_schoolbook(&result).rem(modulus);
            if exponent.bit(i) {
                result = result.mul_schoolbook(&base).rem(modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        // Factor out common powers of two.
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a.shr(a_tz);
        b = b.shr(b_tz);
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub(&b);
                    a = a.shr(a.trailing_zeros());
                }
                Ordering::Less => {
                    b = b.sub(&a);
                    b = b.shr(b.trailing_zeros());
                }
            }
        }
        a.shl(common)
    }

    /// Number of trailing zero bits (0 for zero value).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular multiplicative inverse: `self^-1 mod modulus`, or `None`
    /// when `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid over signed coefficients.
        if modulus.is_zero() {
            return None;
        }
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // Coefficients of `self` modulo `modulus`: (sign, magnitude).
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // Normalize t0 into [0, modulus).
        let (neg, mag) = t0;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniform random integer with exactly `bits` significant bits
    /// (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        let last = limbs - 1;
        v[last] &= mask;
        v[last] |= 1u64 << (top_bits - 1); // force exact bit length
        let mut r = BigUint { limbs: v };
        r.normalize();
        r
    }

    /// Uniform random integer in `[0, bound)` by rejection sampling.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_length();
        loop {
            let limbs = bits.div_ceil(64);
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs - 1) * 64;
            let mask = if top_bits == 64 {
                u64::MAX
            } else {
                (1u64 << top_bits) - 1
            };
            let last = limbs - 1;
            v[last] &= mask;
            let mut r = BigUint { limbs: v };
            r.normalize();
            if &r < bound {
                return r;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Limb-slice multiplication kernels
// ---------------------------------------------------------------------------
//
// These operate on raw little-endian limb slices (trailing zeros allowed)
// so Karatsuba can recurse on sub-slices without constructing
// intermediate `BigUint`s.

/// Schoolbook product; output has exactly `a.len() + b.len()` limbs
/// (possibly with trailing zeros).
fn schoolbook_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        out[i + b.len()] = carry as u64;
    }
    out
}

/// Schoolbook square: cross products computed once and doubled, then the
/// diagonal squares added — ~1.5× cheaper than `schoolbook_mul(a, a)`.
fn schoolbook_sqr(a: &[u64]) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; 2 * n];
    // Off-diagonal products a[i]·a[j], i < j.
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in (i + 1)..n {
            let cur = out[i + j] as u128 + (a[i] as u128) * (a[j] as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        out[i + n] = carry as u64;
    }
    // Double them.
    let carry = shl1_in_place(&mut out);
    debug_assert_eq!(carry, 0);
    // Add the diagonal squares.
    let mut carry = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let sq = (ai as u128) * (ai as u128);
        let lo = out[2 * i] as u128 + (sq as u64 as u128) + carry as u128;
        out[2 * i] = lo as u64;
        let hi = out[2 * i + 1] as u128 + ((sq >> 64) as u64 as u128) + (lo >> 64);
        out[2 * i + 1] = hi as u64;
        carry = (hi >> 64) as u64;
    }
    debug_assert_eq!(carry, 0);
    out
}

/// Shifts the limbs left by one bit in place, returning the bit
/// carried out of the top.
fn shl1_in_place(limbs: &mut [u64]) -> u64 {
    let mut carry = 0u64;
    for limb in limbs.iter_mut() {
        let next = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    carry
}

/// Limb-wise sum of two slices (lengths may differ).
fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let bi = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = l.overflowing_add(bi);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    out.push(carry);
    out
}

/// `a -= b` in place; the caller guarantees `a >= b`.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = limb.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *limb = d2;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "limb subtraction underflow");
}

/// `out[offset..] += add`, propagating the carry. The caller guarantees
/// the sum fits in `out`.
fn add_at(out: &mut [u64], add: &[u64], offset: usize) {
    // Trailing zero limbs carry no value but would index past `out`.
    let mut len = add.len();
    while len > 0 && add[len - 1] == 0 {
        len -= 1;
    }
    let mut carry = 0u64;
    for i in 0..len {
        let (s1, c1) = out[offset + i].overflowing_add(add[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        out[offset + i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = offset + len;
    while carry != 0 {
        let (s, c) = out[k].overflowing_add(carry);
        out[k] = s;
        carry = c as u64;
        k += 1;
    }
}

/// Karatsuba dispatch; output has exactly `a.len() + b.len()` limbs.
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return schoolbook_mul(a, b);
    }
    // Split both operands at the same point (half of the shorter one):
    // a = a0 + a1·B^s, b = b0 + b1·B^s.
    let split = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);
    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);
    // z1 = (a0+a1)(b0+b1) − z0 − z2 = a0·b1 + a1·b0.
    let mut z1 = mul_limbs(&add_slices(a0, a1), &add_slices(b0, b1));
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);
    let mut out = vec![0u64; a.len() + b.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

/// Karatsuba-split squaring; output has exactly `2 * a.len()` limbs.
fn sqr_limbs(a: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD {
        return schoolbook_sqr(a);
    }
    let split = a.len() / 2;
    let (a0, a1) = a.split_at(split);
    let z0 = sqr_limbs(a0);
    let z2 = sqr_limbs(a1);
    // (a0 + a1·B^s)² = z0 + 2·a0·a1·B^s + z2·B^(2s)
    let mut z1 = mul_limbs(a0, a1);
    let carry = shl1_in_place(&mut z1);
    z1.push(carry);
    let mut out = vec![0u64; 2 * a.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

// ---------------------------------------------------------------------------
// Montgomery modular arithmetic
// ---------------------------------------------------------------------------

/// Precomputed context for modular arithmetic over an **odd** modulus
/// `n` in Montgomery form (`x·R mod n` with `R = 2^(64k)`, `k` the limb
/// count of `n`).
///
/// Construction precomputes `n' = −n⁻¹ mod 2⁶⁴` (one Newton–Hensel
/// iteration chain, no division) and `R² mod n` (one division, paid once
/// per modulus). Every subsequent multiply/square is a CIOS Montgomery
/// reduction: pure limb arithmetic, zero divisions — the reason
/// [`BigUint::mod_pow`] beats [`BigUint::mod_pow_legacy`] by an order of
/// magnitude at RSA sizes.
///
/// [`Montgomery::pow`] runs left-to-right 4-bit-windowed exponentiation
/// (a 16-entry table, four squarings plus at most one multiply per
/// window) and reuses two scratch buffers across all steps, so a full
/// 2048-bit exponentiation performs no allocation inside the loop.
#[derive(Debug, Clone)]
pub struct Montgomery {
    modulus: BigUint,
    /// Modulus limbs (length `k`, top limb nonzero).
    n: Vec<u64>,
    /// `−n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n`, zero-padded to `k` limbs.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for `modulus`; `None` when the modulus is even
    /// or smaller than 2 (Montgomery reduction requires
    /// `gcd(modulus, 2⁶⁴) = 1` — callers fall back to
    /// [`BigUint::mod_pow_legacy`]).
    pub fn new(modulus: &BigUint) -> Option<Montgomery> {
        if modulus.is_even() || modulus.is_one() {
            return None;
        }
        let k = modulus.limbs.len();
        // Newton–Hensel inversion of n₀ mod 2⁶⁴: each step doubles the
        // number of correct low bits; 6 steps from a 1-bit seed cover 64.
        let n0 = modulus.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let mut r2 = BigUint::one().shl(128 * k).rem(modulus).limbs;
        r2.resize(k, 0);
        Some(Montgomery {
            modulus: modulus.clone(),
            n: modulus.limbs.clone(),
            n0_inv: inv.wrapping_neg(),
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Fused (FIOS-style) Montgomery multiplication:
    /// `out = a·b·R⁻¹ mod n`. The multiply-accumulate and the reduction
    /// run in one pass per outer limb with two independent carry
    /// chains, halving the traversals of the scratch accumulator.
    /// `a`, `b`, `out` are `k`-limb Montgomery-domain values; `t` is a
    /// reusable scratch buffer of `k + 2` limbs.
    fn mont_mul(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        let n = &self.n[..k];
        let b = &b[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for &ai in &a[..k] {
            // Column 0 decides the reduction multiplier m, chosen so the
            // low limb of t + ai·b + m·n vanishes.
            let c0 = t[0] as u128 + (ai as u128) * (b[0] as u128);
            let m = (c0 as u64).wrapping_mul(self.n0_inv);
            let r0 = (c0 as u64) as u128 + (m as u128) * (n[0] as u128);
            debug_assert_eq!(r0 as u64, 0);
            let mut carry_mul = c0 >> 64; // carry of the ai·b column sums
            let mut carry_red = r0 >> 64; // carry of the m·n reduction
            for j in 1..k {
                let cur = t[j] as u128 + (ai as u128) * (b[j] as u128) + carry_mul;
                carry_mul = cur >> 64;
                let red = (cur as u64) as u128 + (m as u128) * (n[j] as u128) + carry_red;
                carry_red = red >> 64;
                t[j - 1] = red as u64;
            }
            // Fold both carries into the (shifted) top; the CIOS bound
            // t < 2n keeps the overflow limb in {0, 1}.
            let top = t[k] as u128 + carry_mul + carry_red;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // Result in t[0..k] with a possible overflow bit in t[k]:
        // conditionally subtract n once.
        let ge = t[k] != 0 || {
            let mut ge = true; // equal counts as ≥
            for j in (0..k).rev() {
                match t[j].cmp(&n[j]) {
                    Ordering::Greater => break,
                    Ordering::Less => {
                        ge = false;
                        break;
                    }
                    Ordering::Equal => {}
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            debug_assert_eq!(borrow, t[k]);
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// `base^exponent mod n` via 4-bit-windowed Montgomery
    /// exponentiation.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one();
        }
        let k = self.n.len();
        let mut scratch = vec![0u64; k + 2];
        let mut tmp = vec![0u64; k];

        // Enter the Montgomery domain: x·R = mont_mul(x, R²).
        let mut base_limbs = base.rem(&self.modulus).limbs;
        base_limbs.resize(k, 0);
        let mut base_m = vec![0u64; k];
        self.mont_mul(&base_limbs, &self.r2, &mut scratch, &mut base_m);
        let mut one_limbs = vec![0u64; k];
        one_limbs[0] = 1;
        let mut one_m = vec![0u64; k];
        self.mont_mul(&one_limbs, &self.r2, &mut scratch, &mut one_m);

        // table[w] = base^w in the Montgomery domain.
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(16);
        table.push(one_m);
        for w in 1..16 {
            let mut next = vec![0u64; k];
            self.mont_mul(&table[w - 1], &base_m, &mut scratch, &mut next);
            table.push(next);
        }

        let bits = exponent.bit_length();
        let windows = bits.div_ceil(4);
        let window_at = |w: usize| -> usize {
            let bit = 4 * w;
            let limb = bit / 64;
            let shift = bit % 64; // 4 | 64, so a window never straddles limbs
            ((exponent.limbs.get(limb).copied().unwrap_or(0) >> shift) & 0xF) as usize
        };

        let mut acc = table[window_at(windows - 1)].clone();
        for w in (0..windows - 1).rev() {
            for _ in 0..4 {
                self.mont_mul(&acc, &acc, &mut scratch, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let digit = window_at(w);
            if digit != 0 {
                self.mont_mul(&acc, &table[digit], &mut scratch, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }

        // Leave the Montgomery domain: x = mont_mul(x·R, 1).
        self.mont_mul(&acc, &one_limbs, &mut scratch, &mut tmp);
        let mut out = BigUint { limbs: tmp };
        out.normalize();
        out
    }
}

/// `a - b` over signed (sign, magnitude) pairs.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both positive.
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a + b)
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a
        (true, true) => {
            if b.1 >= a.1 {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(BigUint::one().bit_length(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = big("0123456789abcdef0123456789abcdef01");
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        // Leading zeros in input are accepted.
        let mut padded = vec![0u8, 0u8];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "100",
            "deadbeefcafebabe",
            "1234567890abcdef1234567890abcdef",
        ] {
            let v = BigUint::from_hex(s).unwrap();
            let expect = s.trim_start_matches('0');
            let expect = if expect.is_empty() { "0" } else { expect };
            assert_eq!(v.to_hex(), expect);
        }
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn add_sub() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        let sum = a.add(&one);
        assert_eq!(sum, big("100000000000000000000000000000000"));
        assert_eq!(sum.sub(&one), a);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_small() {
        let a = BigUint::from_u64(0xffff_ffff_ffff_ffff);
        let sq = a.mul(&a);
        assert_eq!(sq, big("fffffffffffffffe0000000000000001"));
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul_u64(2), a.add(&a));
    }

    #[test]
    fn shifts() {
        let a = big("123456789abcdef");
        assert_eq!(a.shl(0), a);
        assert_eq!(a.shl(4), big("123456789abcdef0"));
        assert_eq!(a.shl(68).shr(68), a);
        assert_eq!(a.shr(200), BigUint::zero());
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
    }

    #[test]
    fn div_rem_simple() {
        let a = big("deadbeefcafebabe1234567890");
        let b = big("abcdef");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = big("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = big("fedcba9876543210fedcba9876543210");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_equal_and_smaller() {
        let a = big("1234");
        assert_eq!(a.div_rem(&a), (BigUint::one(), BigUint::zero()));
        let (q, r) = BigUint::one().div_rem(&a);
        assert!(q.is_zero());
        assert!(r.is_one());
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_known() {
        // 5^117 mod 19 = 1 (Fermat: 5^18 = 1 mod 19, 117 = 6*18+9; 5^9 mod 19 = 1)
        let b = BigUint::from_u64(5);
        let e = BigUint::from_u64(117);
        let m = BigUint::from_u64(19);
        assert_eq!(b.mod_pow(&e, &m), BigUint::one());
        // 4^13 mod 497 = 445 (classic example)
        assert_eq!(
            BigUint::from_u64(4).mod_pow(&BigUint::from_u64(13), &BigUint::from_u64(497)),
            BigUint::from_u64(445)
        );
        // x^0 = 1
        assert_eq!(b.mod_pow(&BigUint::zero(), &m), BigUint::one());
        // mod 1 = 0
        assert_eq!(b.mod_pow(&e, &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn gcd_known() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(18)),
            BigUint::from_u64(6)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from_u64(5)),
            BigUint::from_u64(5)
        );
        assert_eq!(
            BigUint::from_u64(5).gcd(&BigUint::zero()),
            BigUint::from_u64(5)
        );
        let p = big("e3e70682c2094cac629f6fbed82c07cd");
        let a = p.mul(&big("f728b4fa42485e3a0a5d2f346baa9455"));
        let b = p.mul(&big("eb1167b367a9c3787c65c1e582e2e662"));
        assert_eq!(a.gcd(&b), p);
    }

    #[test]
    fn mod_inverse_known() {
        // 3^-1 mod 7 = 5
        assert_eq!(
            BigUint::from_u64(3).mod_inverse(&BigUint::from_u64(7)),
            Some(BigUint::from_u64(5))
        );
        // gcd != 1 -> None
        assert_eq!(
            BigUint::from_u64(4).mod_inverse(&BigUint::from_u64(8)),
            None
        );
        // Large: inverse times self = 1 mod m
        let m = big("fedcba9876543210fedcba9876543211");
        let a = big("123456789abcdef");
        let inv = a.mod_inverse(&m).unwrap();
        assert!(a.mul_mod(&inv, &m).is_one());
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 5, 63, 64, 65, 127, 128, 200, 512] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bit_length(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = big("10000000000000001");
        for _ in 0..50 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn ordering() {
        assert!(big("ff") < big("100"));
        assert!(big("100") > big("ff"));
        assert_eq!(big("abc").cmp(&big("abc")), Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        let v = BigUint::from_u64(0xbeef);
        assert_eq!(format!("{v}"), "0xbeef");
        assert!(format!("{v:?}").contains("beef"));
    }

    #[test]
    fn bit_accessor() {
        let v = BigUint::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64));
    }

    #[test]
    fn div_rem_u64_matches_div_rem() {
        let a = big("123456789abcdef0123456789abcdef0123456789");
        let (q1, r1) = a.div_rem_u64(0x1_0001);
        let (q2, r2) = a.div_rem(&BigUint::from_u64(0x1_0001));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }

    #[test]
    fn knuth_add_back_case() {
        // A crafted case that exercises the rare "add back" branch:
        // dividend chosen so the first qhat estimate overshoots.
        let u = big("7fffffffffffffff8000000000000000000000000000000000000000");
        let v = big("800000000000000080000000000000000000000000000001");
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }
}
