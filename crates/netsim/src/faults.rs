//! Middlebox fault injection: per-host network profiles.
//!
//! The polite Internet answers every live host on the first SYN. Real
//! sweeps contend with silent drops, scan-detecting firewalls, tarpits,
//! and hosts that only answer after a few tries. A [`NetProfile`]
//! attaches that hostility to an address: [`Internet::connect_attempt`]
//! consults the installed [`ProfileProvider`] and resolves each attempt
//! to a [`ConnectFate`] before any service sees the connection.
//!
//! Everything here is a pure function of `(profile, attempt)` — the
//! loss coin is a seeded RNG keyed on the profile's `fault_seed` and the
//! attempt index, never ambient entropy — so a fate can be *replayed*
//! without touching the network: ground-truth planners call
//! [`NetProfile::terminal_fate`] to predict exactly what a retrying
//! scanner will conclude, and every fault advances the caller's
//! [`VirtualClock`] honestly so hostility
//! has real time cost.
//!
//! [`Internet::connect_attempt`]: crate::internet::Internet::connect_attempt

use crate::cidr::Ipv4;
use crate::clock::VirtualClock;
use crate::internet::{Connection, ConnectionOutput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// SplitMix64 finalizer: decorrelates structured seeds (`seed ^ attempt`
/// style keys) before they feed an RNG stream.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Accept-then-stall behavior: the classic tarpit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TarpitProfile {
    /// Virtual microseconds the peer stalls before reacting to any
    /// client bytes.
    pub stall_micros: u64,
    /// Bytes of garbage dribbled back after each stall. `0` means the
    /// peer never sends anything: the connect itself burns the stall
    /// budget and fails with [`ConnectError::Stalled`].
    ///
    /// [`ConnectError::Stalled`]: crate::internet::ConnectError::Stalled
    pub dribble_bytes: u32,
}

/// A rate-limiting firewall in front of a host (or a whole prefix):
/// the scanner's first `strikes` SYNs are dropped with a penalty wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirewallProfile {
    /// SYNs eaten before the firewall relents. [`u32::MAX`] means the
    /// scanner is blocklisted for the whole sweep — no attempt count
    /// ever gets through.
    pub strikes: u32,
    /// Virtual microseconds each eaten SYN costs the scanner (the
    /// firewall answers nothing; the scanner's rate limiter observes
    /// the throttle signature and waits).
    pub penalty_micros: u64,
}

impl FirewallProfile {
    /// A sweep-permanent blocklisting of the scanner.
    pub fn permanent(penalty_micros: u64) -> Self {
        FirewallProfile {
            strikes: u32::MAX,
            penalty_micros,
        }
    }

    /// True when no retry budget can get past this firewall.
    pub fn is_permanent(&self) -> bool {
        self.strikes == u32::MAX
    }
}

/// What one connect attempt runs into, before any listener is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectFate {
    /// No middlebox interferes: the attempt reaches the host table.
    Deliver,
    /// The SYN (or its SYN-ACK) vanished: indistinguishable from no
    /// route, costs a full SYN timeout.
    SynLost,
    /// A rate-limiting firewall ate the SYN and penalized the source.
    Throttled {
        /// Virtual microseconds the scanner loses to the penalty.
        penalty_micros: u64,
    },
    /// The peer accepts and then stalls (tarpit).
    Tarpit(TarpitProfile),
}

/// Per-host hostility, drawn deterministically from the campaign seed.
///
/// The default profile is polite: every field off, every attempt
/// [`ConnectFate::Deliver`]. Faults compose in a fixed order —
/// firewall, flaky-host window, loss coin, tarpit — so a profile's fate
/// sequence is unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetProfile {
    /// Seed for this host's loss coin; derive it from the campaign seed
    /// and the address so fates replay identically everywhere.
    pub fault_seed: u64,
    /// Per-attempt SYN loss probability in permille (0–1000).
    pub syn_loss_permille: u16,
    /// The host drops its first `flaky_connects` SYNs, then behaves.
    pub flaky_connects: u32,
    /// After this many request/reply exchanges the established stream
    /// is cut mid-conversation (silent FIN). `0` disables — the
    /// mid-stream half of packet loss.
    pub cut_after_exchanges: u32,
    /// Accept-then-stall tarpit, if any.
    pub tarpit: Option<TarpitProfile>,
    /// Rate-limiting firewall, if any.
    pub firewall: Option<FirewallProfile>,
}

impl NetProfile {
    /// The fault-free profile (same as `Default`).
    pub fn polite() -> Self {
        NetProfile::default()
    }

    /// True when no fault can ever fire: the fast path the polite
    /// Internet keeps.
    pub fn is_polite(&self) -> bool {
        self.syn_loss_permille == 0
            && self.flaky_connects == 0
            && self.cut_after_exchanges == 0
            && self.tarpit.is_none()
            && self.firewall.is_none()
    }

    /// Resolves connect attempt number `attempt` (0-based) to its fate.
    /// Pure: the same `(profile, attempt)` always answers the same, at
    /// any worker count, on any engine.
    pub fn connect_fate(&self, attempt: u32) -> ConnectFate {
        if let Some(fw) = self.firewall {
            if fw.is_permanent() || attempt < fw.strikes {
                return ConnectFate::Throttled {
                    penalty_micros: fw.penalty_micros,
                };
            }
        }
        if attempt < self.flaky_connects {
            return ConnectFate::SynLost;
        }
        if self.syn_loss_permille > 0 {
            let key = self.fault_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut coin = StdRng::seed_from_u64(mix64(key));
            if coin.gen_range(0..1000_u32) < u32::from(self.syn_loss_permille) {
                return ConnectFate::SynLost;
            }
        }
        if let Some(tarpit) = self.tarpit {
            return ConnectFate::Tarpit(tarpit);
        }
        ConnectFate::Deliver
    }

    /// Replays the fate sequence: the first attempt (0-based) that
    /// delivers a *usable* connection within `max_attempts`, or `None`
    /// when the host is unrecoverable at that retry budget. Tarpits
    /// never deliver usable streams — a dribbling tarpit hands out a
    /// socket, but no protocol exchange ever completes on it.
    pub fn first_delivered_attempt(&self, max_attempts: u32) -> Option<u32> {
        for attempt in 0..max_attempts.max(1) {
            match self.connect_fate(attempt) {
                ConnectFate::Deliver => return Some(attempt),
                ConnectFate::Tarpit(_) => return None,
                ConnectFate::SynLost | ConnectFate::Throttled { .. } => {}
            }
        }
        None
    }

    /// The fate a retrying scanner ends on: [`ConnectFate::Deliver`] if
    /// any attempt within `max_attempts` gets through, otherwise the
    /// terminal fault (tarpits terminate immediately; exhausted budgets
    /// report the last attempt's fault). This is the ground-truth side
    /// of the scanner's `HostOutcome` classification.
    pub fn terminal_fate(&self, max_attempts: u32) -> ConnectFate {
        let max = max_attempts.max(1);
        let mut last = ConnectFate::SynLost;
        for attempt in 0..max {
            match self.connect_fate(attempt) {
                ConnectFate::Deliver => return ConnectFate::Deliver,
                fate @ ConnectFate::Tarpit(_) => return fate,
                fate => last = fate,
            }
        }
        last
    }
}

/// Answers "how hostile is the path to `addr`?" for the whole Internet.
/// Installed once via [`Internet::set_profiles`]; shared by every clock
/// view, so sharded scan workers see identical hostility.
///
/// [`Internet::set_profiles`]: crate::internet::Internet::set_profiles
pub trait ProfileProvider: Send + Sync {
    /// The profile guarding `addr` ([`NetProfile::polite`] for
    /// unlisted addresses).
    fn profile_of(&self, addr: Ipv4) -> NetProfile;
}

/// A fixed address→profile table: the simplest [`ProfileProvider`],
/// used by tests and small hand-built worlds.
#[derive(Debug, Clone, Default)]
pub struct StaticProfiles {
    profiles: BTreeMap<u32, NetProfile>,
}

impl StaticProfiles {
    /// An empty (all-polite) table.
    pub fn new() -> Self {
        StaticProfiles::default()
    }

    /// Sets the profile for one address.
    pub fn set(&mut self, addr: Ipv4, profile: NetProfile) {
        self.profiles.insert(addr.0, profile);
    }

    /// Builder-style [`StaticProfiles::set`].
    pub fn with(mut self, addr: Ipv4, profile: NetProfile) -> Self {
        self.set(addr, profile);
        self
    }
}

impl ProfileProvider for StaticProfiles {
    fn profile_of(&self, addr: Ipv4) -> NetProfile {
        self.profiles
            .get(&addr.0)
            .copied()
            .unwrap_or_else(NetProfile::polite)
    }
}

/// The connection a dribbling tarpit hands out: every input stalls the
/// clock and yields `dribble_bytes` of zeroes — enough traffic to keep
/// a naive client reading, never enough to complete a handshake.
pub struct TarpitConn {
    clock: VirtualClock,
    profile: TarpitProfile,
}

impl TarpitConn {
    /// A tarpit connection stalling on `clock`.
    pub fn new(clock: VirtualClock, profile: TarpitProfile) -> Self {
        TarpitConn { clock, profile }
    }
}

impl Connection for TarpitConn {
    fn on_data(&mut self, _data: &[u8]) -> ConnectionOutput {
        self.clock.advance_micros(self.profile.stall_micros);
        ConnectionOutput::reply(vec![0u8; self.profile.dribble_bytes as usize])
    }
}

/// Mid-stream packet loss: passes `remaining` exchanges through to the
/// real connection, then cuts the stream (silent close, no reply).
pub struct CutConn {
    inner: Box<dyn Connection>,
    remaining: u32,
}

impl CutConn {
    /// Wraps `inner`, cutting after `cut_after_exchanges` exchanges.
    pub fn new(inner: Box<dyn Connection>, cut_after_exchanges: u32) -> Self {
        CutConn {
            inner,
            remaining: cut_after_exchanges,
        }
    }
}

impl Connection for CutConn {
    fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
        if self.remaining == 0 {
            return ConnectionOutput::close_with(Vec::new());
        }
        self.remaining -= 1;
        self.inner.on_data(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polite_profile_always_delivers() {
        let p = NetProfile::polite();
        assert!(p.is_polite());
        for attempt in 0..8 {
            assert_eq!(p.connect_fate(attempt), ConnectFate::Deliver);
        }
        assert_eq!(p.first_delivered_attempt(1), Some(0));
        assert_eq!(p.terminal_fate(4), ConnectFate::Deliver);
    }

    #[test]
    fn flaky_window_then_delivers() {
        let p = NetProfile {
            flaky_connects: 2,
            ..NetProfile::polite()
        };
        assert_eq!(p.connect_fate(0), ConnectFate::SynLost);
        assert_eq!(p.connect_fate(1), ConnectFate::SynLost);
        assert_eq!(p.connect_fate(2), ConnectFate::Deliver);
        assert_eq!(p.first_delivered_attempt(4), Some(2));
        assert_eq!(p.first_delivered_attempt(2), None);
        assert_eq!(p.terminal_fate(2), ConnectFate::SynLost);
    }

    #[test]
    fn firewall_strikes_and_permanence() {
        let temp = NetProfile {
            firewall: Some(FirewallProfile {
                strikes: 2,
                penalty_micros: 7,
            }),
            ..NetProfile::polite()
        };
        assert_eq!(
            temp.connect_fate(0),
            ConnectFate::Throttled { penalty_micros: 7 }
        );
        assert_eq!(
            temp.connect_fate(1),
            ConnectFate::Throttled { penalty_micros: 7 }
        );
        assert_eq!(temp.connect_fate(2), ConnectFate::Deliver);
        assert_eq!(temp.first_delivered_attempt(3), Some(2));

        let perm = NetProfile {
            firewall: Some(FirewallProfile::permanent(7)),
            ..NetProfile::polite()
        };
        assert!(perm.firewall.unwrap().is_permanent());
        for attempt in [0, 1, 1000, u32::MAX - 1] {
            assert_eq!(
                perm.connect_fate(attempt),
                ConnectFate::Throttled { penalty_micros: 7 }
            );
        }
        assert_eq!(perm.first_delivered_attempt(64), None);
        assert_eq!(
            perm.terminal_fate(64),
            ConnectFate::Throttled { penalty_micros: 7 }
        );
    }

    #[test]
    fn loss_coin_is_deterministic_per_attempt() {
        let p = NetProfile {
            fault_seed: 0xDEAD_BEEF,
            syn_loss_permille: 500,
            ..NetProfile::polite()
        };
        // Replaying the same attempt must answer identically, and the
        // edge rates must be exact: 0 permille never loses, 1000 always.
        for attempt in 0..16 {
            assert_eq!(p.connect_fate(attempt), p.connect_fate(attempt));
        }
        let never = NetProfile {
            fault_seed: 1,
            syn_loss_permille: 0,
            ..NetProfile::polite()
        };
        let always = NetProfile {
            fault_seed: 1,
            syn_loss_permille: 1000,
            ..NetProfile::polite()
        };
        for attempt in 0..16 {
            assert_eq!(never.connect_fate(attempt), ConnectFate::Deliver);
            assert_eq!(always.connect_fate(attempt), ConnectFate::SynLost);
        }
        assert_eq!(always.first_delivered_attempt(16), None);
        assert_eq!(always.terminal_fate(16), ConnectFate::SynLost);
    }

    #[test]
    fn tarpit_is_terminal() {
        let tarpit = TarpitProfile {
            stall_micros: 30_000_000,
            dribble_bytes: 4,
        };
        let p = NetProfile {
            tarpit: Some(tarpit),
            ..NetProfile::polite()
        };
        assert_eq!(p.connect_fate(0), ConnectFate::Tarpit(tarpit));
        assert_eq!(p.first_delivered_attempt(8), None);
        assert_eq!(p.terminal_fate(8), ConnectFate::Tarpit(tarpit));
    }

    #[test]
    fn fault_order_firewall_before_flaky_before_tarpit() {
        // One profile with everything: strikes gate first, then the
        // flaky window, then the tarpit (no loss coin to keep it exact).
        let tarpit = TarpitProfile {
            stall_micros: 5,
            dribble_bytes: 0,
        };
        let p = NetProfile {
            flaky_connects: 2,
            tarpit: Some(tarpit),
            firewall: Some(FirewallProfile {
                strikes: 1,
                penalty_micros: 9,
            }),
            ..NetProfile::polite()
        };
        assert_eq!(
            p.connect_fate(0),
            ConnectFate::Throttled { penalty_micros: 9 }
        );
        assert_eq!(p.connect_fate(1), ConnectFate::SynLost);
        assert_eq!(p.connect_fate(2), ConnectFate::Tarpit(tarpit));
    }

    #[test]
    fn static_profiles_default_polite() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let table = StaticProfiles::new().with(
            a,
            NetProfile {
                flaky_connects: 1,
                ..NetProfile::polite()
            },
        );
        assert_eq!(table.profile_of(a).flaky_connects, 1);
        assert!(table.profile_of(b).is_polite());
    }

    #[test]
    fn cut_conn_cuts_after_budget() {
        struct EchoConn;
        impl Connection for EchoConn {
            fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
                ConnectionOutput::reply(data.to_vec())
            }
        }
        let mut cut = CutConn::new(Box::new(EchoConn), 2);
        assert_eq!(cut.on_data(b"a").reply, b"a");
        assert_eq!(cut.on_data(b"b").reply, b"b");
        let out = cut.on_data(b"c");
        assert!(out.reply.is_empty());
        assert!(out.close);
    }

    #[test]
    fn tarpit_conn_stalls_and_dribbles() {
        let clock = VirtualClock::starting_at(0);
        let mut conn = TarpitConn::new(
            clock.clone(),
            TarpitProfile {
                stall_micros: 1_000,
                dribble_bytes: 3,
            },
        );
        let out = conn.on_data(b"hello");
        assert_eq!(clock.now_micros(), 1_000);
        assert_eq!(out.reply, vec![0u8; 3]);
        assert!(!out.close);
    }
}
