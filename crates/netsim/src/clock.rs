//! Virtual time.
//!
//! The study spans seven months of wall-clock time with per-request
//! politeness delays (500 ms) and per-host time budgets (60 min). All of
//! that runs in *virtual* time: a shared clock that simulation components
//! advance explicitly. Deterministic, and seven months pass in
//! milliseconds.

use std::sync::{Arc, Mutex};

/// Microseconds since the unix epoch, virtual.
pub type Micros = u64;

/// A shareable virtual clock.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    inner: Arc<Mutex<Micros>>,
}

impl VirtualClock {
    /// Creates a clock starting at `start_unix_seconds`.
    pub fn starting_at(start_unix_seconds: u64) -> Self {
        Self::starting_at_micros(start_unix_seconds * 1_000_000)
    }

    /// Creates a clock starting at an exact microsecond instant —
    /// how a resumed campaign reconstructs the epoch a
    /// `SweepCheckpoint` recorded, down to the microsecond.
    pub fn starting_at_micros(start_micros: Micros) -> Self {
        VirtualClock {
            inner: Arc::new(Mutex::new(start_micros)),
        }
    }

    /// Single point where the time mutex is acquired. Guard scopes are
    /// a read or one arithmetic update; the only panic that can happen
    /// while holding it is the monotonicity assert, and after that the
    /// simulation's timeline is broken anyway — propagating is correct.
    fn locked(&self) -> std::sync::MutexGuard<'_, Micros> {
        // ua-lint: allow(panic-hygiene) -- poisoned clock means time is already corrupt; propagate
        self.inner.lock().unwrap()
    }

    /// Current virtual time in microseconds since the epoch.
    pub fn now_micros(&self) -> Micros {
        *self.locked()
    }

    /// Current virtual time in unix seconds.
    pub fn now_unix_seconds(&self) -> i64 {
        (self.now_micros() / 1_000_000) as i64
    }

    /// Advances the clock by `micros`.
    pub fn advance_micros(&self, micros: u64) {
        *self.locked() += micros;
    }

    /// Advances the clock by `millis`.
    pub fn advance_millis(&self, millis: u64) {
        self.advance_micros(millis * 1000);
    }

    /// Advances the clock by `seconds`.
    pub fn advance_seconds(&self, seconds: u64) {
        self.advance_micros(seconds * 1_000_000);
    }

    /// Creates an *independent* clock frozen at this clock's current
    /// instant. Unlike [`Clone`] (which shares time), a fork advances on
    /// its own — sharded scans give every probed host a fork so record
    /// contents depend only on the campaign epoch, never on how many
    /// workers ran or in which order hosts were reached.
    ///
    /// Forks are also the cancellation-safety boundary: everything a
    /// probe charges (handshake RTTs, request/response latency, SYN
    /// timeouts) lands on its private fork, and the campaign clock only
    /// learns about it when the scan *completes* and folds the per-host
    /// totals in. A probe that is cancelled mid-flight is simply
    /// dropped, fork and all — the shared clock never observes any of
    /// its time, so an aborted week leaves campaign time exactly where
    /// it started.
    pub fn fork(&self) -> VirtualClock {
        VirtualClock {
            inner: Arc::new(Mutex::new(self.now_micros())),
        }
    }

    /// Jumps to an absolute time; panics when moving backwards (virtual
    /// time is monotonic).
    pub fn jump_to_unix_seconds(&self, unix_seconds: u64) {
        let mut t = self.locked();
        let target = unix_seconds * 1_000_000;
        assert!(target >= *t, "virtual clock cannot move backwards");
        *t = target;
    }

    /// Advances to an absolute instant; a no-op when the clock is
    /// already past it. Multi-campaign drivers use this to pin each
    /// weekly campaign's epoch: the jump is idempotent and never moves
    /// time backwards, so forks taken at campaign start strictly follow
    /// everything the previous campaign produced.
    pub fn advance_to_micros(&self, target: Micros) {
        let mut t = self.locked();
        if target > *t {
            *t = target;
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        // 2020-02-09, the paper's first measurement.
        Self::starting_at(1_581_206_400)
    }
}

/// A stopwatch over the virtual clock.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: VirtualClock,
    start: Micros,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start(clock: &VirtualClock) -> Self {
        Stopwatch {
            clock: clock.clone(),
            start: clock.now_micros(),
        }
    }

    /// Elapsed virtual microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now_micros().saturating_sub(self.start)
    }

    /// Elapsed virtual milliseconds.
    pub fn elapsed_millis(&self) -> u64 {
        self.elapsed_micros() / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let clock = VirtualClock::starting_at(1_000);
        assert_eq!(clock.now_unix_seconds(), 1_000);
        clock.advance_millis(1500);
        assert_eq!(clock.now_micros(), 1_000 * 1_000_000 + 1_500_000);
        clock.advance_seconds(10);
        assert_eq!(clock.now_unix_seconds(), 1_011);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::starting_at(0);
        let b = a.clone();
        a.advance_seconds(5);
        assert_eq!(b.now_unix_seconds(), 5);
    }

    #[test]
    fn default_starts_at_first_measurement() {
        let clock = VirtualClock::default();
        assert_eq!(clock.now_unix_seconds(), 1_581_206_400);
    }

    #[test]
    fn fork_is_independent() {
        let a = VirtualClock::starting_at(100);
        a.advance_millis(250);
        let b = a.fork();
        assert_eq!(b.now_micros(), a.now_micros());
        b.advance_seconds(5);
        assert_eq!(a.now_unix_seconds(), 100);
        a.advance_seconds(30);
        assert_eq!(b.now_micros(), 105 * 1_000_000 + 250_000);
    }

    #[test]
    fn advance_to_is_monotone_and_idempotent() {
        let clock = VirtualClock::starting_at(100);
        clock.advance_to_micros(150 * 1_000_000);
        assert_eq!(clock.now_unix_seconds(), 150);
        // Already past: a no-op, never a rewind.
        clock.advance_to_micros(120 * 1_000_000);
        assert_eq!(clock.now_unix_seconds(), 150);
        clock.advance_to_micros(150 * 1_000_000);
        assert_eq!(clock.now_unix_seconds(), 150);
    }

    #[test]
    fn jump_forward_ok() {
        let clock = VirtualClock::starting_at(100);
        clock.jump_to_unix_seconds(200);
        assert_eq!(clock.now_unix_seconds(), 200);
    }

    #[test]
    #[should_panic]
    fn jump_backward_panics() {
        let clock = VirtualClock::starting_at(100);
        clock.jump_to_unix_seconds(50);
    }

    #[test]
    fn stopwatch_measures() {
        let clock = VirtualClock::starting_at(0);
        let sw = Stopwatch::start(&clock);
        clock.advance_millis(110_000);
        assert_eq!(sw.elapsed_millis(), 110_000);
    }
}
