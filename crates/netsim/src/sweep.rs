//! zmap-style address-space sweeping.
//!
//! zmap iterates the multiplicative group of integers modulo the prime
//! p = 2³² + 15 = 4 294 967 311: pick a primitive root `g`, then the walk
//! `x ← x·g mod p` visits every element of [1, p−1] exactly once in a
//! pseudo-random order — full IPv4 coverage with O(1) state and no
//! per-address bookkeeping. This module implements that construction
//! (verified on small primes in tests; the full 2³² walk is available but
//! gated to benches), plus a bounded [`PermutedRange`] used to randomize
//! scan order within configurable universes, and the [`SynScanner`]
//! driver with blocklist and probe-rate accounting.

use crate::cidr::{Blocklist, Cidr, Ipv4};
use crate::internet::Internet;
use rand::Rng;

/// The zmap prime: smallest prime larger than 2³².
pub const ZMAP_PRIME: u64 = 4_294_967_311;

/// Deterministic trial-division factorization (u64, fast for the sizes
/// used here).
pub fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A full-cycle walk over the multiplicative group mod a prime `p`:
/// visits every value in `[1, p-1]` exactly once.
#[derive(Debug, Clone)]
pub struct CycleWalk {
    p: u64,
    generator: u64,
    start: u64,
    current: u64,
    emitted: u64,
}

impl CycleWalk {
    /// Builds a walk over the group mod `p` (must be prime) from `rng`'s
    /// choice of primitive root and start element.
    pub fn new<R: Rng + ?Sized>(p: u64, rng: &mut R) -> Self {
        assert!(p >= 3, "prime too small");
        let factors = prime_factors(p - 1);
        // Find a primitive root: g is one iff g^((p-1)/q) != 1 for every
        // prime factor q of p-1.
        let generator = loop {
            let g = rng.gen_range(2..p);
            if factors.iter().all(|&q| pow_mod(g, (p - 1) / q, p) != 1) {
                break g;
            }
        };
        let start = rng.gen_range(1..p);
        CycleWalk {
            p,
            generator,
            start,
            current: start,
            emitted: 0,
        }
    }

    /// The group order (number of elements the walk visits).
    pub fn order(&self) -> u64 {
        self.p - 1
    }

    /// The chosen primitive root.
    pub fn generator(&self) -> u64 {
        self.generator
    }

    /// The walk restricted to steps `offset, offset+stride, …` of the
    /// *full* walk (from its start, regardless of how far this iterator
    /// has advanced): begins at `start·g^offset` and advances by
    /// `g^stride`, visiting exactly the elements the full walk emits at
    /// those step numbers — O(1) setup, no skipped iterations. Step
    /// numbers are yielded alongside the elements so N strided walks
    /// merge back into full-walk order.
    pub fn stride(&self, offset: u64, stride: u64) -> StridedWalk {
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset within stride");
        let order = self.p - 1;
        StridedWalk {
            p: self.p,
            generator: pow_mod(self.generator, stride, self.p),
            current: mul_mod(self.start, pow_mod(self.generator, offset, self.p), self.p),
            step: offset,
            stride,
            remaining: if offset < order {
                (order - offset).div_ceil(stride)
            } else {
                0
            },
        }
    }
}

/// Every `stride`-th element of a [`CycleWalk`], starting at step
/// `offset` (see [`CycleWalk::stride`]). Yields `(step, element)` pairs;
/// the step numbers of the underlying full walk are globally unique
/// across disjoint strides, which is what lets sharded sweeps merge
/// deterministically.
#[derive(Debug, Clone)]
pub struct StridedWalk {
    p: u64,
    generator: u64,
    current: u64,
    step: u64,
    stride: u64,
    remaining: u64,
}

impl Iterator for StridedWalk {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let out = (self.step, self.current);
        self.current = mul_mod(self.current, self.generator, self.p);
        self.step += self.stride;
        self.remaining -= 1;
        Some(out)
    }
}

impl Iterator for CycleWalk {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted == self.p - 1 {
            return None;
        }
        let out = self.current;
        self.current = mul_mod(self.current, self.generator, self.p);
        self.emitted += 1;
        debug_assert!(self.emitted < self.p - 1 || self.current == self.start);
        Some(out)
    }
}

/// Full-IPv4 permutation exactly as zmap builds it: a [`CycleWalk`] over
/// p = 2³² + 15 with group elements `v` mapped to the address `v - 1`,
/// skipping the 14 elements above 2³².
pub fn ipv4_permutation<R: Rng + ?Sized>(rng: &mut R) -> impl Iterator<Item = Ipv4> {
    CycleWalk::new(ZMAP_PRIME, rng).filter_map(|v| {
        let addr = v - 1;
        if addr <= u32::MAX as u64 {
            Some(Ipv4(addr as u32))
        } else {
            None
        }
    })
}

/// A random-order permutation of `[0, size)` built from a cycle walk over
/// the smallest prime `> size`, skipping out-of-range elements.
#[derive(Debug, Clone)]
pub struct PermutedRange {
    walk: CycleWalk,
    size: u64,
}

impl PermutedRange {
    /// Builds a permutation of `[0, size)`.
    pub fn new<R: Rng + ?Sized>(size: u64, rng: &mut R) -> Self {
        assert!(size > 0, "empty range");
        let mut p = size + 1;
        let p = loop {
            if prime_factors(p).len() == 1 && prime_factors(p)[0] == p {
                break p;
            }
            p += 1;
        };
        PermutedRange {
            walk: CycleWalk::new(p.max(3), rng),
            size,
        }
    }

    /// One shard of this permutation: the elements the underlying walk
    /// emits at steps `shard, shard + shards, …`, yielded as
    /// `(walk_step, index)` pairs. Each shard does O(order / shards)
    /// work; the walk steps are globally unique and increasing per
    /// shard, so N shards merge back into exactly this permutation's
    /// order. Must be called on a freshly built range (the stride is
    /// taken from the walk's start).
    pub fn shard(&self, shard: u64, shards: u64) -> PermutedShard {
        PermutedShard {
            walk: self.walk.stride(shard, shards),
            size: self.size,
        }
    }
}

/// A shard of a [`PermutedRange`] (see [`PermutedRange::shard`]):
/// `(walk_step, index)` pairs, out-of-range walk elements skipped.
#[derive(Debug, Clone)]
pub struct PermutedShard {
    walk: StridedWalk,
    size: u64,
}

impl Iterator for PermutedShard {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            let (step, v) = self.walk.next()?;
            let idx = v - 1;
            if idx < self.size {
                return Some((step, idx));
            }
        }
    }
}

impl Iterator for PermutedRange {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            let v = self.walk.next()?;
            let idx = v - 1;
            if idx < self.size {
                return Some(idx);
            }
        }
    }
}

/// The permuted address walk of one sweep shard, with the flat-index →
/// address mapping applied but *no* blocklist filtering, listener
/// probing, or stats: the raw `(walk_step, addr)` sequence that both
/// sweep drivers share.
///
/// [`SynScanner::sweep_shard`] consumes it eagerly; the event-loop
/// engine holds one as a *pausable cursor* so admission can stall under
/// backpressure (bounded in-flight window) and a `SweepCheckpoint` can
/// record exactly how far the walk got. Walk steps are globally unique
/// and increasing per shard — the merge key for both engines.
#[derive(Debug, Clone)]
pub struct SweepWalk {
    shard: Option<PermutedShard>,
    blocks: Vec<(Ipv4, u64)>,
}

impl SweepWalk {
    /// Builds the walk for `shard` of `shards` over `universe`, deriving
    /// the permutation from `rng` exactly as [`SynScanner::sweep_shard`]
    /// does (the walk is a function of the RNG state alone).
    pub fn new<R: Rng + ?Sized>(universe: &[Cidr], rng: &mut R, shard: u64, shards: u64) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(shard < shards, "shard index within shard count");
        let blocks: Vec<(Ipv4, u64)> = universe.iter().map(|c| (c.base, c.size())).collect();
        let total: u64 = blocks.iter().map(|&(_, size)| size).sum();
        SweepWalk {
            shard: (total > 0).then(|| PermutedRange::new(total, rng).shard(shard, shards)),
            blocks,
        }
    }
}

impl Iterator for SweepWalk {
    type Item = (u64, Ipv4);

    fn next(&mut self) -> Option<(u64, Ipv4)> {
        let (pos, idx) = self.shard.as_mut()?.next()?;
        // Map the flat index back into (block, offset).
        let mut rem = idx;
        for &(base, size) in &self.blocks {
            if rem < size {
                return Some((pos, Ipv4(base.0.wrapping_add(rem as u32))));
            }
            rem -= size;
        }
        unreachable!("index within total")
    }
}

/// Probe-rate configuration for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Probes per second (zmap default-ish; the paper spread a full scan
    /// over ~24 h, i.e. ≈50 kpps).
    pub probes_per_second: u64,
    /// TCP port to probe.
    pub port: u16,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            probes_per_second: 50_000,
            port: 4840,
        }
    }
}

/// Result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Addresses with an open target port, in discovery order.
    pub responsive: Vec<Ipv4>,
    /// Probes sent (excluded addresses are not probed).
    pub probes_sent: u64,
    /// Addresses skipped due to the blocklist.
    pub blocklisted: u64,
}

/// Aggregate accounting of a streamed sweep ([`SynScanner::sweep_each`]):
/// everything [`SweepResult`] carries except the responsive addresses
/// themselves, which are handed to the caller one by one instead of being
/// collected. A full-IPv4 sweep finds tens of thousands of hosts; keeping
/// them out of a `Vec` lets downstream stages start probing while the
/// sweep is still walking the permutation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Probes sent (excluded addresses are not probed).
    pub probes_sent: u64,
    /// Addresses skipped due to the blocklist.
    pub blocklisted: u64,
    /// Responsive addresses seen (equals the number of callback calls).
    pub responsive: u64,
}

/// A zmap-like SYN scanner over a configurable universe.
pub struct SynScanner<'a> {
    internet: &'a Internet,
    blocklist: &'a Blocklist,
    config: SweepConfig,
}

impl<'a> SynScanner<'a> {
    /// Creates a scanner.
    pub fn new(internet: &'a Internet, blocklist: &'a Blocklist, config: SweepConfig) -> Self {
        SynScanner {
            internet,
            blocklist,
            config,
        }
    }

    /// Probes every address of `universe` (a set of CIDR blocks) in
    /// permuted order, advancing the virtual clock at the configured
    /// probe rate. This is the sweep the scanner's weekly campaign runs;
    /// the full 0.0.0.0/0 universe is the paper's actual configuration
    /// and works identically (benches exercise a sampled slice for
    /// wall-clock reasons — see DESIGN.md).
    pub fn sweep<R: Rng + ?Sized>(&self, universe: &[Cidr], rng: &mut R) -> SweepResult {
        let mut responsive = Vec::new();
        let stats = self.sweep_each(universe, rng, |addr| responsive.push(addr));
        SweepResult {
            responsive,
            probes_sent: stats.probes_sent,
            blocklisted: stats.blocklisted,
        }
    }

    /// Streaming variant of [`Self::sweep`]: invokes `on_responsive` for
    /// every address with an open target port, in discovery order, and
    /// returns only the aggregate accounting. This is the probe API the
    /// `scanner` crate's pipeline drives — responsive hosts flow into the
    /// application-layer probes without an intermediate `Vec`.
    pub fn sweep_each<R, F>(
        &self,
        universe: &[Cidr],
        rng: &mut R,
        mut on_responsive: F,
    ) -> SweepStats
    where
        R: Rng + ?Sized,
        F: FnMut(Ipv4),
    {
        let stats = self.sweep_shard(universe, rng, 0, 1, |_pos, addr| on_responsive(addr));
        // Account the sweep duration once: probes are asynchronous.
        // Pacing is tracked in microseconds — integer-second division
        // would advance the clock by 0 for any sweep shorter than one
        // second of probes and drop the fractional remainder of longer
        // ones.
        let micros =
            stats.probes_sent.saturating_mul(1_000_000) / self.config.probes_per_second.max(1);
        self.internet.clock().advance_micros(micros);
        stats
    }

    /// One shard of a sweep: every shard derives the *same* permutation
    /// (the walk is a function of `rng`'s state alone) but generates
    /// only its own steps `shard, shard + shards, …` via cycle striding
    /// — O(universe / shards) work per shard, no skipped iterations.
    /// `on_responsive` receives the global walk step alongside the
    /// address, so a coordinator can merge records from N shards back
    /// into the exact discovery order a single-shard sweep produces.
    ///
    /// Clock-neutral: the caller accounts the sweep duration once from
    /// the summed stats (see [`Self::sweep_each`]); shard stats are
    /// disjoint and sum to the single-shard totals. That split is what
    /// makes cancellation safe for the non-blocking engine: an aborted
    /// sweep simply never reaches the accounting step, so no pacing (and
    /// no in-flight probe's fork time) ever leaks onto the campaign
    /// clock.
    pub fn sweep_shard<R, F>(
        &self,
        universe: &[Cidr],
        rng: &mut R,
        shard: u64,
        shards: u64,
        mut on_responsive: F,
    ) -> SweepStats
    where
        R: Rng + ?Sized,
        F: FnMut(u64, Ipv4),
    {
        // Concatenate blocks into one index space, then walk a
        // permutation of it (zmap's randomization property: no subnet is
        // hammered in a burst). The walk itself is shared with the
        // event-loop engine via `SweepWalk`; only the classification
        // below (blocklist → probe → listener) lives here, and any
        // second driver must replicate it in exactly this order for the
        // stats to stay byte-identical.
        let mut stats = SweepStats::default();
        for (pos, addr) in SweepWalk::new(universe, rng, shard, shards) {
            if self.blocklist.contains(addr) {
                stats.blocklisted += 1;
                continue;
            }
            stats.probes_sent += 1;
            if self.internet.has_listener(addr, self.config.port) {
                stats.responsive += 1;
                on_responsive(pos, addr);
            }
        }
        stats
    }
}

/// Element-wise sum of shard stats (used by sharded sweeps to recover
/// the single-shard totals).
impl std::ops::Add for SweepStats {
    type Output = SweepStats;

    fn add(self, rhs: SweepStats) -> SweepStats {
        SweepStats {
            probes_sent: self.probes_sent + rhs.probes_sent,
            blocklisted: self.blocklisted + rhs.blocklisted,
            responsive: self.responsive + rhs.responsive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::internet::{Connection, ConnectionOutput, Service};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn factorization_known_values() {
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(100), vec![2, 5]);
        // The zmap prime is indeed prime and p-1 factors correctly.
        assert_eq!(prime_factors(ZMAP_PRIME), vec![ZMAP_PRIME]);
        let fs = prime_factors(ZMAP_PRIME - 1);
        let product_check: u64 = {
            let mut n = ZMAP_PRIME - 1;
            for f in &fs {
                while n.is_multiple_of(*f) {
                    n /= f;
                }
            }
            n
        };
        assert_eq!(product_check, 1);
    }

    #[test]
    fn cycle_walk_visits_all_exactly_once() {
        for p in [11u64, 101, 257, 65537] {
            let mut rng = StdRng::seed_from_u64(p);
            let walk = CycleWalk::new(p, &mut rng);
            let seen: HashSet<u64> = walk.collect();
            assert_eq!(seen.len() as u64, p - 1, "p={p}");
            assert!((1..p).all(|v| seen.contains(&v)), "p={p}");
        }
    }

    #[test]
    fn cycle_walk_is_not_sequential() {
        let mut rng = StdRng::seed_from_u64(1);
        let first: Vec<u64> = CycleWalk::new(65537, &mut rng).take(100).collect();
        let sorted = {
            let mut v = first.clone();
            v.sort_unstable();
            v
        };
        assert_ne!(first, sorted, "walk order should be permuted");
    }

    #[test]
    fn permuted_range_full_coverage() {
        for size in [1u64, 2, 7, 100, 1000, 4096] {
            let mut rng = StdRng::seed_from_u64(size);
            let seen: HashSet<u64> = PermutedRange::new(size, &mut rng).collect();
            assert_eq!(seen.len() as u64, size, "size={size}");
            assert!((0..size).all(|v| seen.contains(&v)), "size={size}");
        }
    }

    #[test]
    fn ipv4_permutation_prefix_has_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(7);
        let prefix: Vec<Ipv4> = ipv4_permutation(&mut rng).take(100_000).collect();
        let unique: HashSet<Ipv4> = prefix.iter().copied().collect();
        assert_eq!(unique.len(), prefix.len());
    }

    struct Nop;
    impl Connection for Nop {
        fn on_data(&mut self, _d: &[u8]) -> ConnectionOutput {
            ConnectionOutput::empty()
        }
    }
    struct NopService;
    impl Service for NopService {
        fn open_connection(&self, _peer: Ipv4) -> Box<dyn Connection> {
            Box::new(Nop)
        }
    }

    #[test]
    fn syn_scan_finds_all_listeners() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let universe: Cidr = "10.0.0.0/16".parse().unwrap();
        let mut expected = HashSet::new();
        // 50 listeners scattered in the /16.
        for i in 0..50u32 {
            let addr = Ipv4(universe.base.0 + i * 997 + 13);
            net.add_host(addr, 1000);
            net.bind(addr, 4840, Arc::new(NopService));
            expected.insert(addr);
        }
        // A host with the port closed and one on another port.
        let closed = Ipv4(universe.base.0 + 9999);
        net.add_host(closed, 1000);
        let other = Ipv4(universe.base.0 + 12345);
        net.add_host(other, 1000);
        net.bind(other, 80, Arc::new(NopService));

        let blocklist = Blocklist::new();
        let mut rng = StdRng::seed_from_u64(3);
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());
        let result = scanner.sweep(&[universe], &mut rng);
        let found: HashSet<Ipv4> = result.responsive.iter().copied().collect();
        assert_eq!(found, expected);
        assert_eq!(result.probes_sent, universe.size());
        assert_eq!(result.blocklisted, 0);
    }

    #[test]
    fn syn_scan_honors_blocklist() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let universe: Cidr = "10.1.0.0/24".parse().unwrap();
        let victim = Ipv4::new(10, 1, 0, 50);
        net.add_host(victim, 1000);
        net.bind(victim, 4840, Arc::new(NopService));

        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.1.0.32/27").unwrap(); // covers .32-.63
        let mut rng = StdRng::seed_from_u64(4);
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());
        let result = scanner.sweep(&[universe], &mut rng);
        assert!(
            result.responsive.is_empty(),
            "opted-out host must not be probed"
        );
        assert_eq!(result.blocklisted, 32);
        assert_eq!(result.probes_sent, 256 - 32);
    }

    #[test]
    fn sweep_advances_clock_by_rate() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let universe: Cidr = "10.2.0.0/16".parse().unwrap(); // 65536 probes
        let blocklist = Blocklist::new();
        let mut rng = StdRng::seed_from_u64(5);
        let scanner = SynScanner::new(
            &net,
            &blocklist,
            SweepConfig {
                probes_per_second: 1000,
                port: 4840,
            },
        );
        scanner.sweep(&[universe], &mut rng);
        // 65536 probes at 1000/s = 65.536 s, accounted to the micro.
        assert_eq!(clock.now_micros(), 65_536_000);
        assert_eq!(clock.now_unix_seconds(), 65);
    }

    #[test]
    fn sub_second_sweep_still_advances_clock() {
        // A /28 (16 probes) at 1000 probes/s is 16 ms of pacing.
        // Integer-second accounting would advance the clock by zero.
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let universe: Cidr = "10.2.0.0/28".parse().unwrap();
        let blocklist = Blocklist::new();
        let mut rng = StdRng::seed_from_u64(5);
        let scanner = SynScanner::new(
            &net,
            &blocklist,
            SweepConfig {
                probes_per_second: 1000,
                port: 4840,
            },
        );
        scanner.sweep(&[universe], &mut rng);
        assert_eq!(clock.now_micros(), 16_000);
    }

    #[test]
    fn sweep_each_matches_collected_sweep() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let universe: Cidr = "10.9.0.0/24".parse().unwrap();
        for i in [3u32, 77, 200] {
            let addr = Ipv4(universe.base.0 + i);
            net.add_host(addr, 1000);
            net.bind(addr, 4840, Arc::new(NopService));
        }
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.9.0.64/26").unwrap(); // covers .64-.127 (77)
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());

        let mut rng = StdRng::seed_from_u64(21);
        let collected = scanner.sweep(&[universe], &mut rng);

        let mut streamed = Vec::new();
        let mut rng = StdRng::seed_from_u64(21);
        let stats = scanner.sweep_each(&[universe], &mut rng, |a| streamed.push(a));

        assert_eq!(streamed, collected.responsive);
        assert_eq!(stats.probes_sent, collected.probes_sent);
        assert_eq!(stats.blocklisted, collected.blocklisted);
        assert_eq!(stats.responsive as usize, collected.responsive.len());
    }

    #[test]
    fn strided_walks_partition_the_full_walk() {
        for p in [11u64, 101, 65537] {
            for stride in [1u64, 2, 3, 8] {
                let mut rng = StdRng::seed_from_u64(p ^ stride);
                let walk = CycleWalk::new(p, &mut rng);
                let reference: Vec<(u64, u64)> = walk
                    .clone()
                    .enumerate()
                    .map(|(s, v)| (s as u64, v))
                    .collect();
                let mut merged: Vec<(u64, u64)> = (0..stride)
                    .flat_map(|offset| walk.stride(offset, stride))
                    .collect();
                merged.sort_unstable();
                assert_eq!(merged, reference, "p={p} stride={stride}");
            }
        }
    }

    #[test]
    fn permuted_shard_work_is_divided_not_duplicated() {
        // Each shard's iterator yields only its own steps; together they
        // cover the range exactly once.
        let mut rng = StdRng::seed_from_u64(42);
        let range = PermutedRange::new(1000, &mut rng);
        let mut seen = HashSet::new();
        let mut yielded = 0u64;
        for shard in 0..8 {
            for (step, idx) in range.shard(shard, 8) {
                assert_eq!(step % 8, shard, "shard yields only its own steps");
                assert!(seen.insert(idx), "index {idx} yielded twice");
                yielded += 1;
            }
        }
        assert_eq!(yielded, 1000);
    }

    #[test]
    fn sweep_shards_partition_the_sweep() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let universe: Cidr = "10.8.0.0/24".parse().unwrap();
        for i in [1u32, 40, 77, 129, 200, 255] {
            let addr = Ipv4(universe.base.0 + i);
            net.add_host(addr, 1000);
            net.bind(addr, 4840, Arc::new(NopService));
        }
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.8.0.128/26").unwrap(); // covers .128-.191 (129)
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());

        let mut rng = StdRng::seed_from_u64(33);
        let mut reference = Vec::new();
        let full = scanner.sweep_shard(&[universe], &mut rng, 0, 1, |pos, addr| {
            reference.push((pos, addr));
        });

        for shards in [2u64, 3, 8] {
            let mut merged = Vec::new();
            let mut stats = SweepStats::default();
            for shard in 0..shards {
                let mut rng = StdRng::seed_from_u64(33);
                stats = stats
                    + scanner.sweep_shard(&[universe], &mut rng, shard, shards, |pos, addr| {
                        merged.push((pos, addr));
                    });
            }
            merged.sort_by_key(|&(pos, _)| pos);
            assert_eq!(merged, reference, "shards={shards}");
            assert_eq!(stats.probes_sent, full.probes_sent, "shards={shards}");
            assert_eq!(stats.blocklisted, full.blocklisted, "shards={shards}");
            assert_eq!(stats.responsive, full.responsive, "shards={shards}");
        }
    }

    #[test]
    fn sweep_walk_is_the_unfiltered_sweep_order() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let a: Cidr = "10.8.0.0/25".parse().unwrap();
        let b: Cidr = "172.30.0.0/26".parse().unwrap();
        for i in [3u32, 60, 100] {
            let addr = Ipv4(a.base.0 + i);
            net.add_host(addr, 1000);
            net.bind(addr, 4840, Arc::new(NopService));
        }
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.8.0.64/27").unwrap();
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());

        // The walk covers every address of every block exactly once, in
        // a stable order per seed, with no filtering at all.
        let mut rng = StdRng::seed_from_u64(9);
        let walked: Vec<(u64, Ipv4)> = SweepWalk::new(&[a, b], &mut rng, 0, 1).collect();
        assert_eq!(walked.len() as u64, a.size() + b.size());
        let unique: HashSet<Ipv4> = walked.iter().map(|&(_, addr)| addr).collect();
        assert_eq!(unique.len(), walked.len());

        // Replaying the sweep_shard classification over the walk yields
        // the exact responsive sequence and stats sweep_shard produces.
        let mut rng = StdRng::seed_from_u64(9);
        let mut reference = Vec::new();
        let ref_stats = scanner.sweep_shard(&[a, b], &mut rng, 0, 1, |pos, addr| {
            reference.push((pos, addr));
        });
        let mut replayed = Vec::new();
        let mut stats = SweepStats::default();
        for &(pos, addr) in &walked {
            if blocklist.contains(addr) {
                stats.blocklisted += 1;
                continue;
            }
            stats.probes_sent += 1;
            if net.has_listener(addr, 4840) {
                stats.responsive += 1;
                replayed.push((pos, addr));
            }
        }
        assert_eq!(replayed, reference);
        assert_eq!(stats, ref_stats);

        // Shards of the walk partition it.
        let mut merged: Vec<(u64, Ipv4)> = (0..4)
            .flat_map(|shard| {
                let mut rng = StdRng::seed_from_u64(9);
                SweepWalk::new(&[a, b], &mut rng, shard, 4)
            })
            .collect();
        merged.sort_by_key(|&(pos, _)| pos);
        assert_eq!(merged, walked);

        // An empty universe walks nowhere.
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(SweepWalk::new(&[], &mut rng, 0, 1).count(), 0);
    }

    #[test]
    fn sweep_multiple_blocks() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let a: Cidr = "10.3.0.0/28".parse().unwrap();
        let b: Cidr = "192.168.1.0/28".parse().unwrap();
        let host = Ipv4::new(192, 168, 1, 5);
        net.add_host(host, 0);
        net.bind(host, 4840, Arc::new(NopService));
        let blocklist = Blocklist::new();
        let mut rng = StdRng::seed_from_u64(6);
        let scanner = SynScanner::new(&net, &blocklist, SweepConfig::default());
        let result = scanner.sweep(&[a, b], &mut rng);
        assert_eq!(result.responsive, vec![host]);
        assert_eq!(result.probes_sent, 32);
    }
}
