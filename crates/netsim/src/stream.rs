//! TCP-like client streams with byte accounting.
//!
//! The paper's scanner enforces per-host limits of 60 minutes and 50 MB
//! of outgoing traffic (Appendix A.2); [`ConnectionStats`] provides the
//! inputs for that accounting.

use crate::clock::{Micros, VirtualClock};
use crate::internet::{Connection, ConnectionOutput};
use std::collections::VecDeque;

/// Per-connection traffic statistics (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Bytes sent by the client.
    pub tx_bytes: u64,
    /// Bytes received by the client.
    pub rx_bytes: u64,
    /// Virtual time the connection was opened.
    pub opened_at_micros: Micros,
}

/// Errors on an open stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connection closed by peer")
    }
}

impl std::error::Error for StreamError {}

/// Transmission cost model: bytes per microsecond (≈ 80 Mbit/s).
const BYTES_PER_MICRO: u64 = 10;

/// A connected TCP-like stream driving a server-side [`Connection`].
pub struct TcpStreamSim {
    clock: VirtualClock,
    server: Box<dyn Connection>,
    rtt_micros: u32,
    rx_queue: VecDeque<Vec<u8>>,
    closed: bool,
    stats: ConnectionStats,
}

impl TcpStreamSim {
    pub(crate) fn new(clock: VirtualClock, server: Box<dyn Connection>, rtt_micros: u32) -> Self {
        let opened_at = clock.now_micros();
        TcpStreamSim {
            clock,
            server,
            rtt_micros,
            rx_queue: VecDeque::new(),
            closed: false,
            stats: ConnectionStats {
                tx_bytes: 0,
                rx_bytes: 0,
                opened_at_micros: opened_at,
            },
        }
    }

    /// Sends bytes to the server; any reply is queued for [`recv`].
    ///
    /// [`recv`]: TcpStreamSim::recv
    pub fn send(&mut self, data: &[u8]) -> Result<(), StreamError> {
        if self.closed {
            return Err(StreamError::Closed);
        }
        self.stats.tx_bytes += data.len() as u64;
        self.clock
            .advance_micros(self.rtt_micros as u64 / 2 + data.len() as u64 / BYTES_PER_MICRO);
        let ConnectionOutput { reply, close } = self.server.on_data(data);
        if !reply.is_empty() {
            self.stats.rx_bytes += reply.len() as u64;
            self.clock
                .advance_micros(self.rtt_micros as u64 / 2 + reply.len() as u64 / BYTES_PER_MICRO);
            self.rx_queue.push_back(reply);
        }
        if close {
            self.closed = true;
        }
        Ok(())
    }

    /// Receives the next queued reply; `Ok(None)` when the server has
    /// not replied (yet) but the connection is open.
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, StreamError> {
        if let Some(data) = self.rx_queue.pop_front() {
            return Ok(Some(data));
        }
        if self.closed {
            return Err(StreamError::Closed);
        }
        Ok(None)
    }

    /// True after the server closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ConnectionStats {
        self.stats
    }

    /// The connection's round-trip time — the latency every
    /// request/response pair on this stream pays. Lets the event-loop
    /// scheduler cross-check [`crate::ConnectPoll`] hints against the
    /// stream the blocking connect actually produced.
    pub fn rtt_micros(&self) -> u32 {
        self.rtt_micros
    }

    /// Virtual milliseconds since the connection opened.
    pub fn age_millis(&self) -> u64 {
        (self.clock.now_micros() - self.stats.opened_at_micros) / 1000
    }
}

/// An in-memory client↔server pipe that skips the Internet entirely —
/// used to unit-test `ua-server`/`ua-client` against each other.
pub struct LoopbackStream {
    inner: TcpStreamSim,
}

impl LoopbackStream {
    /// Wraps a server connection with zero latency.
    pub fn new(clock: VirtualClock, server: Box<dyn Connection>) -> Self {
        LoopbackStream {
            inner: TcpStreamSim::new(clock, server, 0),
        }
    }

    /// See [`TcpStreamSim::send`].
    pub fn send(&mut self, data: &[u8]) -> Result<(), StreamError> {
        self.inner.send(data)
    }

    /// See [`TcpStreamSim::recv`].
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, StreamError> {
        self.inner.recv()
    }

    /// See [`TcpStreamSim::stats`].
    pub fn stats(&self) -> ConnectionStats {
        self.inner.stats()
    }

    /// See [`TcpStreamSim::is_closed`].
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }
}

/// Abstraction over byte streams so the OPC UA client runs over
/// [`TcpStreamSim`], [`LoopbackStream`], or anything else.
pub trait ByteStream {
    /// Sends bytes.
    fn send(&mut self, data: &[u8]) -> Result<(), StreamError>;
    /// Receives the next reply, if any.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, StreamError>;
    /// Traffic statistics.
    fn stats(&self) -> ConnectionStats;
}

impl ByteStream for TcpStreamSim {
    fn send(&mut self, data: &[u8]) -> Result<(), StreamError> {
        TcpStreamSim::send(self, data)
    }
    fn recv(&mut self) -> Result<Option<Vec<u8>>, StreamError> {
        TcpStreamSim::recv(self)
    }
    fn stats(&self) -> ConnectionStats {
        TcpStreamSim::stats(self)
    }
}

impl ByteStream for LoopbackStream {
    fn send(&mut self, data: &[u8]) -> Result<(), StreamError> {
        LoopbackStream::send(self, data)
    }
    fn recv(&mut self) -> Result<Option<Vec<u8>>, StreamError> {
        LoopbackStream::recv(self)
    }
    fn stats(&self) -> ConnectionStats {
        LoopbackStream::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::ConnectionOutput;

    /// Server that answers "pong" to "ping" and closes on "bye".
    struct PingPong;
    impl Connection for PingPong {
        fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
            match data {
                b"ping" => ConnectionOutput::reply(b"pong".to_vec()),
                b"bye" => ConnectionOutput::close_with(b"cya".to_vec()),
                _ => ConnectionOutput::empty(),
            }
        }
    }

    #[test]
    fn request_reply_and_close() {
        let clock = VirtualClock::starting_at(0);
        let mut s = TcpStreamSim::new(clock, Box::new(PingPong), 1000);
        s.send(b"ping").unwrap();
        assert_eq!(s.recv().unwrap(), Some(b"pong".to_vec()));
        // No reply pending.
        assert_eq!(s.recv().unwrap(), None);
        s.send(b"noop").unwrap();
        assert_eq!(s.recv().unwrap(), None);
        s.send(b"bye").unwrap();
        assert_eq!(s.recv().unwrap(), Some(b"cya".to_vec()));
        assert!(s.is_closed());
        assert_eq!(s.recv().unwrap_err(), StreamError::Closed);
        assert!(s.send(b"ping").is_err());
    }

    #[test]
    fn stats_account_traffic() {
        let clock = VirtualClock::starting_at(5);
        let mut s = TcpStreamSim::new(clock.clone(), Box::new(PingPong), 0);
        s.send(b"ping").unwrap();
        s.recv().unwrap();
        let st = s.stats();
        assert_eq!(st.tx_bytes, 4);
        assert_eq!(st.rx_bytes, 4);
        assert_eq!(st.opened_at_micros, 5_000_000);
    }

    #[test]
    fn age_tracks_clock() {
        let clock = VirtualClock::starting_at(0);
        let s = TcpStreamSim::new(clock.clone(), Box::new(PingPong), 0);
        clock.advance_millis(110_000);
        assert_eq!(s.age_millis(), 110_000);
    }

    #[test]
    fn loopback_works() {
        let clock = VirtualClock::starting_at(0);
        let mut s = LoopbackStream::new(clock, Box::new(PingPong));
        s.send(b"ping").unwrap();
        assert_eq!(s.recv().unwrap(), Some(b"pong".to_vec()));
    }
}
