//! IPv4 addresses, CIDR blocks, and blocklists.
//!
//! The paper excludes 5.79 M addresses (0.13 % of the IPv4 space) on
//! opt-out request (Appendix A.2); [`Blocklist`] models that.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a `u32` (network byte order semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds from dotted octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ipv4 {
    type Err = CidrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(CidrParseError);
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| CidrParseError)?;
        }
        Ok(Ipv4(u32::from_be_bytes(octets)))
    }
}

/// Error parsing an address or CIDR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CidrParseError;

impl fmt::Display for CidrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address or CIDR block")
    }
}

impl std::error::Error for CidrParseError {}

/// A CIDR block (`base/prefix_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    /// Network base address (host bits zeroed).
    pub base: Ipv4,
    /// Prefix length 0–32.
    pub prefix_len: u8,
}

impl Cidr {
    /// Builds a block, zeroing host bits.
    pub fn new(addr: Ipv4, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32);
        Cidr {
            base: Ipv4(addr.0 & Self::mask(prefix_len)),
            prefix_len,
        }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// True if `addr` lies in the block.
    pub fn contains(&self, addr: Ipv4) -> bool {
        addr.0 & Self::mask(self.prefix_len) == self.base.0
    }

    /// Number of addresses in the block.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// First address.
    pub fn first(&self) -> Ipv4 {
        self.base
    }

    /// Last address.
    pub fn last(&self) -> Ipv4 {
        Ipv4(self.base.0 | !Self::mask(self.prefix_len))
    }

    /// Iterates all addresses in the block (ascending).
    pub fn iter(&self) -> impl Iterator<Item = Ipv4> {
        let first = self.base.0 as u64;
        let size = self.size();
        (first..first + size).map(|v| Ipv4(v as u32))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix_len)
    }
}

impl FromStr for Cidr {
    type Err = CidrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(CidrParseError)?;
        let addr: Ipv4 = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| CidrParseError)?;
        if len > 32 {
            return Err(CidrParseError);
        }
        Ok(Cidr::new(addr, len))
    }
}

/// An opt-out blocklist of CIDR blocks with O(log n) lookups.
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    // Sorted by base address; non-overlapping is not required, lookups
    // scan neighbours.
    blocks: Vec<Cidr>,
}

impl Blocklist {
    /// An empty blocklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block.
    pub fn add(&mut self, block: Cidr) {
        self.blocks.push(block);
        self.blocks.sort_by_key(|b| b.base.0);
    }

    /// Parses and adds a block.
    pub fn add_str(&mut self, s: &str) -> Result<(), CidrParseError> {
        self.add(s.parse()?);
        Ok(())
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are present.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of excluded addresses (counting overlaps twice).
    pub fn excluded_addresses(&self) -> u64 {
        self.blocks.iter().map(|b| b.size()).sum()
    }

    /// True if `addr` is blocklisted.
    pub fn contains(&self, addr: Ipv4) -> bool {
        // Binary search for the last block whose base <= addr, then check
        // it and earlier neighbours that could still cover addr (blocks
        // are at most /0, so checking backwards until base > addr - max
        // size is bounded; in practice opt-out lists are small and
        // non-overlapping, so we check a handful).
        let idx = self.blocks.partition_point(|b| b.base.0 <= addr.0);
        self.blocks[..idx]
            .iter()
            .rev()
            .take(32)
            .any(|b| b.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let ip: Ipv4 = "198.51.100.7".parse().unwrap();
        assert_eq!(ip, Ipv4::new(198, 51, 100, 7));
        assert_eq!(ip.to_string(), "198.51.100.7");
        assert!("300.1.1.1".parse::<Ipv4>().is_err());
        assert!("1.2.3".parse::<Ipv4>().is_err());

        let cidr: Cidr = "10.0.0.0/8".parse().unwrap();
        assert_eq!(cidr.to_string(), "10.0.0.0/8");
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("10.0.0.0".parse::<Cidr>().is_err());
    }

    #[test]
    fn cidr_normalizes_host_bits() {
        let cidr = Cidr::new(Ipv4::new(192, 168, 5, 77), 16);
        assert_eq!(cidr.base, Ipv4::new(192, 168, 0, 0));
        assert_eq!(cidr.last(), Ipv4::new(192, 168, 255, 255));
        assert_eq!(cidr.size(), 65536);
    }

    #[test]
    fn contains_boundaries() {
        let cidr: Cidr = "198.51.100.0/24".parse().unwrap();
        assert!(cidr.contains(Ipv4::new(198, 51, 100, 0)));
        assert!(cidr.contains(Ipv4::new(198, 51, 100, 255)));
        assert!(!cidr.contains(Ipv4::new(198, 51, 101, 0)));
        assert!(!cidr.contains(Ipv4::new(198, 51, 99, 255)));
    }

    #[test]
    fn slash_zero_and_slash_32() {
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4(u32::MAX)));
        assert_eq!(all.size(), 1 << 32);
        let one: Cidr = "1.2.3.4/32".parse().unwrap();
        assert!(one.contains(Ipv4::new(1, 2, 3, 4)));
        assert!(!one.contains(Ipv4::new(1, 2, 3, 5)));
        assert_eq!(one.size(), 1);
    }

    #[test]
    fn iter_covers_block() {
        let cidr: Cidr = "10.1.2.0/30".parse().unwrap();
        let addrs: Vec<Ipv4> = cidr.iter().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], Ipv4::new(10, 1, 2, 0));
        assert_eq!(addrs[3], Ipv4::new(10, 1, 2, 3));
    }

    #[test]
    fn blocklist_lookup() {
        let mut bl = Blocklist::new();
        bl.add_str("10.0.0.0/8").unwrap();
        bl.add_str("198.51.100.0/24").unwrap();
        bl.add_str("203.0.113.7/32").unwrap();
        assert!(bl.contains(Ipv4::new(10, 200, 1, 1)));
        assert!(bl.contains(Ipv4::new(198, 51, 100, 99)));
        assert!(bl.contains(Ipv4::new(203, 0, 113, 7)));
        assert!(!bl.contains(Ipv4::new(203, 0, 113, 8)));
        assert!(!bl.contains(Ipv4::new(8, 8, 8, 8)));
        assert_eq!(bl.len(), 3);
        assert_eq!(bl.excluded_addresses(), (1 << 24) + 256 + 1);
    }

    #[test]
    fn blocklist_overlapping_blocks() {
        let mut bl = Blocklist::new();
        bl.add_str("10.0.0.0/8").unwrap();
        bl.add_str("10.5.0.0/16").unwrap();
        assert!(bl.contains(Ipv4::new(10, 5, 1, 1)));
        assert!(bl.contains(Ipv4::new(10, 99, 1, 1)));
    }

    #[test]
    fn empty_blocklist() {
        let bl = Blocklist::new();
        assert!(bl.is_empty());
        assert!(!bl.contains(Ipv4::new(1, 1, 1, 1)));
    }
}
