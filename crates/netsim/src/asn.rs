//! Autonomous-system registry.
//!
//! The paper breaks results down by AS (Figure 8b) and observes, e.g., a
//! 385-host certificate-reuse cluster spanning 24 ASes, concentrated at
//! an ISP specialized in connecting (I)IoT devices.

use crate::cidr::{Cidr, Ipv4};

/// Coarse AS categories appearing in the paper's discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Regional consumer/business ISP.
    RegionalIsp,
    /// ISP focused on connecting (I)IoT devices (Appendix B.1.2).
    IotIsp,
    /// Hosting / cloud provider.
    Hosting,
    /// Enterprise network.
    Enterprise,
    /// Research & education.
    Research,
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// AS number.
    pub number: u32,
    /// Operator name (synthetic).
    pub name: String,
    /// Category.
    pub kind: AsKind,
}

/// Maps address space to autonomous systems (longest-prefix match).
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    systems: Vec<AsInfo>,
    // (cidr, index into systems), sorted by descending prefix length for
    // longest-prefix-first scanning.
    prefixes: Vec<(Cidr, usize)>,
}

impl AsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an AS, returning its index handle.
    pub fn register(&mut self, number: u32, name: impl Into<String>, kind: AsKind) -> usize {
        self.systems.push(AsInfo {
            number,
            name: name.into(),
            kind,
        });
        self.systems.len() - 1
    }

    /// Announces a prefix for the AS with handle `handle`.
    pub fn announce(&mut self, handle: usize, prefix: Cidr) {
        assert!(handle < self.systems.len(), "unknown AS handle");
        self.prefixes.push((prefix, handle));
        self.prefixes
            .sort_by_key(|p| std::cmp::Reverse(p.0.prefix_len));
    }

    /// Longest-prefix lookup of the AS owning `addr`.
    pub fn lookup(&self, addr: Ipv4) -> Option<&AsInfo> {
        self.prefixes
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|(_, idx)| &self.systems[*idx])
    }

    /// AS number owning `addr` (0 when unannounced).
    pub fn as_number(&self, addr: Ipv4) -> u32 {
        self.lookup(addr).map_or(0, |a| a.number)
    }

    /// All registered systems.
    pub fn systems(&self) -> &[AsInfo] {
        &self.systems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut reg = AsRegistry::new();
        let big = reg.register(64500, "TransitCo", AsKind::RegionalIsp);
        let small = reg.register(64501, "IoT-Connect", AsKind::IotIsp);
        reg.announce(big, "10.0.0.0/8".parse().unwrap());
        reg.announce(small, "10.99.0.0/16".parse().unwrap());

        assert_eq!(reg.as_number(Ipv4::new(10, 1, 1, 1)), 64500);
        assert_eq!(reg.as_number(Ipv4::new(10, 99, 5, 5)), 64501);
        assert_eq!(
            reg.lookup(Ipv4::new(10, 99, 5, 5)).unwrap().kind,
            AsKind::IotIsp
        );
        assert_eq!(reg.as_number(Ipv4::new(11, 0, 0, 1)), 0);
        assert!(reg.lookup(Ipv4::new(11, 0, 0, 1)).is_none());
        assert_eq!(reg.systems().len(), 2);
    }

    #[test]
    #[should_panic]
    fn announce_unknown_handle_panics() {
        let mut reg = AsRegistry::new();
        reg.announce(3, "10.0.0.0/8".parse().unwrap());
    }
}
