//! # netsim
//!
//! A deterministic, in-memory IPv4 Internet: the substrate that stands in
//! for the real Internet in this reproduction (see DESIGN.md).
//!
//! * [`clock`] — virtual time (seven months pass in milliseconds);
//! * [`cidr`] — addresses, CIDR blocks, opt-out blocklists;
//! * [`asn`] — autonomous-system registry with longest-prefix lookup;
//! * [`internet`] — hosts, listeners, and poll-driven connections
//!   (smoltcp-style byte-level state machines);
//! * [`faults`] — middlebox fault injection: per-host [`NetProfile`]s
//!   (packet loss, tarpits, rate-limiting firewalls, flaky hosts) that
//!   a retrying scanner must survive;
//! * [`stream`] — TCP-like client streams with latency and traffic
//!   accounting;
//! * [`sweep`] — zmap's cyclic-group address permutation and a SYN
//!   scanner with blocklist and probe-rate modeling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod cidr;
pub mod clock;
pub mod faults;
pub mod internet;
pub mod stream;
pub mod sweep;

pub use asn::{AsInfo, AsKind, AsRegistry};
pub use cidr::{Blocklist, Cidr, CidrParseError, Ipv4};
pub use clock::{Micros, Stopwatch, VirtualClock};
pub use faults::{
    ConnectFate, CutConn, FirewallProfile, NetProfile, ProfileProvider, StaticProfiles, TarpitConn,
    TarpitProfile,
};
pub use internet::{
    ConnectError, ConnectPoll, Connection, ConnectionOutput, HostResolver, Internet, Service,
    SYN_TIMEOUT_MICROS,
};
pub use stream::{ByteStream, ConnectionStats, LoopbackStream, StreamError, TcpStreamSim};
pub use sweep::{
    ipv4_permutation, CycleWalk, PermutedRange, SweepConfig, SweepResult, SweepStats, SweepWalk,
    SynScanner,
};
