//! The simulated IPv4 Internet: hosts, listeners, and connections.
//!
//! Smoltcp-style poll-driven design: a server registers a [`Service`]
//! factory on `(ip, port)`; each accepted connection is a byte-level
//! state machine ([`Connection`]) that consumes client bytes and emits
//! reply bytes. No threads, no async runtime — determinism first.

use crate::asn::AsRegistry;
use crate::cidr::Ipv4;
use crate::clock::VirtualClock;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// What a connection state machine produced for one input.
#[derive(Debug, Default)]
pub struct ConnectionOutput {
    /// Bytes to deliver back to the peer.
    pub reply: Vec<u8>,
    /// True when the server closes the connection after this reply.
    pub close: bool,
}

impl ConnectionOutput {
    /// Reply without closing.
    pub fn reply(bytes: Vec<u8>) -> Self {
        ConnectionOutput {
            reply: bytes,
            close: false,
        }
    }

    /// Reply and close.
    pub fn close_with(bytes: Vec<u8>) -> Self {
        ConnectionOutput {
            reply: bytes,
            close: true,
        }
    }

    /// No output, keep open.
    pub fn empty() -> Self {
        Self::default()
    }
}

/// A per-connection byte-level state machine.
pub trait Connection: Send {
    /// Feeds bytes received from the peer.
    fn on_data(&mut self, data: &[u8]) -> ConnectionOutput;
}

/// A listener that accepts connections.
pub trait Service: Send + Sync {
    /// Opens a new connection state machine for an accepted client.
    fn open_connection(&self, peer: Ipv4) -> Box<dyn Connection>;
}

/// Why a connect attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// No host answers at this address (SYN timeout).
    NoRoute,
    /// Host exists but nothing listens on the port (RST).
    Refused,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::NoRoute => write!(f, "no route to host (timeout)"),
            ConnectError::Refused => write!(f, "connection refused"),
        }
    }
}

impl std::error::Error for ConnectError {}

struct HostEntry {
    services: HashMap<u16, Arc<dyn Service>>,
    rtt_micros: u32,
}

/// The simulated Internet. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Internet {
    clock: VirtualClock,
    hosts: Arc<RwLock<HashMap<u32, HostEntry>>>,
    registry: Arc<RwLock<AsRegistry>>,
}

impl Internet {
    /// Creates an empty Internet on `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        Internet {
            clock,
            hosts: Arc::new(RwLock::new(HashMap::new())),
            registry: Arc::new(RwLock::new(AsRegistry::new())),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// A view of the same Internet (shared hosts and AS registry) driven
    /// by a different clock. Connections opened through the view charge
    /// their latency to `clock` instead of the shared one — this is how
    /// sharded scans probe hosts on independent forked clocks without
    /// the workers racing on shared time.
    pub fn with_clock(&self, clock: VirtualClock) -> Internet {
        Internet {
            clock,
            hosts: Arc::clone(&self.hosts),
            registry: Arc::clone(&self.registry),
        }
    }

    /// Replaces the AS registry.
    pub fn set_registry(&self, registry: AsRegistry) {
        *self.registry.write().unwrap() = registry;
    }

    /// AS number owning `addr` (0 if unannounced).
    pub fn as_number(&self, addr: Ipv4) -> u32 {
        self.registry.read().unwrap().as_number(addr)
    }

    /// Runs `f` with read access to the AS registry.
    pub fn with_registry<T>(&self, f: impl FnOnce(&AsRegistry) -> T) -> T {
        f(&self.registry.read().unwrap())
    }

    /// Adds (or replaces) a host with the given round-trip time.
    pub fn add_host(&self, addr: Ipv4, rtt_micros: u32) {
        self.hosts.write().unwrap().insert(
            addr.0,
            HostEntry {
                services: HashMap::new(),
                rtt_micros,
            },
        );
    }

    /// Removes a host entirely (device went offline / changed IP).
    pub fn remove_host(&self, addr: Ipv4) {
        self.hosts.write().unwrap().remove(&addr.0);
    }

    /// Binds a service to `(addr, port)`; the host must exist.
    pub fn bind(&self, addr: Ipv4, port: u16, service: Arc<dyn Service>) {
        let mut hosts = self.hosts.write().unwrap();
        let host = hosts
            .get_mut(&addr.0)
            .unwrap_or_else(|| panic!("bind on unknown host {addr}"));
        host.services.insert(port, service);
    }

    /// Unbinds a port.
    pub fn unbind(&self, addr: Ipv4, port: u16) {
        if let Some(host) = self.hosts.write().unwrap().get_mut(&addr.0) {
            host.services.remove(&port);
        }
    }

    /// True if a host exists at `addr`.
    pub fn host_exists(&self, addr: Ipv4) -> bool {
        self.hosts.read().unwrap().contains_key(&addr.0)
    }

    /// SYN-probe semantics: does anything listen on `(addr, port)`?
    /// (No clock cost — probe pacing is accounted by the sweep.)
    pub fn has_listener(&self, addr: Ipv4, port: u16) -> bool {
        self.hosts
            .read()
            .unwrap()
            .get(&addr.0)
            .is_some_and(|h| h.services.contains_key(&port))
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.read().unwrap().len()
    }

    /// All host addresses, ascending (deterministic iteration for
    /// tests/ground truth; a real scanner cannot do this).
    pub fn host_addresses(&self) -> Vec<Ipv4> {
        let mut v: Vec<Ipv4> = self
            .hosts
            .read()
            .unwrap()
            .keys()
            .map(|&ip| Ipv4(ip))
            .collect();
        v.sort();
        v
    }

    /// Opens a TCP-like connection, applying one RTT of virtual latency
    /// for the handshake.
    pub fn connect(
        &self,
        from: Ipv4,
        to: Ipv4,
        port: u16,
    ) -> Result<crate::stream::TcpStreamSim, ConnectError> {
        let hosts = self.hosts.read().unwrap();
        let host = hosts.get(&to.0).ok_or_else(|| {
            // SYN timeout: a scanner waits ~1s for silence.
            self.clock.advance_millis(1000);
            ConnectError::NoRoute
        })?;
        let service = host.services.get(&port).ok_or_else(|| {
            // RST comes back after one RTT.
            self.clock.advance_micros(host.rtt_micros as u64);
            ConnectError::Refused
        })?;
        let conn = service.open_connection(from);
        self.clock.advance_micros(host.rtt_micros as u64);
        Ok(crate::stream::TcpStreamSim::new(
            self.clock.clone(),
            conn,
            host.rtt_micros,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo service for tests.
    struct Echo;
    struct EchoConn;
    impl Connection for EchoConn {
        fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
            ConnectionOutput::reply(data.to_vec())
        }
    }
    impl Service for Echo {
        fn open_connection(&self, _peer: Ipv4) -> Box<dyn Connection> {
            Box::new(EchoConn)
        }
    }

    #[test]
    fn connect_routes_and_errors() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let ip = Ipv4::new(198, 51, 100, 1);
        net.add_host(ip, 10_000);
        net.bind(ip, 4840, Arc::new(Echo));

        assert!(net.host_exists(ip));
        assert!(net.has_listener(ip, 4840));
        assert!(!net.has_listener(ip, 80));

        // Refused on closed port.
        assert_eq!(
            net.connect(Ipv4::new(1, 1, 1, 1), ip, 80).err(),
            Some(ConnectError::Refused)
        );
        // No route to unknown host.
        assert_eq!(
            net.connect(Ipv4::new(1, 1, 1, 1), Ipv4::new(9, 9, 9, 9), 4840)
                .err(),
            Some(ConnectError::NoRoute)
        );
        // Success.
        let mut stream = net.connect(Ipv4::new(1, 1, 1, 1), ip, 4840).unwrap();
        stream.send(b"ping").unwrap();
        assert_eq!(stream.recv().unwrap(), Some(b"ping".to_vec()));
    }

    #[test]
    fn latency_advances_clock() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let ip = Ipv4::new(10, 0, 0, 1);
        net.add_host(ip, 50_000); // 50 ms RTT
        net.bind(ip, 4840, Arc::new(Echo));
        let before = clock.now_micros();
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), ip, 4840).unwrap();
        assert!(clock.now_micros() >= before + 50_000);
    }

    #[test]
    fn syn_timeout_costs_a_second() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2), 4840);
        assert_eq!(clock.now_micros(), 1_000_000);
    }

    #[test]
    fn unbind_and_remove() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let ip = Ipv4::new(10, 0, 0, 2);
        net.add_host(ip, 1000);
        net.bind(ip, 4840, Arc::new(Echo));
        net.unbind(ip, 4840);
        assert!(!net.has_listener(ip, 4840));
        net.remove_host(ip);
        assert!(!net.host_exists(ip));
        assert_eq!(net.host_count(), 0);
    }

    #[test]
    fn host_addresses_sorted() {
        let net = Internet::new(VirtualClock::starting_at(0));
        net.add_host(Ipv4::new(9, 0, 0, 1), 0);
        net.add_host(Ipv4::new(1, 0, 0, 1), 0);
        net.add_host(Ipv4::new(5, 0, 0, 1), 0);
        let addrs = net.host_addresses();
        assert_eq!(
            addrs,
            vec![
                Ipv4::new(1, 0, 0, 1),
                Ipv4::new(5, 0, 0, 1),
                Ipv4::new(9, 0, 0, 1)
            ]
        );
    }
}
