//! The simulated IPv4 Internet: hosts, listeners, and connections.
//!
//! Smoltcp-style poll-driven design: a server registers a [`Service`]
//! factory on `(ip, port)`; each accepted connection is a byte-level
//! state machine ([`Connection`]) that consumes client bytes and emits
//! reply bytes. No threads, no async runtime — determinism first.

use crate::asn::AsRegistry;
use crate::cidr::Ipv4;
use crate::clock::VirtualClock;
use crate::faults::{ConnectFate, CutConn, NetProfile, ProfileProvider, TarpitConn};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// What a connection state machine produced for one input.
#[derive(Debug, Default)]
pub struct ConnectionOutput {
    /// Bytes to deliver back to the peer.
    pub reply: Vec<u8>,
    /// True when the server closes the connection after this reply.
    pub close: bool,
}

impl ConnectionOutput {
    /// Reply without closing.
    pub fn reply(bytes: Vec<u8>) -> Self {
        ConnectionOutput {
            reply: bytes,
            close: false,
        }
    }

    /// Reply and close.
    pub fn close_with(bytes: Vec<u8>) -> Self {
        ConnectionOutput {
            reply: bytes,
            close: true,
        }
    }

    /// No output, keep open.
    pub fn empty() -> Self {
        Self::default()
    }
}

/// A per-connection byte-level state machine.
pub trait Connection: Send {
    /// Feeds bytes received from the peer.
    fn on_data(&mut self, data: &[u8]) -> ConnectionOutput;
}

/// A listener that accepts connections.
pub trait Service: Send + Sync {
    /// Opens a new connection state machine for an accepted client.
    fn open_connection(&self, peer: Ipv4) -> Box<dyn Connection>;
}

/// Why a connect attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// No host answers at this address (SYN timeout).
    NoRoute,
    /// Host exists but nothing listens on the port (RST).
    Refused,
    /// A rate-limiting middlebox dropped the SYN and penalized the
    /// source — the scan-detection signature a retry layer should back
    /// off on (see [`crate::faults::FirewallProfile`]).
    Throttled,
    /// The peer accepted and then stalled without ever sending a byte
    /// (a silent tarpit): the connect burned the stall budget and never
    /// yielded a usable stream.
    Stalled,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::NoRoute => write!(f, "no route to host (timeout)"),
            ConnectError::Refused => write!(f, "connection refused"),
            ConnectError::Throttled => write!(f, "rate-limited (SYN dropped by middlebox)"),
            ConnectError::Stalled => write!(f, "accepted then stalled (tarpit)"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// How long a scanner waits for silence before declaring a SYN dead —
/// the virtual cost [`Internet::connect`] charges on [`ConnectError::NoRoute`].
pub const SYN_TIMEOUT_MICROS: u64 = 1_000_000;

/// Fallback latency hint for hosts the resolver knows but the bound
/// table has never seen: their true RTT is decided at materialization,
/// so a non-blocking poll can only guess. Scheduling-only — the hint
/// never reaches a record.
const DEFAULT_RTT_HINT_MICROS: u64 = 10_000;

/// The *predicted* outcome of a connect, answered without blocking,
/// without advancing any clock, and without materializing lazy hosts.
///
/// This is the non-blocking half of the event-loop engine's SYN stage:
/// [`Internet::poll_connect`] tells the scheduler what a
/// [`Internet::connect`] to the same `(addr, port)` *will* do and
/// roughly when, so a timer can be armed for the completion; the
/// blocking [`Internet::connect`] on the probe's private clock fork
/// remains the completion path that actually pays the latency (and, for
/// lazy worlds, materializes the host). Because the hint only schedules
/// engine wake-ups — never record contents — an imprecise hint for an
/// unmaterialized host cannot break byte-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectPoll {
    /// A listener accepts: the handshake will complete after one RTT.
    /// `rtt_micros` is `None` when only the lazy resolver knows the host
    /// (its RTT is fixed at materialization time).
    Listening {
        /// Round-trip time, if the host is already bound.
        rtt_micros: Option<u32>,
    },
    /// The host is up but nothing listens on the port: RST after one RTT.
    Refused {
        /// Round-trip time, if the host is already bound.
        rtt_micros: Option<u32>,
    },
    /// Nothing answers at the address: SYN timeout.
    NoRoute {
        /// How long the scanner will wait before giving up.
        timeout_micros: u64,
    },
    /// A rate-limiting firewall will eat the SYN: no stream, only the
    /// penalty wait ([`ConnectError::Throttled`]).
    Throttled {
        /// Virtual microseconds the penalty costs the scanner.
        penalty_micros: u64,
    },
    /// A silent tarpit will accept and then stall
    /// ([`ConnectError::Stalled`]).
    Stalled {
        /// Virtual microseconds until the scanner gives up on the
        /// stalled connection (RTT plus the stall budget).
        micros: u64,
    },
}

impl ConnectPoll {
    /// True if a blocking connect would succeed.
    pub fn will_accept(&self) -> bool {
        matches!(self, ConnectPoll::Listening { .. })
    }

    /// How many virtual microseconds until the connect attempt resolves
    /// (handshake completes, RST arrives, the SYN times out, or a fault
    /// burns its budget). Used by the event loop to arm completion
    /// timers.
    pub fn latency_hint_micros(&self) -> u64 {
        match self {
            ConnectPoll::Listening { rtt_micros } | ConnectPoll::Refused { rtt_micros } => {
                rtt_micros.map_or(DEFAULT_RTT_HINT_MICROS, u64::from)
            }
            ConnectPoll::NoRoute { timeout_micros } => *timeout_micros,
            ConnectPoll::Throttled { penalty_micros } => *penalty_micros,
            ConnectPoll::Stalled { micros } => *micros,
        }
    }
}

struct HostEntry {
    services: HashMap<u16, Arc<dyn Service>>,
    rtt_micros: u32,
}

/// Lazily resolves hosts that are not (yet) in the bound host table.
///
/// A resolver is the hook behind lazy world materialization: the sweep
/// and the probe stack keep calling [`Internet::has_listener`] /
/// [`Internet::connect`] as if every host were pre-bound, and the
/// resolver answers occupancy queries from a seeded predicate in O(1) —
/// without allocating anything per address — then materializes (builds
/// and binds) a host the first time a connection actually reaches it.
///
/// Contract:
/// * `host_exists` / `has_listener` must be side-effect free and cheap —
///   they are called once per swept address.
/// * `materialize` must leave the host bound on `net` before returning
///   (or do nothing if the address is actually empty); it is only called
///   after `host_exists` returned true, and must be idempotent — probe
///   workers race on it.
/// * Answers must be consistent with what `materialize` binds, or probes
///   become non-deterministic.
pub trait HostResolver: Send + Sync {
    /// True if a host occupies `addr` (SYN would not time out).
    fn host_exists(&self, addr: Ipv4) -> bool;
    /// True if something listens on `(addr, port)` — the sweep's SYN
    /// probe. Must not materialize anything.
    fn has_listener(&self, addr: Ipv4, port: u16) -> bool;
    /// Builds and binds the host at `addr` onto `net` (first contact).
    fn materialize(&self, net: &Internet, addr: Ipv4);
}

/// The simulated Internet. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Internet {
    clock: VirtualClock,
    hosts: Arc<RwLock<HashMap<u32, HostEntry>>>,
    registry: Arc<RwLock<AsRegistry>>,
    resolver: Arc<RwLock<Option<Arc<dyn HostResolver>>>>,
    profiles: Arc<RwLock<Option<Arc<dyn ProfileProvider>>>>,
}

impl Internet {
    /// Creates an empty Internet on `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        Internet {
            clock,
            hosts: Arc::new(RwLock::new(HashMap::new())),
            registry: Arc::new(RwLock::new(AsRegistry::new())),
            resolver: Arc::new(RwLock::new(None)),
            profiles: Arc::new(RwLock::new(None)),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Lock-poisoning policy, centralized: every guard scope in this
    /// file is a short table read or update, so a poisoned lock means
    /// another worker already panicked mid-simulation. Surfacing that
    /// as a typed error would bury the original panic — propagate.
    fn hosts_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u32, HostEntry>> {
        // ua-lint: allow(panic-hygiene) -- poisoned host table: a peer panicked; propagate it
        self.hosts.read().unwrap()
    }

    fn hosts_write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<u32, HostEntry>> {
        // ua-lint: allow(panic-hygiene) -- poisoned host table: a peer panicked; propagate it
        self.hosts.write().unwrap()
    }

    fn registry_read(&self) -> std::sync::RwLockReadGuard<'_, AsRegistry> {
        // ua-lint: allow(panic-hygiene) -- poisoned registry: a peer panicked; propagate it
        self.registry.read().unwrap()
    }

    /// A view of the same Internet (shared hosts and AS registry) driven
    /// by a different clock. Connections opened through the view charge
    /// their latency to `clock` instead of the shared one — this is how
    /// sharded scans probe hosts on independent forked clocks without
    /// the workers racing on shared time.
    pub fn with_clock(&self, clock: VirtualClock) -> Internet {
        Internet {
            clock,
            hosts: Arc::clone(&self.hosts),
            registry: Arc::clone(&self.registry),
            resolver: Arc::clone(&self.resolver),
            profiles: Arc::clone(&self.profiles),
        }
    }

    /// Installs a [`HostResolver`] that backs the host table with a lazy
    /// world: occupancy queries that miss the bound table fall through
    /// to the resolver, and connects to resolver-known addresses
    /// materialize the host on first contact. Shared by all clock views
    /// ([`Internet::with_clock`]), so sharded scan workers see the same
    /// lazy world.
    pub fn set_resolver(&self, resolver: Arc<dyn HostResolver>) {
        // ua-lint: allow(panic-hygiene) -- poisoned resolver slot: a peer panicked; propagate it
        *self.resolver.write().unwrap() = Some(resolver);
    }

    fn resolver(&self) -> Option<Arc<dyn HostResolver>> {
        // ua-lint: allow(panic-hygiene) -- poisoned resolver slot: a peer panicked; propagate it
        self.resolver.read().unwrap().clone()
    }

    /// Installs a [`ProfileProvider`]: every subsequent connect consults
    /// it for middlebox faults (loss, tarpits, rate limiting). Shared by
    /// all clock views ([`Internet::with_clock`]), so sharded scan
    /// workers face identical hostility. Without one the Internet stays
    /// polite — every attempt [`ConnectFate::Deliver`]s.
    pub fn set_profiles(&self, profiles: Arc<dyn ProfileProvider>) {
        // ua-lint: allow(panic-hygiene) -- poisoned profile slot: a peer panicked; propagate it
        *self.profiles.write().unwrap() = Some(profiles);
    }

    fn profiles(&self) -> Option<Arc<dyn ProfileProvider>> {
        // ua-lint: allow(panic-hygiene) -- poisoned profile slot: a peer panicked; propagate it
        self.profiles.read().unwrap().clone()
    }

    /// The network profile guarding `addr` (polite when no provider is
    /// installed or the provider does not list the address).
    pub fn profile_of(&self, addr: Ipv4) -> NetProfile {
        self.profiles()
            .map_or_else(NetProfile::polite, |p| p.profile_of(addr))
    }

    /// Replaces the AS registry.
    pub fn set_registry(&self, registry: AsRegistry) {
        // ua-lint: allow(panic-hygiene) -- poisoned registry: a peer panicked; propagate it
        *self.registry.write().unwrap() = registry;
    }

    /// AS number owning `addr` (0 if unannounced).
    pub fn as_number(&self, addr: Ipv4) -> u32 {
        self.registry_read().as_number(addr)
    }

    /// Runs `f` with read access to the AS registry.
    pub fn with_registry<T>(&self, f: impl FnOnce(&AsRegistry) -> T) -> T {
        f(&self.registry_read())
    }

    /// Adds (or replaces) a host with the given round-trip time.
    pub fn add_host(&self, addr: Ipv4, rtt_micros: u32) {
        self.hosts_write().insert(
            addr.0,
            HostEntry {
                services: HashMap::new(),
                rtt_micros,
            },
        );
    }

    /// Atomically installs (or replaces) a host together with its
    /// listeners under one table lock. Lazy materialization binds
    /// through this: concurrent scan workers must never observe a host
    /// entry that exists but has no services yet.
    pub fn install_host(
        &self,
        addr: Ipv4,
        rtt_micros: u32,
        services: Vec<(u16, Arc<dyn Service>)>,
    ) {
        self.hosts_write().insert(
            addr.0,
            HostEntry {
                services: services.into_iter().collect(),
                rtt_micros,
            },
        );
    }

    /// Removes a host entirely (device went offline / changed IP).
    pub fn remove_host(&self, addr: Ipv4) {
        self.hosts_write().remove(&addr.0);
    }

    /// Binds a service to `(addr, port)`; the host must exist.
    pub fn bind(&self, addr: Ipv4, port: u16, service: Arc<dyn Service>) {
        let mut hosts = self.hosts_write();
        let host = hosts
            .get_mut(&addr.0)
            // ua-lint: allow(panic-hygiene) -- binding to an unbound address is a caller bug
            .unwrap_or_else(|| panic!("bind on unknown host {addr}"));
        host.services.insert(port, service);
    }

    /// Unbinds a port.
    pub fn unbind(&self, addr: Ipv4, port: u16) {
        if let Some(host) = self.hosts_write().get_mut(&addr.0) {
            host.services.remove(&port);
        }
    }

    /// True if a host exists at `addr` — bound or resolver-known.
    pub fn host_exists(&self, addr: Ipv4) -> bool {
        if self.hosts_read().contains_key(&addr.0) {
            return true;
        }
        self.resolver().is_some_and(|r| r.host_exists(addr))
    }

    /// SYN-probe semantics: does anything listen on `(addr, port)`?
    /// (No clock cost — probe pacing is accounted by the sweep.)
    ///
    /// A materialized host answers from its bound service table; an
    /// unmaterialized one from the resolver's O(1) predicate — the SYN
    /// itself never materializes anything.
    pub fn has_listener(&self, addr: Ipv4, port: u16) -> bool {
        {
            let hosts = self.hosts_read();
            if let Some(h) = hosts.get(&addr.0) {
                return h.services.contains_key(&port);
            }
        }
        self.resolver().is_some_and(|r| r.has_listener(addr, port))
    }

    /// Number of *bound* hosts (lazy worlds: materialized so far).
    pub fn host_count(&self) -> usize {
        self.hosts_read().len()
    }

    /// All host addresses, ascending (deterministic iteration for
    /// tests/ground truth; a real scanner cannot do this).
    pub fn host_addresses(&self) -> Vec<Ipv4> {
        let mut v: Vec<Ipv4> = self.hosts_read().keys().map(|&ip| Ipv4(ip)).collect();
        v.sort();
        v
    }

    /// Predicts what [`Internet::connect`] to `(to, port)` would do,
    /// without blocking, clock cost, or side effects.
    ///
    /// Mirrors `connect`'s decision tree — bound table first, then the
    /// lazy resolver — but never materializes a host and never touches
    /// the clock: it is safe to call once per admitted probe from the
    /// event loop. See [`ConnectPoll`] for how the answer (and its
    /// latency hint) is meant to be used.
    pub fn poll_connect(&self, to: Ipv4, port: u16) -> ConnectPoll {
        let base = 'route: {
            {
                let hosts = self.hosts_read();
                if let Some(host) = hosts.get(&to.0) {
                    let rtt_micros = Some(host.rtt_micros);
                    break 'route if host.services.contains_key(&port) {
                        ConnectPoll::Listening { rtt_micros }
                    } else {
                        ConnectPoll::Refused { rtt_micros }
                    };
                }
            }
            if let Some(resolver) = self.resolver() {
                if resolver.host_exists(to) {
                    break 'route if resolver.has_listener(to, port) {
                        ConnectPoll::Listening { rtt_micros: None }
                    } else {
                        ConnectPoll::Refused { rtt_micros: None }
                    };
                }
            }
            return ConnectPoll::NoRoute {
                timeout_micros: SYN_TIMEOUT_MICROS,
            };
        };
        // Routable: overlay the first attempt's middlebox fate, exactly
        // as the blocking `connect` (attempt 0) will resolve it.
        let profile = self.profile_of(to);
        if profile.is_polite() {
            return base;
        }
        match profile.connect_fate(0) {
            ConnectFate::Deliver => base,
            ConnectFate::SynLost => ConnectPoll::NoRoute {
                timeout_micros: SYN_TIMEOUT_MICROS,
            },
            ConnectFate::Throttled { penalty_micros } => ConnectPoll::Throttled { penalty_micros },
            ConnectFate::Tarpit(tarpit) => match base {
                // A silent tarpit (no dribble) fails the connect after
                // RTT + stall; a dribbling one hands out a stream like
                // any listener — it just never says anything useful.
                ConnectPoll::Listening { rtt_micros } if tarpit.dribble_bytes == 0 => {
                    ConnectPoll::Stalled {
                        micros: rtt_micros.map_or(DEFAULT_RTT_HINT_MICROS, u64::from)
                            + tarpit.stall_micros,
                    }
                }
                other => other,
            },
        }
    }

    /// Route resolution, the fault-free half of a connect: what the
    /// bound table (after lazy materialization) says lives at
    /// `(to, port)`. A table miss here is *routing* truth — "nothing
    /// answers" — and is deliberately kept apart from injected faults,
    /// which make a perfectly routable host look dead for one attempt.
    fn route_of(&self, to: Ipv4, port: u16) -> Route {
        // One materialization pass: a table miss may just mean "not
        // built yet". The hosts lock is never held across the resolver
        // call — materialize() needs the write side to bind.
        for pass in 0..2 {
            let hit = {
                let hosts = self.hosts_read();
                hosts
                    .get(&to.0)
                    .map(|host| (host.services.contains_key(&port), host.rtt_micros))
            };
            match hit {
                Some((true, rtt_micros)) => return Route::Listening { rtt_micros },
                Some((false, rtt_micros)) => return Route::Refused { rtt_micros },
                None if pass == 0 => match self.resolver() {
                    Some(r) if r.host_exists(to) => r.materialize(self, to),
                    _ => return Route::Dead,
                },
                None => return Route::Dead,
            }
        }
        Route::Dead
    }

    /// Opens a TCP-like connection, applying one RTT of virtual latency
    /// for the handshake. Equivalent to
    /// [`connect_attempt`](Internet::connect_attempt) with attempt 0.
    ///
    /// With a resolver installed, a connect to an address the bound
    /// table misses but the resolver knows first materializes the host
    /// (the lazy world's "first probe contact"), then retries against
    /// the now-bound table. Materialization itself is free on the
    /// virtual clock — only the handshake RTT is charged, exactly as in
    /// an eagerly built world.
    pub fn connect(
        &self,
        from: Ipv4,
        to: Ipv4,
        port: u16,
    ) -> Result<crate::stream::TcpStreamSim, ConnectError> {
        self.connect_attempt(from, to, port, 0)
    }

    /// [`connect`](Internet::connect) with an explicit attempt index
    /// for the middlebox fault layer: a retrying scanner passes 0, 1,
    /// 2… so per-attempt fates (flaky windows, firewall strikes, the
    /// loss coin) replay deterministically. Every fault advances this
    /// view's clock honestly:
    ///
    /// * lost SYN — [`SYN_TIMEOUT_MICROS`], [`ConnectError::NoRoute`];
    /// * firewall strike — the penalty wait, [`ConnectError::Throttled`];
    /// * silent tarpit — RTT + stall, [`ConnectError::Stalled`];
    /// * dribbling tarpit — RTT, then a stream whose every exchange
    ///   stalls (the caller's stage budget is what ends it).
    pub fn connect_attempt(
        &self,
        from: Ipv4,
        to: Ipv4,
        port: u16,
        attempt: u32,
    ) -> Result<crate::stream::TcpStreamSim, ConnectError> {
        let route = self.route_of(to, port);
        if matches!(route, Route::Dead) {
            // SYN timeout: a scanner waits ~1s for silence. No profile
            // consulted — faulting a host that does not exist would
            // conflate routing truth with injected hostility.
            self.clock.advance_micros(SYN_TIMEOUT_MICROS);
            return Err(ConnectError::NoRoute);
        }
        let profile = self.profile_of(to);
        match profile.connect_fate(attempt) {
            ConnectFate::Deliver => {}
            ConnectFate::SynLost => {
                // Indistinguishable from a dead address on the wire.
                self.clock.advance_micros(SYN_TIMEOUT_MICROS);
                return Err(ConnectError::NoRoute);
            }
            ConnectFate::Throttled { penalty_micros } => {
                self.clock.advance_micros(penalty_micros);
                return Err(ConnectError::Throttled);
            }
            ConnectFate::Tarpit(tarpit) => {
                if let Route::Listening { rtt_micros } = route {
                    if tarpit.dribble_bytes == 0 {
                        self.clock
                            .advance_micros(u64::from(rtt_micros) + tarpit.stall_micros);
                        return Err(ConnectError::Stalled);
                    }
                    self.clock.advance_micros(u64::from(rtt_micros));
                    return Ok(crate::stream::TcpStreamSim::new(
                        self.clock.clone(),
                        Box::new(TarpitConn::new(self.clock.clone(), tarpit)),
                        rtt_micros,
                    ));
                }
                // Nothing listens behind the tarpit: plain RST below.
            }
        }
        match route {
            Route::Listening { rtt_micros } => {
                let conn = {
                    let hosts = self.hosts_read();
                    hosts
                        .get(&to.0)
                        .and_then(|host| host.services.get(&port))
                        .map(|service| service.open_connection(from))
                };
                match conn {
                    Some(conn) => {
                        let conn: Box<dyn Connection> = if profile.cut_after_exchanges > 0 {
                            Box::new(CutConn::new(conn, profile.cut_after_exchanges))
                        } else {
                            conn
                        };
                        self.clock.advance_micros(u64::from(rtt_micros));
                        Ok(crate::stream::TcpStreamSim::new(
                            self.clock.clone(),
                            conn,
                            rtt_micros,
                        ))
                    }
                    // The host vanished between route resolution and
                    // accept (world churn): same as a dead address.
                    None => {
                        self.clock.advance_micros(SYN_TIMEOUT_MICROS);
                        Err(ConnectError::NoRoute)
                    }
                }
            }
            Route::Refused { rtt_micros } => {
                // RST comes back after one RTT.
                self.clock.advance_micros(u64::from(rtt_micros));
                Err(ConnectError::Refused)
            }
            Route::Dead => {
                self.clock.advance_micros(SYN_TIMEOUT_MICROS);
                Err(ConnectError::NoRoute)
            }
        }
    }
}

/// What [`Internet::route_of`] concluded about `(addr, port)` before
/// any middlebox fault is applied.
enum Route {
    /// A service is bound: a fault-free connect succeeds after one RTT.
    Listening {
        /// Round-trip time of the bound host.
        rtt_micros: u32,
    },
    /// The host is up but the port is closed: RST after one RTT.
    Refused {
        /// Round-trip time of the bound host.
        rtt_micros: u32,
    },
    /// Nothing answers (and the resolver disowns the address).
    Dead,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo service for tests.
    struct Echo;
    struct EchoConn;
    impl Connection for EchoConn {
        fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
            ConnectionOutput::reply(data.to_vec())
        }
    }
    impl Service for Echo {
        fn open_connection(&self, _peer: Ipv4) -> Box<dyn Connection> {
            Box::new(EchoConn)
        }
    }

    #[test]
    fn connect_routes_and_errors() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let ip = Ipv4::new(198, 51, 100, 1);
        net.add_host(ip, 10_000);
        net.bind(ip, 4840, Arc::new(Echo));

        assert!(net.host_exists(ip));
        assert!(net.has_listener(ip, 4840));
        assert!(!net.has_listener(ip, 80));

        // Refused on closed port.
        assert_eq!(
            net.connect(Ipv4::new(1, 1, 1, 1), ip, 80).err(),
            Some(ConnectError::Refused)
        );
        // No route to unknown host.
        assert_eq!(
            net.connect(Ipv4::new(1, 1, 1, 1), Ipv4::new(9, 9, 9, 9), 4840)
                .err(),
            Some(ConnectError::NoRoute)
        );
        // Success.
        let mut stream = net.connect(Ipv4::new(1, 1, 1, 1), ip, 4840).unwrap();
        stream.send(b"ping").unwrap();
        assert_eq!(stream.recv().unwrap(), Some(b"ping".to_vec()));
    }

    #[test]
    fn latency_advances_clock() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let ip = Ipv4::new(10, 0, 0, 1);
        net.add_host(ip, 50_000); // 50 ms RTT
        net.bind(ip, 4840, Arc::new(Echo));
        let before = clock.now_micros();
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), ip, 4840).unwrap();
        assert!(clock.now_micros() >= before + 50_000);
    }

    #[test]
    fn syn_timeout_costs_a_second() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2), 4840);
        assert_eq!(clock.now_micros(), 1_000_000);
    }

    #[test]
    fn unbind_and_remove() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let ip = Ipv4::new(10, 0, 0, 2);
        net.add_host(ip, 1000);
        net.bind(ip, 4840, Arc::new(Echo));
        net.unbind(ip, 4840);
        assert!(!net.has_listener(ip, 4840));
        net.remove_host(ip);
        assert!(!net.host_exists(ip));
        assert_eq!(net.host_count(), 0);
    }

    #[test]
    fn resolver_backs_table_misses_and_materializes_on_connect() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct LazyEcho {
            target: Ipv4,
            materialized: AtomicUsize,
        }
        impl HostResolver for LazyEcho {
            fn host_exists(&self, addr: Ipv4) -> bool {
                addr == self.target
            }
            fn has_listener(&self, addr: Ipv4, port: u16) -> bool {
                addr == self.target && port == 4840
            }
            fn materialize(&self, net: &Internet, addr: Ipv4) {
                self.materialized.fetch_add(1, Ordering::SeqCst);
                net.install_host(
                    addr,
                    5_000,
                    vec![(4840, Arc::new(Echo) as Arc<dyn Service>)],
                );
            }
        }
        let net = Internet::new(VirtualClock::starting_at(0));
        let target = Ipv4::new(10, 9, 9, 9);
        let resolver = Arc::new(LazyEcho {
            target,
            materialized: AtomicUsize::new(0),
        });
        net.set_resolver(resolver.clone());

        // SYN probes answer from the predicate without materializing.
        assert!(net.has_listener(target, 4840));
        assert!(!net.has_listener(target, 80));
        assert!(net.host_exists(target));
        assert!(!net.host_exists(Ipv4::new(10, 9, 9, 8)));
        assert_eq!(net.host_count(), 0);
        assert_eq!(resolver.materialized.load(Ordering::SeqCst), 0);

        // First contact materializes exactly once; afterwards the bound
        // table answers directly.
        let mut s = net.connect(Ipv4::new(1, 1, 1, 1), target, 4840).unwrap();
        s.send(b"hi").unwrap();
        assert_eq!(s.recv().unwrap(), Some(b"hi".to_vec()));
        assert_eq!(resolver.materialized.load(Ordering::SeqCst), 1);
        assert_eq!(net.host_count(), 1);
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), target, 4840).unwrap();
        assert_eq!(resolver.materialized.load(Ordering::SeqCst), 1);

        // Clock views share the resolver.
        let view = net.with_clock(VirtualClock::starting_at(0));
        assert!(view.has_listener(target, 4840));

        // Addresses the resolver disowns still time out.
        assert_eq!(
            net.connect(Ipv4::new(1, 1, 1, 1), Ipv4::new(10, 9, 9, 8), 4840)
                .err(),
            Some(ConnectError::NoRoute)
        );
    }

    #[test]
    fn poll_connect_predicts_connect_without_side_effects() {
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let ip = Ipv4::new(198, 51, 100, 7);
        net.add_host(ip, 12_000);
        net.bind(ip, 4840, Arc::new(Echo));
        let from = Ipv4::new(1, 1, 1, 1);

        // Listening: hint equals the RTT the blocking connect charges.
        let poll = net.poll_connect(ip, 4840);
        assert_eq!(
            poll,
            ConnectPoll::Listening {
                rtt_micros: Some(12_000)
            }
        );
        assert!(poll.will_accept());
        let before = clock.now_micros();
        let stream = net.connect(from, ip, 4840).unwrap();
        assert_eq!(clock.now_micros() - before, poll.latency_hint_micros());
        assert_eq!(u64::from(stream.rtt_micros()), poll.latency_hint_micros());

        // Refused: same RTT, RST path.
        let poll = net.poll_connect(ip, 80);
        assert_eq!(
            poll,
            ConnectPoll::Refused {
                rtt_micros: Some(12_000)
            }
        );
        let before = clock.now_micros();
        assert_eq!(net.connect(from, ip, 80).err(), Some(ConnectError::Refused));
        assert_eq!(clock.now_micros() - before, poll.latency_hint_micros());

        // NoRoute: hint equals the SYN timeout the blocking path pays.
        let ghost = Ipv4::new(9, 9, 9, 9);
        let poll = net.poll_connect(ghost, 4840);
        assert_eq!(
            poll,
            ConnectPoll::NoRoute {
                timeout_micros: SYN_TIMEOUT_MICROS
            }
        );
        let before = clock.now_micros();
        assert_eq!(
            net.connect(from, ghost, 4840).err(),
            Some(ConnectError::NoRoute)
        );
        assert_eq!(clock.now_micros() - before, SYN_TIMEOUT_MICROS);

        // Polling never advanced the clock itself.
        let before = clock.now_micros();
        let _ = net.poll_connect(ip, 4840);
        assert_eq!(clock.now_micros(), before);
    }

    #[test]
    fn poll_connect_answers_from_resolver_without_materializing() {
        struct LazyEcho {
            target: Ipv4,
        }
        impl HostResolver for LazyEcho {
            fn host_exists(&self, addr: Ipv4) -> bool {
                addr == self.target
            }
            fn has_listener(&self, addr: Ipv4, port: u16) -> bool {
                addr == self.target && port == 4840
            }
            fn materialize(&self, net: &Internet, addr: Ipv4) {
                net.install_host(
                    addr,
                    5_000,
                    vec![(4840, Arc::new(Echo) as Arc<dyn Service>)],
                );
            }
        }
        let net = Internet::new(VirtualClock::starting_at(0));
        let target = Ipv4::new(10, 9, 9, 9);
        net.set_resolver(Arc::new(LazyEcho { target }));

        // Known to the resolver, not yet bound: Listening, RTT unknown,
        // and *nothing* materializes.
        assert_eq!(
            net.poll_connect(target, 4840),
            ConnectPoll::Listening { rtt_micros: None }
        );
        assert_eq!(
            net.poll_connect(target, 80),
            ConnectPoll::Refused { rtt_micros: None }
        );
        assert_eq!(net.host_count(), 0);
        // The unknown-RTT hint still schedules something sensible.
        assert!(net.poll_connect(target, 4840).latency_hint_micros() > 0);

        // After first contact the bound table answers with the real RTT.
        let _ = net.connect(Ipv4::new(1, 1, 1, 1), target, 4840).unwrap();
        assert_eq!(
            net.poll_connect(target, 4840),
            ConnectPoll::Listening {
                rtt_micros: Some(5_000)
            }
        );
    }

    #[test]
    fn fault_variants_pin_time_costs() {
        use crate::faults::{FirewallProfile, NetProfile, StaticProfiles, TarpitProfile};
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let from = Ipv4::new(1, 1, 1, 1);
        let rtt = 10_000_u32;

        let throttled = Ipv4::new(10, 0, 0, 1);
        let flaky = Ipv4::new(10, 0, 0, 2);
        let silent_tarpit = Ipv4::new(10, 0, 0, 3);
        let drip_tarpit = Ipv4::new(10, 0, 0, 4);
        let walled = Ipv4::new(10, 0, 0, 5);
        for ip in [throttled, flaky, silent_tarpit, drip_tarpit, walled] {
            net.add_host(ip, rtt);
            net.bind(ip, 4840, Arc::new(Echo));
        }
        let stall = 30_000_000_u64;
        let penalty = 2_000_000_u64;
        let profiles = StaticProfiles::new()
            .with(
                throttled,
                NetProfile {
                    firewall: Some(FirewallProfile {
                        strikes: 1,
                        penalty_micros: penalty,
                    }),
                    ..NetProfile::polite()
                },
            )
            .with(
                flaky,
                NetProfile {
                    flaky_connects: 2,
                    ..NetProfile::polite()
                },
            )
            .with(
                silent_tarpit,
                NetProfile {
                    tarpit: Some(TarpitProfile {
                        stall_micros: stall,
                        dribble_bytes: 0,
                    }),
                    ..NetProfile::polite()
                },
            )
            .with(
                drip_tarpit,
                NetProfile {
                    tarpit: Some(TarpitProfile {
                        stall_micros: stall,
                        dribble_bytes: 4,
                    }),
                    ..NetProfile::polite()
                },
            )
            .with(
                walled,
                NetProfile {
                    firewall: Some(FirewallProfile::permanent(penalty)),
                    ..NetProfile::polite()
                },
            );
        net.set_profiles(Arc::new(profiles));

        // Firewall strike: penalty wait, Throttled; next attempt clean.
        let before = clock.now_micros();
        assert_eq!(
            net.connect_attempt(from, throttled, 4840, 0).err(),
            Some(ConnectError::Throttled)
        );
        assert_eq!(clock.now_micros() - before, penalty);
        let before = clock.now_micros();
        assert!(net.connect_attempt(from, throttled, 4840, 1).is_ok());
        assert_eq!(clock.now_micros() - before, u64::from(rtt));

        // Flaky window: two SYN timeouts, then a clean RTT.
        for attempt in 0..2 {
            let before = clock.now_micros();
            assert_eq!(
                net.connect_attempt(from, flaky, 4840, attempt).err(),
                Some(ConnectError::NoRoute)
            );
            assert_eq!(clock.now_micros() - before, SYN_TIMEOUT_MICROS);
        }
        let before = clock.now_micros();
        assert!(net.connect_attempt(from, flaky, 4840, 2).is_ok());
        assert_eq!(clock.now_micros() - before, u64::from(rtt));

        // Silent tarpit: RTT + stall, Stalled — on every attempt.
        for attempt in 0..2 {
            let before = clock.now_micros();
            assert_eq!(
                net.connect_attempt(from, silent_tarpit, 4840, attempt)
                    .err(),
                Some(ConnectError::Stalled)
            );
            assert_eq!(clock.now_micros() - before, u64::from(rtt) + stall);
        }

        // Dribbling tarpit: the connect succeeds after one RTT, but the
        // first exchange burns the stall and yields only zero dribble.
        let before = clock.now_micros();
        let mut s = net.connect_attempt(from, drip_tarpit, 4840, 0).unwrap();
        assert_eq!(clock.now_micros() - before, u64::from(rtt));
        let before = clock.now_micros();
        s.send(b"HELLO").unwrap();
        assert!(clock.now_micros() - before >= stall);
        assert_eq!(s.recv().unwrap(), Some(vec![0u8; 4]));

        // Permanent blocklisting: no attempt number gets through.
        for attempt in [0, 5, 1_000] {
            assert_eq!(
                net.connect_attempt(from, walled, 4840, attempt).err(),
                Some(ConnectError::Throttled)
            );
        }

        // Faults never fire for dead addresses: routing truth first.
        let before = clock.now_micros();
        assert_eq!(
            net.connect_attempt(from, Ipv4::new(9, 9, 9, 9), 4840, 3)
                .err(),
            Some(ConnectError::NoRoute)
        );
        assert_eq!(clock.now_micros() - before, SYN_TIMEOUT_MICROS);
    }

    #[test]
    fn poll_connect_predicts_faulted_connects() {
        use crate::faults::{FirewallProfile, NetProfile, StaticProfiles, TarpitProfile};
        let clock = VirtualClock::starting_at(0);
        let net = Internet::new(clock.clone());
        let from = Ipv4::new(1, 1, 1, 1);
        let rtt = 10_000_u32;
        let throttled = Ipv4::new(10, 1, 0, 1);
        let silent_tarpit = Ipv4::new(10, 1, 0, 2);
        let lossy = Ipv4::new(10, 1, 0, 3);
        for ip in [throttled, silent_tarpit, lossy] {
            net.add_host(ip, rtt);
            net.bind(ip, 4840, Arc::new(Echo));
        }
        let stall = 5_000_000_u64;
        let penalty = 2_000_000_u64;
        let profiles = StaticProfiles::new()
            .with(
                throttled,
                NetProfile {
                    firewall: Some(FirewallProfile {
                        strikes: 1,
                        penalty_micros: penalty,
                    }),
                    ..NetProfile::polite()
                },
            )
            .with(
                silent_tarpit,
                NetProfile {
                    tarpit: Some(TarpitProfile {
                        stall_micros: stall,
                        dribble_bytes: 0,
                    }),
                    ..NetProfile::polite()
                },
            )
            .with(
                lossy,
                NetProfile {
                    fault_seed: 7,
                    syn_loss_permille: 1000,
                    ..NetProfile::polite()
                },
            );
        net.set_profiles(Arc::new(profiles));

        // Each poll's hint equals the blocking attempt-0 cost, and the
        // poll itself never advances the clock.
        for (ip, want) in [
            (
                throttled,
                ConnectPoll::Throttled {
                    penalty_micros: penalty,
                },
            ),
            (
                silent_tarpit,
                ConnectPoll::Stalled {
                    micros: u64::from(rtt) + stall,
                },
            ),
            (
                lossy,
                ConnectPoll::NoRoute {
                    timeout_micros: SYN_TIMEOUT_MICROS,
                },
            ),
        ] {
            let before = clock.now_micros();
            let poll = net.poll_connect(ip, 4840);
            assert_eq!(clock.now_micros(), before);
            assert_eq!(poll, want);
            assert!(!poll.will_accept());
            let before = clock.now_micros();
            assert!(net.connect_attempt(from, ip, 4840, 0).is_err());
            assert_eq!(clock.now_micros() - before, poll.latency_hint_micros());
        }
    }

    #[test]
    fn host_addresses_sorted() {
        let net = Internet::new(VirtualClock::starting_at(0));
        net.add_host(Ipv4::new(9, 0, 0, 1), 0);
        net.add_host(Ipv4::new(1, 0, 0, 1), 0);
        net.add_host(Ipv4::new(5, 0, 0, 1), 0);
        let addrs = net.host_addresses();
        assert_eq!(
            addrs,
            vec![
                Ipv4::new(1, 0, 0, 1),
                Ipv4::new(5, 0, 0, 1),
                Ipv4::new(9, 0, 0, 1)
            ]
        );
    }
}
