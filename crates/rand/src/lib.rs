//! Deterministic stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The workspace builds hermetically (no crates.io access), so `rand`
//! resolves here via a path dependency. Only the surface the simulation
//! needs is provided: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`RngCore::fill_bytes`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha12, so *values* differ from real `rand`, but every consumer in
//! this repository treats seeded output as an opaque deterministic
//! sequence, which this shim honors: the same seed always yields the same
//! stream on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform (rejection-sampled, unbiased) draw from `[0, span)`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span; values >= 2^64 - rem would bias the modulo.
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    let bound = u64::MAX - rem; // accept v <= bound
    loop {
        let v = rng.next_u64();
        if v <= bound {
            return v % span;
        }
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                low + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the whole domain; `[0, 1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_sample_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }
}
