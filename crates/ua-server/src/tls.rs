//! TLS-wrapped opc.tcp: the `uat-tls` listener.
//!
//! "Missed Opportunities" (Dahlmanns et al., 2022) found IIoT operators
//! increasingly front their legacy protocol with TLS — and then undo the
//! gain by serving expired certificates or leaving the inner protocol
//! anonymous. [`TlsWrapService`] reproduces exactly that deployment
//! shape: it answers the two-frame `uat-tls` prologue (see
//! [`ua_proto::uatls`]), presenting whatever certificate the wrapped
//! server is configured with (including an expired one, or none at all),
//! and then hands the connection over byte-for-byte to the inner OPC UA
//! state machine. The wrapper adds no security of its own — which is
//! precisely the point the measurement makes.

use crate::connection::UaServerService;
use netsim::{Connection, ConnectionOutput, Ipv4, Service};
use std::sync::Arc;
use ua_proto::uatls;

/// A `uat-tls` listener in front of any inner [`Service`].
///
/// The prologue certificate defaults to the wrapped server's
/// application-instance certificate — the single-cert deployment the
/// paper observed — but can be overridden (or removed) to plant the
/// wrapper-specific deficits.
pub struct TlsWrapService {
    inner: Arc<dyn Service>,
    cert_der: Option<Vec<u8>>,
}

impl TlsWrapService {
    /// Wraps an OPC UA server, serving its configured certificate in
    /// the prologue (none configured → none presented).
    pub fn new(inner: UaServerService) -> Self {
        let cert_der = inner.core().config.certificate.as_ref().map(|c| c.to_der());
        TlsWrapService {
            inner: Arc::new(inner),
            cert_der,
        }
    }

    /// Wraps an arbitrary service with an explicit prologue certificate
    /// (`None` plants the certificate-less deficit).
    pub fn with_certificate(inner: Arc<dyn Service>, cert_der: Option<Vec<u8>>) -> Self {
        TlsWrapService { inner, cert_der }
    }
}

impl Service for TlsWrapService {
    fn open_connection(&self, peer: Ipv4) -> Box<dyn Connection> {
        Box::new(TlsWrapConn {
            state: WrapState::AwaitClientHello(Vec::new()),
            inner: self.inner.open_connection(peer),
            cert_der: self.cert_der.clone(),
        })
    }
}

enum WrapState {
    /// Accumulating the fixed 8-byte client prologue.
    AwaitClientHello(Vec<u8>),
    /// Prologue done; every byte goes to the inner connection.
    Passthrough,
}

/// One accepted `uat-tls` connection: prologue state machine, then
/// transparent passthrough.
pub struct TlsWrapConn {
    state: WrapState,
    inner: Box<dyn Connection>,
    cert_der: Option<Vec<u8>>,
}

impl Connection for TlsWrapConn {
    fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
        match &mut self.state {
            WrapState::AwaitClientHello(buf) => {
                buf.extend_from_slice(data);
                if buf.len() < uatls::CLIENT_HELLO.len() {
                    return ConnectionOutput::empty();
                }
                if buf[..uatls::CLIENT_HELLO.len()] != uatls::CLIENT_HELLO {
                    // Not the prologue — a plain-UACP client hit the
                    // TLS port. Hang up silently, like a TLS stack
                    // aborting a failed handshake.
                    return ConnectionOutput::close_with(Vec::new());
                }
                let rest = buf[uatls::CLIENT_HELLO.len()..].to_vec();
                self.state = WrapState::Passthrough;
                let mut reply = uatls::encode_server_hello(self.cert_der.as_deref());
                if rest.is_empty() {
                    ConnectionOutput::reply(reply)
                } else {
                    // Client pipelined UACP behind the prologue: feed it
                    // through and splice both replies.
                    let out = self.inner.on_data(&rest);
                    reply.extend_from_slice(&out.reply);
                    ConnectionOutput {
                        reply,
                        close: out.close,
                    }
                }
            }
            WrapState::Passthrough => self.inner.on_data(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::core::ServerCore;
    use netsim::{LoopbackStream, VirtualClock};
    use ua_addrspace::SpaceBuilder;
    use ua_proto::transport::{Hello, TransportMessage};

    fn wrapped_stream(cert_der: Option<Vec<u8>>) -> LoopbackStream {
        let config = ServerConfig::wide_open("urn:acme:tls1", "opc.tcp://h:4843/");
        let core = ServerCore::new(
            config,
            SpaceBuilder::new(&["urn:acme:tls"], "1.0").finish(),
            3,
        );
        let service =
            TlsWrapService::with_certificate(Arc::new(UaServerService::new(core, 5)), cert_der);
        let conn = service.open_connection(Ipv4::new(9, 9, 9, 9));
        LoopbackStream::new(VirtualClock::starting_at(0), conn)
    }

    #[test]
    fn prologue_presents_certificate_then_speaks_uacp() {
        let der = vec![0x30, 0x11, 0x22];
        let mut s = wrapped_stream(Some(der.clone()));
        s.send(&uatls::CLIENT_HELLO).unwrap();
        let reply = s.recv().unwrap().unwrap();
        let hello = uatls::decode_server_hello(&reply).unwrap();
        assert_eq!(hello.cert_der.as_deref(), Some(der.as_slice()));
        // Same connection now answers plain UACP.
        s.send(&TransportMessage::Hello(Hello::default()).encode())
            .unwrap();
        match TransportMessage::decode(&s.recv().unwrap().unwrap()).unwrap() {
            TransportMessage::Acknowledge(_) => {}
            other => panic!("expected ACK, got {other:?}"),
        }
    }

    #[test]
    fn certificate_less_wrapper_clears_the_flag() {
        let mut s = wrapped_stream(None);
        s.send(&uatls::CLIENT_HELLO).unwrap();
        let reply = s.recv().unwrap().unwrap();
        assert_eq!(uatls::decode_server_hello(&reply).unwrap().cert_der, None);
    }

    #[test]
    fn plain_uacp_on_the_tls_port_is_hung_up_on() {
        let mut s = wrapped_stream(None);
        s.send(&TransportMessage::Hello(Hello::default()).encode())
            .unwrap();
        assert!(matches!(s.recv(), Ok(None) | Err(_)));
        assert!(s.is_closed());
    }
}
