//! The per-connection protocol state machine: HEL/ACK, secure-channel
//! establishment, and secured service exchange.

use crate::core::{ChannelContext, ServerCore};
use netsim::{Connection, ConnectionOutput, Ipv4, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use ua_crypto::Certificate;
use ua_proto::chunk::{chunk_message, Reassembler};
use ua_proto::secure::{
    derive_keys, open_asymmetric, open_symmetric, policy_crypto, seal_asymmetric, DerivedKeys,
    SequenceHeader,
};
use ua_proto::services::{
    ChannelSecurityToken, OpenSecureChannelResponse, ResponseHeader, ServiceBody,
};
use ua_proto::transport::{Acknowledge, ErrorMessage, FrameReader, TransportMessage};
use ua_types::{MessageSecurityMode, SecurityPolicy, StatusCode, UaDecode, UaEncode};

/// Service payload bytes per outgoing chunk.
const CHUNK_BODY: usize = 8192;

/// Network-facing OPC UA server: implements [`netsim::Service`].
pub struct UaServerService {
    core: Arc<ServerCore>,
    seed: u64,
}

impl UaServerService {
    /// Wraps a server core.
    pub fn new(core: Arc<ServerCore>, seed: u64) -> Self {
        UaServerService { core, seed }
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }
}

impl Service for UaServerService {
    fn open_connection(&self, peer: Ipv4) -> Box<dyn Connection> {
        Box::new(ServerConnection {
            core: Arc::clone(&self.core),
            frames: FrameReader::new(),
            got_hello: false,
            channel: None,
            rng: StdRng::seed_from_u64(self.seed ^ peer.0 as u64),
        })
    }
}

struct ChannelState {
    id: u32,
    token_id: u32,
    policy: SecurityPolicy,
    mode: MessageSecurityMode,
    /// Keys for messages the *server* sends.
    local_keys: Option<DerivedKeys>,
    /// Keys for messages the *client* sends.
    remote_keys: Option<DerivedKeys>,
    client_certificate: Option<Certificate>,
    next_sequence: u32,
    reassembler: Reassembler,
}

/// One accepted connection.
pub struct ServerConnection {
    core: Arc<ServerCore>,
    frames: FrameReader,
    got_hello: bool,
    channel: Option<ChannelState>,
    rng: StdRng,
}

impl Connection for ServerConnection {
    fn on_data(&mut self, data: &[u8]) -> ConnectionOutput {
        self.frames.push(data);
        let mut reply = Vec::new();
        loop {
            match self.frames.next_raw_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => match self.handle_frame(&frame) {
                    FrameResult::Reply(bytes) => reply.extend_from_slice(&bytes),
                    FrameResult::Silent => {}
                    FrameResult::Close(bytes) => {
                        reply.extend_from_slice(&bytes);
                        return ConnectionOutput::close_with(reply);
                    }
                },
                Err(_) => {
                    // Not OPC UA (or corrupt): close with a transport error,
                    // like real stacks do when garbage arrives on 4840.
                    reply.extend_from_slice(
                        &TransportMessage::Error(ErrorMessage::new(
                            StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID,
                            "invalid message",
                        ))
                        .encode(),
                    );
                    return ConnectionOutput::close_with(reply);
                }
            }
        }
        ConnectionOutput::reply(reply)
    }
}

enum FrameResult {
    Reply(Vec<u8>),
    Silent,
    Close(Vec<u8>),
}

impl ServerConnection {
    fn handle_frame(&mut self, frame: &[u8]) -> FrameResult {
        match &frame[0..3] {
            b"HEL" => self.handle_hello(frame),
            b"OPN" => self.handle_open(frame),
            b"MSG" => self.handle_msg(frame),
            b"CLO" => FrameResult::Close(Vec::new()),
            _ => FrameResult::Close(
                TransportMessage::Error(ErrorMessage::new(
                    StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID,
                    "unexpected message type",
                ))
                .encode(),
            ),
        }
    }

    fn handle_hello(&mut self, frame: &[u8]) -> FrameResult {
        if self.got_hello {
            return self.transport_error(StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID, "double hello");
        }
        match TransportMessage::decode(frame) {
            Ok(TransportMessage::Hello(hello)) => {
                // Vendor quirk (Erba et al.): stacks diverge on how they
                // fail a nonzero protocol version. Vendors in the quirk
                // table answer with their taxonomy `ERR` and hang up;
                // everyone else ignores the field — the lenient default.
                if hello.protocol_version != 0 {
                    let vendor = ua_proto::fingerprint::vendor_of_application_name(
                        &self.core.config.application_name,
                    );
                    if let Some(status) = vendor.and_then(ua_proto::fingerprint::quirk_for_vendor) {
                        return FrameResult::Close(
                            TransportMessage::Error(ErrorMessage::new(
                                status,
                                "unsupported protocol version",
                            ))
                            .encode(),
                        );
                    }
                }
                self.got_hello = true;
                FrameResult::Reply(TransportMessage::Acknowledge(Acknowledge::default()).encode())
            }
            _ => self.transport_error(StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID, "bad hello"),
        }
    }

    fn handle_open(&mut self, frame: &[u8]) -> FrameResult {
        if !self.got_hello {
            return self
                .transport_error(StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID, "OPN before HEL");
        }
        let opened = match open_asymmetric(self.core.config.private_key.as_ref(), frame) {
            Ok(o) => o,
            Err(_) => {
                return self.transport_error(
                    StatusCode::BAD_SECURITY_CHECKS_FAILED,
                    "secure channel open failed",
                )
            }
        };
        let policy = match SecurityPolicy::from_uri(&opened.security_header.security_policy_uri) {
            Some(p) => p,
            None => {
                return self.transport_error(
                    StatusCode::BAD_SECURITY_POLICY_REJECTED,
                    "unknown security policy",
                )
            }
        };
        // Policy None is always accepted for discovery; other policies
        // must be offered by an endpoint.
        if policy != SecurityPolicy::None && !self.core.config.offers_policy(policy) {
            return self.transport_error(
                StatusCode::BAD_SECURITY_POLICY_REJECTED,
                "policy not offered",
            );
        }
        // Certificate-based admission control: with an empty trust list
        // the server rejects every foreign certificate (Table 2's
        // "Secure Channel" rejections).
        if policy != SecurityPolicy::None && self.core.config.reject_foreign_certs {
            return self.transport_error(
                StatusCode::BAD_CERTIFICATE_UNTRUSTED,
                "client certificate not trusted",
            );
        }

        let request = match ServiceBody::decode_all(&opened.opened.body) {
            Ok(ServiceBody::OpenSecureChannelRequest(r)) => r,
            _ => {
                return self.transport_error(
                    StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID,
                    "OPN without OpenSecureChannelRequest",
                )
            }
        };
        let mode = request.security_mode;
        // Consistency rules: policy None ⇔ mode None.
        let consistent = (policy == SecurityPolicy::None) == (mode == MessageSecurityMode::None)
            && mode != MessageSecurityMode::Invalid;
        if !consistent {
            return self.transport_error(
                StatusCode::BAD_SECURITY_MODE_REJECTED,
                "mode/policy mismatch",
            );
        }

        // Nonce handling and key derivation.
        let (server_nonce, local_keys, remote_keys) = if policy == SecurityPolicy::None {
            (None, None, None)
        } else {
            // ua-lint: allow(panic-hygiene) -- every policy except None has crypto parameters
            let params = policy_crypto(policy).expect("non-None policy has parameters");
            let client_nonce = match &request.client_nonce {
                Some(n) if n.len() == params.nonce_len => n.clone(),
                _ => return self.transport_error(StatusCode::BAD_NONCE_INVALID, "bad nonce"),
            };
            let server_nonce = self.core.random_bytes(params.nonce_len);
            // Client keys: P_SHA(secret=serverNonce, seed=clientNonce);
            // server keys: the reverse (Part 6 §6.7.5).
            let remote = derive_keys(policy, &server_nonce, &client_nonce);
            let local = derive_keys(policy, &client_nonce, &server_nonce);
            (Some(server_nonce), local, remote)
        };

        let channel_id = self.core.next_channel_id();
        let token_id = 1u32;
        let now = ua_types::UaDateTime::from_unix_seconds(0);
        let response = ServiceBody::OpenSecureChannelResponse(OpenSecureChannelResponse {
            response_header: ResponseHeader::good(request.request_header.request_handle, now),
            server_protocol_version: 0,
            security_token: ChannelSecurityToken {
                channel_id,
                token_id,
                created_at: now,
                revised_lifetime: 3_600_000,
            },
            server_nonce: server_nonce.clone(),
        });
        let body = response.encode_to_vec();

        let reply = seal_asymmetric(
            &mut self.rng,
            policy,
            self.core.config.private_key.as_ref(),
            self.core
                .config
                .certificate
                .as_ref()
                .map(|c| c.to_der())
                .as_deref(),
            opened.sender_certificate.as_ref(),
            channel_id,
            SequenceHeader {
                sequence_number: 1,
                request_id: opened.opened.sequence.request_id,
            },
            &body,
        );
        let reply = match reply {
            Ok(r) => r,
            Err(_) => {
                return self.transport_error(
                    StatusCode::BAD_SECURITY_CHECKS_FAILED,
                    "cannot seal response",
                )
            }
        };

        self.channel = Some(ChannelState {
            id: channel_id,
            token_id,
            policy,
            mode,
            local_keys,
            remote_keys,
            client_certificate: opened.sender_certificate,
            next_sequence: 2,
            reassembler: Reassembler::new(4096, 16 * 1024 * 1024),
        });
        FrameResult::Reply(reply)
    }

    fn handle_msg(&mut self, frame: &[u8]) -> FrameResult {
        // Decrypt/verify with the channel's client keys, reassemble,
        // dispatch, and seal the response with the server keys.
        let (policy, mode, channel_id) = match &self.channel {
            Some(c) => (c.policy, c.mode, c.id),
            None => {
                return self
                    .transport_error(StatusCode::BAD_SECURE_CHANNEL_ID_INVALID, "MSG before OPN")
            }
        };
        // ua-lint: allow(panic-hygiene) -- the MSG-before-OPN check above makes this infallible
        let channel = self.channel.as_mut().expect("checked above");
        let opened = match open_symmetric(policy, mode, channel.remote_keys.as_ref(), frame) {
            Ok(o) => o,
            Err(_) => {
                return self.transport_error(
                    StatusCode::BAD_SECURITY_CHECKS_FAILED,
                    "message security failure",
                )
            }
        };
        if opened.channel_id != channel_id {
            return self.transport_error(
                StatusCode::BAD_SECURE_CHANNEL_ID_INVALID,
                "wrong channel id",
            );
        }
        let assembled = match channel
            .reassembler
            .push(opened.chunk, opened.sequence, &opened.body)
        {
            Ok(Some(m)) => m,
            Ok(None) => return FrameResult::Silent,
            Err(_) => {
                return self
                    .transport_error(StatusCode::BAD_TCP_MESSAGE_TOO_LARGE, "reassembly failure")
            }
        };

        let request = match ServiceBody::decode_all(&assembled.body) {
            Ok(b) => b,
            Err(_) => {
                return self.transport_error(StatusCode::BAD_DECODING_ERROR, "undecodable body")
            }
        };
        if matches!(request, ServiceBody::CloseSecureChannelRequest(_)) {
            return FrameResult::Close(Vec::new());
        }

        let ctx = ChannelContext {
            policy,
            mode,
            client_certificate_der: channel.client_certificate.as_ref().map(|c| c.to_der()),
        };
        let response = self.core.handle_service(request, &ctx);
        let body = response.encode_to_vec();

        // ua-lint: allow(panic-hygiene) -- the channel was checked open at the top of this handler
        let channel = self.channel.as_mut().expect("still open");
        let first_seq = channel.next_sequence;
        let chunks = match chunk_message(
            policy,
            mode,
            channel.local_keys.as_ref(),
            channel.id,
            channel.token_id,
            first_seq,
            assembled.request_id,
            &body,
            CHUNK_BODY,
        ) {
            Ok(c) => c,
            Err(_) => {
                return self.transport_error(StatusCode::BAD_ENCODING_ERROR, "cannot seal response")
            }
        };
        channel.next_sequence = first_seq + chunks.len() as u32;
        FrameResult::Reply(chunks.concat())
    }

    fn transport_error(&self, status: StatusCode, reason: &str) -> FrameResult {
        FrameResult::Close(TransportMessage::Error(ErrorMessage::new(status, reason)).encode())
    }
}
