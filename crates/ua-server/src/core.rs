//! Shared server state and service dispatch.

use crate::config::ServerConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use ua_addrspace::{AddressSpace, UserClass};
use ua_crypto::HashAlgorithm;
use ua_proto::secure::hash_for;
use ua_proto::services::{
    ActivateSessionResponse, BrowseNextResponse, BrowseResponse, BrowseResult, CallMethodResult,
    CallResponse, CloseSessionResponse, CreateSessionResponse, FindServersResponse,
    GetEndpointsResponse, IdentityToken, ReadResponse, ReferenceDescription, ResponseHeader,
    ServiceBody, ServiceFault, SignatureData, WriteResponse,
};
use ua_types::{
    ApplicationDescription, ApplicationType, AttributeId, DataValue, EndpointDescription,
    ExpandedNodeId, LocalizedText, MessageSecurityMode, NodeId, SecurityPolicy, StatusCode,
    UaDateTime, UserTokenPolicy, UserTokenType, TRANSPORT_PROFILE_BINARY,
};

/// Security context a service call arrives under.
#[derive(Debug, Clone)]
pub struct ChannelContext {
    /// Channel policy.
    pub policy: SecurityPolicy,
    /// Channel mode.
    pub mode: MessageSecurityMode,
    /// The client certificate presented during OPN (if any).
    pub client_certificate_der: Option<Vec<u8>>,
}

struct Session {
    #[allow(dead_code)]
    session_id: NodeId,
    activated: Option<UserClass>,
    continuations: HashMap<Vec<u8>, Continuation>,
    next_continuation: u64,
}

struct Continuation {
    node: NodeId,
    offset: usize,
}

struct CoreState {
    next_session: u64,
    next_channel: u32,
    sessions: HashMap<NodeId, Session>,
}

/// Shared, thread-safe server core: configuration, address space, and
/// session state. Connections (crate-level [`crate::connection`]) hold an
/// `Arc<ServerCore>`.
pub struct ServerCore {
    /// Static configuration.
    pub config: ServerConfig,
    space: RwLock<AddressSpace>,
    state: Mutex<CoreState>,
    rng: Mutex<StdRng>,
    clock_unix_seconds: Mutex<i64>,
}

impl ServerCore {
    /// Creates a core with the given config and address space.
    pub fn new(config: ServerConfig, space: AddressSpace, seed: u64) -> Arc<Self> {
        Arc::new(ServerCore {
            config,
            space: RwLock::new(space),
            state: Mutex::new(CoreState {
                next_session: 1,
                next_channel: 1,
                sessions: HashMap::new(),
            }),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            clock_unix_seconds: Mutex::new(0),
        })
    }

    /// Lock-poisoning policy, centralized: every guard scope in this
    /// core is a short map/space operation, so a poisoned lock means a
    /// sibling request handler already panicked — propagating it is
    /// the only honest answer, and the four guard helpers below are
    /// the only places a lock is acquired.
    fn state(&self) -> std::sync::MutexGuard<'_, CoreState> {
        // ua-lint: allow(panic-hygiene) -- poisoned session table: a handler panicked; propagate it
        self.state.lock().unwrap()
    }

    fn space_read(&self) -> std::sync::RwLockReadGuard<'_, AddressSpace> {
        // ua-lint: allow(panic-hygiene) -- poisoned address space: a handler panicked; propagate it
        self.space.read().unwrap()
    }

    fn space_write(&self) -> std::sync::RwLockWriteGuard<'_, AddressSpace> {
        // ua-lint: allow(panic-hygiene) -- poisoned address space: a handler panicked; propagate it
        self.space.write().unwrap()
    }

    /// Updates the server's notion of wall-clock time (driven by the
    /// simulation's virtual clock).
    pub fn set_time(&self, unix_seconds: i64) {
        // ua-lint: allow(panic-hygiene) -- poisoned clock cell: a handler panicked; propagate it
        *self.clock_unix_seconds.lock().unwrap() = unix_seconds;
    }

    fn now(&self) -> UaDateTime {
        // ua-lint: allow(panic-hygiene) -- poisoned clock cell: a handler panicked; propagate it
        UaDateTime::from_unix_seconds(*self.clock_unix_seconds.lock().unwrap())
    }

    /// Read access to the address space.
    pub fn with_space<T>(&self, f: impl FnOnce(&AddressSpace) -> T) -> T {
        f(&self.space_read())
    }

    /// Write access to the address space (population evolution, writes).
    pub fn with_space_mut<T>(&self, f: impl FnOnce(&mut AddressSpace) -> T) -> T {
        f(&mut self.space_write())
    }

    /// Allocates a fresh secure-channel id.
    pub fn next_channel_id(&self) -> u32 {
        let mut st = self.state();
        let id = st.next_channel;
        st.next_channel += 1;
        id
    }

    /// Generates `len` random bytes (nonces, tokens).
    pub fn random_bytes(&self, len: usize) -> Vec<u8> {
        // ua-lint: allow(panic-hygiene) -- poisoned RNG: a handler panicked; propagate it
        let mut rng = self.rng.lock().unwrap();
        (0..len).map(|_| rng.gen()).collect()
    }

    /// The endpoint descriptions this server advertises — exactly what
    /// the paper's scanner records for Figure 3.
    pub fn endpoint_descriptions(&self) -> Vec<EndpointDescription> {
        let cert_der = self.config.certificate.as_ref().map(|c| c.to_der());
        let app = self.application_description();
        self.config
            .endpoints
            .iter()
            .map(|ep| EndpointDescription {
                endpoint_url: Some(self.config.endpoint_url.clone()),
                server: app.clone(),
                server_certificate: cert_der.clone(),
                security_mode: ep.mode,
                security_policy_uri: Some(ep.policy.uri().to_string()),
                user_identity_tokens: self
                    .config
                    .token_types
                    .iter()
                    .map(|&t| UserTokenPolicy::new(t))
                    .collect(),
                transport_profile_uri: Some(TRANSPORT_PROFILE_BINARY.to_string()),
                security_level: ep.policy.strength().saturating_add(ep.mode.strength()),
            })
            .collect()
    }

    /// The server's application description.
    pub fn application_description(&self) -> ApplicationDescription {
        ApplicationDescription {
            application_uri: Some(self.config.application_uri.clone()),
            product_uri: None,
            application_name: LocalizedText::new(self.config.application_name.clone()),
            application_type: if self.config.is_discovery_server {
                ApplicationType::DiscoveryServer
            } else {
                ApplicationType::Server
            },
            gateway_server_uri: None,
            discovery_profile_uri: None,
            discovery_urls: vec![self.config.endpoint_url.clone()],
        }
    }

    /// Handles one decoded service request, producing the response body.
    pub fn handle_service(&self, body: ServiceBody, ctx: &ChannelContext) -> ServiceBody {
        match body {
            ServiceBody::GetEndpointsRequest(req) => {
                ServiceBody::GetEndpointsResponse(GetEndpointsResponse {
                    response_header: ResponseHeader::good(
                        req.request_header.request_handle,
                        self.now(),
                    ),
                    endpoints: self.endpoint_descriptions(),
                })
            }
            ServiceBody::FindServersRequest(req) => {
                let mut servers = vec![self.application_description()];
                for url in &self.config.referenced_endpoints {
                    let mut app = ApplicationDescription::server(
                        format!("urn:referenced:{url}"),
                        "Referenced Server",
                    );
                    app.discovery_urls = vec![url.clone()];
                    servers.push(app);
                }
                ServiceBody::FindServersResponse(FindServersResponse {
                    response_header: ResponseHeader::good(
                        req.request_header.request_handle,
                        self.now(),
                    ),
                    servers,
                })
            }
            ServiceBody::CreateSessionRequest(req) => self.create_session(req, ctx),
            ServiceBody::ActivateSessionRequest(req) => self.activate_session(req),
            ServiceBody::CloseSessionRequest(req) => {
                let mut st = self.state();
                st.sessions.remove(&req.request_header.authentication_token);
                ServiceBody::CloseSessionResponse(CloseSessionResponse {
                    response_header: ResponseHeader::good(
                        req.request_header.request_handle,
                        self.now(),
                    ),
                })
            }
            ServiceBody::BrowseRequest(req) => self.browse(req),
            ServiceBody::BrowseNextRequest(req) => self.browse_next(req),
            ServiceBody::ReadRequest(req) => self.read(req),
            ServiceBody::WriteRequest(req) => self.write(req),
            ServiceBody::CallRequest(req) => self.call(req),
            other => {
                // Requests we do not serve and stray responses.
                let handle = request_handle_of(&other);
                ServiceBody::ServiceFault(ServiceFault::new(
                    handle,
                    self.now(),
                    StatusCode::BAD_SERVICE_UNSUPPORTED,
                ))
            }
        }
    }

    fn create_session(
        &self,
        req: ua_proto::services::CreateSessionRequest,
        ctx: &ChannelContext,
    ) -> ServiceBody {
        let handle = req.request_header.request_handle;
        if self.config.broken_session_config {
            // Faulty/incomplete endpoint configuration (§5.4): sessions
            // cannot be created although endpoints are advertised.
            return ServiceBody::ServiceFault(ServiceFault::new(
                handle,
                self.now(),
                StatusCode::BAD_INTERNAL_ERROR,
            ));
        }
        let mut st = self.state();
        let session_no = st.next_session;
        st.next_session += 1;
        drop(st);

        let auth_token = NodeId::opaque(0, self.random_bytes(16));
        let session_id = NodeId::numeric(1, session_no as u32);
        let server_nonce = self.random_bytes(32);

        // Sign clientCertificate||clientNonce when we can (proof of
        // private-key possession; §5.3 relies on this mechanic).
        let server_signature = match (&self.config.private_key, &req.client_certificate) {
            (Some(key), Some(client_cert)) => {
                let mut signed = client_cert.clone();
                if let Some(nonce) = &req.client_nonce {
                    signed.extend_from_slice(nonce);
                }
                let hash = ctx
                    .policy
                    .signature_hash()
                    .map(hash_for)
                    .unwrap_or(HashAlgorithm::Sha256);
                SignatureData {
                    algorithm: Some(format!("{:?}", hash)),
                    signature: Some(key.sign(hash, &signed)),
                }
            }
            _ => SignatureData::default(),
        };

        let mut st = self.state();
        st.sessions.insert(
            auth_token.clone(),
            Session {
                session_id: session_id.clone(),
                activated: None,
                continuations: HashMap::new(),
                next_continuation: 1,
            },
        );
        drop(st);

        ServiceBody::CreateSessionResponse(CreateSessionResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            session_id,
            authentication_token: auth_token,
            revised_session_timeout: 120_000.0,
            server_nonce: Some(server_nonce),
            server_certificate: self.config.certificate.as_ref().map(|c| c.to_der()),
            server_endpoints: self.endpoint_descriptions(),
            server_signature,
            max_request_message_size: 1 << 20,
        })
    }

    fn activate_session(&self, req: ua_proto::services::ActivateSessionRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        let token = &req.request_header.authentication_token;
        let mut st = self.state();
        let Some(session) = st.sessions.get_mut(token) else {
            return ServiceBody::ServiceFault(ServiceFault::new(
                handle,
                self.now(),
                StatusCode::BAD_SESSION_ID_INVALID,
            ));
        };

        let identity = match IdentityToken::from_extension_object(&req.user_identity_token) {
            Ok(t) => t,
            Err(_) => {
                return ServiceBody::ServiceFault(ServiceFault::new(
                    handle,
                    self.now(),
                    StatusCode::BAD_IDENTITY_TOKEN_INVALID,
                ))
            }
        };

        let user = match identity {
            IdentityToken::Anonymous { .. } => {
                if self.config.allows_anonymous() && !self.config.broken_session_config {
                    Some(UserClass::Anonymous)
                } else {
                    None
                }
            }
            IdentityToken::UserName {
                user_name,
                password,
                ..
            } => {
                let name = user_name.unwrap_or_default();
                let password = password
                    .map(|p| String::from_utf8_lossy(&p).into_owned())
                    .unwrap_or_default();
                if self.config.token_types.contains(&UserTokenType::UserName)
                    && self.config.check_credentials(&name, &password)
                {
                    Some(UserClass::Authenticated)
                } else {
                    None
                }
            }
            // No client certificates or issued tokens are trusted in the
            // fleet configuration (the scanner's self-signed identity is
            // exactly what operators should reject).
            IdentityToken::X509 { .. } | IdentityToken::Issued { .. } => None,
        };

        match user {
            Some(user) => {
                session.activated = Some(user);
                ServiceBody::ActivateSessionResponse(ActivateSessionResponse {
                    response_header: ResponseHeader::good(handle, self.now()),
                    server_nonce: Some(self.random_bytes(32)),
                    results: Vec::new(),
                })
            }
            None => ServiceBody::ServiceFault(ServiceFault::new(
                handle,
                self.now(),
                StatusCode::BAD_IDENTITY_TOKEN_REJECTED,
            )),
        }
    }

    /// Resolves the active user of the session owning `token`.
    fn session_user(&self, token: &NodeId) -> Result<UserClass, StatusCode> {
        let st = self.state();
        match st.sessions.get(token) {
            None => Err(StatusCode::BAD_SESSION_ID_INVALID),
            Some(Session {
                activated: None, ..
            }) => Err(StatusCode::BAD_SESSION_NOT_ACTIVATED),
            Some(Session {
                activated: Some(user),
                ..
            }) => Ok(user.clone()),
        }
    }

    fn browse(&self, req: ua_proto::services::BrowseRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        let user = match self.session_user(&req.request_header.authentication_token) {
            Ok(u) => u,
            Err(status) => {
                return ServiceBody::ServiceFault(ServiceFault::new(handle, self.now(), status))
            }
        };
        let _ = user; // browsing is structure-only; rights apply to attributes
        let cap = if req.requested_max_references_per_node == 0 {
            self.config.max_references_per_browse as usize
        } else {
            (req.requested_max_references_per_node as usize)
                .min(self.config.max_references_per_browse as usize)
        };

        let space = self.space_read();
        let mut results = Vec::with_capacity(req.nodes_to_browse.len());
        let mut pending: Vec<(NodeId, usize)> = Vec::new();
        for desc in &req.nodes_to_browse {
            let outcome = space.browse(&desc.node_id);
            if outcome.status.is_bad() {
                results.push(BrowseResult {
                    status_code: outcome.status,
                    continuation_point: None,
                    references: Vec::new(),
                });
                continue;
            }
            let refs: Vec<ReferenceDescription> = outcome
                .references
                .iter()
                .filter_map(|r| reference_description(&space, r))
                .collect();
            let (page, continuation) = if refs.len() > cap {
                (refs[..cap].to_vec(), Some((desc.node_id.clone(), cap)))
            } else {
                (refs, None)
            };
            let continuation_point = continuation.map(|(node, offset)| {
                pending.push((node, offset));
                // Placeholder, patched below once we can borrow state.
                vec![0u8; 8]
            });
            results.push(BrowseResult {
                status_code: StatusCode::GOOD,
                continuation_point,
                references: page,
            });
        }
        drop(space);

        // Register continuation points (needs the session lock).
        if !pending.is_empty() {
            let mut st = self.state();
            if let Some(session) = st
                .sessions
                .get_mut(&req.request_header.authentication_token)
            {
                let mut iter = pending.into_iter();
                for result in results.iter_mut() {
                    if result.continuation_point.is_some() {
                        // ua-lint: allow(panic-hygiene) -- one pending entry was pushed per continuation placeholder
                        let (node, offset) = iter.next().expect("pending matches placeholders");
                        let id = session.next_continuation;
                        session.next_continuation += 1;
                        let cp = id.to_le_bytes().to_vec();
                        session
                            .continuations
                            .insert(cp.clone(), Continuation { node, offset });
                        result.continuation_point = Some(cp);
                    }
                }
            }
        }

        ServiceBody::BrowseResponse(BrowseResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            results,
        })
    }

    fn browse_next(&self, req: ua_proto::services::BrowseNextRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        if let Err(status) = self.session_user(&req.request_header.authentication_token) {
            return ServiceBody::ServiceFault(ServiceFault::new(handle, self.now(), status));
        }
        let cap = self.config.max_references_per_browse as usize;
        let space = self.space_read();
        let mut st = self.state();
        let Some(session) = st
            .sessions
            .get_mut(&req.request_header.authentication_token)
        else {
            return ServiceBody::ServiceFault(ServiceFault::new(
                handle,
                self.now(),
                StatusCode::BAD_SESSION_ID_INVALID,
            ));
        };

        let mut results = Vec::with_capacity(req.continuation_points.len());
        for cp in &req.continuation_points {
            let Some(cont) = session.continuations.remove(cp) else {
                results.push(BrowseResult {
                    status_code: StatusCode::BAD_CONTINUATION_POINT_INVALID,
                    continuation_point: None,
                    references: Vec::new(),
                });
                continue;
            };
            if req.release_continuation_points {
                results.push(BrowseResult {
                    status_code: StatusCode::GOOD,
                    continuation_point: None,
                    references: Vec::new(),
                });
                continue;
            }
            let outcome = space.browse(&cont.node);
            let refs: Vec<ReferenceDescription> = outcome
                .references
                .iter()
                .filter_map(|r| reference_description(&space, r))
                .collect();
            let remaining = &refs[cont.offset.min(refs.len())..];
            if remaining.len() > cap {
                let id = session.next_continuation;
                session.next_continuation += 1;
                let new_cp = id.to_le_bytes().to_vec();
                session.continuations.insert(
                    new_cp.clone(),
                    Continuation {
                        node: cont.node.clone(),
                        offset: cont.offset + cap,
                    },
                );
                results.push(BrowseResult {
                    status_code: StatusCode::GOOD,
                    continuation_point: Some(new_cp),
                    references: remaining[..cap].to_vec(),
                });
            } else {
                results.push(BrowseResult {
                    status_code: StatusCode::GOOD,
                    continuation_point: None,
                    references: remaining.to_vec(),
                });
            }
        }

        ServiceBody::BrowseNextResponse(BrowseNextResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            results,
        })
    }

    fn read(&self, req: ua_proto::services::ReadRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        let user = match self.session_user(&req.request_header.authentication_token) {
            Ok(u) => u,
            Err(status) => {
                return ServiceBody::ServiceFault(ServiceFault::new(handle, self.now(), status))
            }
        };
        let space = self.space_read();
        let results = req
            .nodes_to_read
            .iter()
            .map(|rv| match AttributeId::from_id(rv.attribute_id) {
                None => DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID),
                Some(attr) => space.read_attribute(&rv.node_id, attr, &user),
            })
            .collect();
        ServiceBody::ReadResponse(ReadResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            results,
        })
    }

    fn write(&self, req: ua_proto::services::WriteRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        let user = match self.session_user(&req.request_header.authentication_token) {
            Ok(u) => u,
            Err(status) => {
                return ServiceBody::ServiceFault(ServiceFault::new(handle, self.now(), status))
            }
        };
        let mut space = self.space_write();
        let results = req
            .nodes_to_write
            .iter()
            .map(|wv| {
                if wv.attribute_id != AttributeId::Value.id() {
                    return StatusCode::BAD_ATTRIBUTE_ID_INVALID;
                }
                match &wv.value.value {
                    None => StatusCode::BAD_ATTRIBUTE_ID_INVALID,
                    Some(v) => space.write_value(&wv.node_id, v.clone(), &user),
                }
            })
            .collect();
        ServiceBody::WriteResponse(WriteResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            results,
        })
    }

    fn call(&self, req: ua_proto::services::CallRequest) -> ServiceBody {
        let handle = req.request_header.request_handle;
        let user = match self.session_user(&req.request_header.authentication_token) {
            Ok(u) => u,
            Err(status) => {
                return ServiceBody::ServiceFault(ServiceFault::new(handle, self.now(), status))
            }
        };
        let space = self.space_read();
        let results = req
            .methods_to_call
            .iter()
            .map(|call| CallMethodResult {
                status_code: space.call_method(&call.method_id, &user),
                input_argument_results: Vec::new(),
                output_arguments: Vec::new(),
            })
            .collect();
        ServiceBody::CallResponse(CallResponse {
            response_header: ResponseHeader::good(handle, self.now()),
            results,
        })
    }
}

/// Builds the wire reference description for one address-space reference.
fn reference_description(
    space: &AddressSpace,
    reference: &ua_addrspace::Reference,
) -> Option<ReferenceDescription> {
    let target = space.get(&reference.target)?;
    Some(ReferenceDescription {
        reference_type_id: reference.reference_type.clone(),
        is_forward: true,
        node_id: ExpandedNodeId::local(target.node_id.clone()),
        browse_name: target.browse_name.clone(),
        display_name: target.display_name.clone(),
        node_class: target.node_class,
        type_definition: ExpandedNodeId::local(target.type_definition.clone()),
    })
}

/// Extracts a request handle for faulting unsupported messages.
fn request_handle_of(body: &ServiceBody) -> u32 {
    match body {
        ServiceBody::CloseSecureChannelRequest(r) => r.request_header.request_handle,
        ServiceBody::OpenSecureChannelRequest(r) => r.request_header.request_handle,
        _ => 0,
    }
}
