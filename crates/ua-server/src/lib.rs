//! # ua-server
//!
//! A full OPC UA server over the simulated network: endpoints, secure
//! channels, sessions, authentication, per-user access control — plus the
//! misconfiguration knobs the study observes in the wild (certificate
//! mismatch and reuse, foreign-certificate rejection, broken session
//! configs, discovery-only servers).
//!
//! * [`config::ServerConfig`] — everything an operator can get wrong;
//! * [`core::ServerCore`] — shared state and service dispatch;
//! * [`connection`] — the per-connection byte-level state machine
//!   plugged into [`netsim::Service`];
//! * [`tls`] — the `uat-tls` wrapper planting the TLS-fronted
//!   deployments of "Missed Opportunities" (expired or absent wrapper
//!   certificates over an unchanged inner server).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod connection;
pub mod core;
pub mod tls;

pub use config::{EndpointConfig, ServerConfig, UserAccount};
pub use connection::{ServerConnection, UaServerService};
pub use core::{ChannelContext, ServerCore};
pub use tls::{TlsWrapConn, TlsWrapService};

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Ipv4, LoopbackStream, Service, VirtualClock};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_addrspace::{NodeAccess, SpaceBuilder};
    use ua_crypto::{CertificateBuilder, DistinguishedName, HashAlgorithm, RsaPrivateKey};
    use ua_proto::secure::{open_asymmetric, open_symmetric, SequenceHeader};
    use ua_proto::services::*;
    use ua_proto::transport::{Hello, TransportMessage};
    use ua_types::*;

    fn cert_key(seed: u64, uri: &str) -> (ua_crypto::Certificate, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = RsaPrivateKey::generate(&mut rng, 256, 2048);
        let cert = CertificateBuilder::new(DistinguishedName::new("srv", "Acme"))
            .application_uri(uri)
            .self_signed(HashAlgorithm::Sha256, &key);
        (cert, key)
    }

    fn open_server(config: ServerConfig) -> LoopbackStream {
        let mut b = SpaceBuilder::new(&["urn:acme:plant"], "2.0");
        let f = b.folder(None, "Plant");
        b.variable(
            &f,
            "m3InflowPerHour",
            Variant::Double(13.5),
            NodeAccess::read_only(),
        );
        let space = b.finish();
        let core = ServerCore::new(config, space, 7);
        let service = UaServerService::new(core, 1);
        let conn = service.open_connection(Ipv4::new(1, 2, 3, 4));
        LoopbackStream::new(VirtualClock::starting_at(0), conn)
    }

    fn wide_open_stream() -> LoopbackStream {
        open_server(ServerConfig::wide_open(
            "urn:acme:dev1",
            "opc.tcp://h:4840/",
        ))
    }

    fn hello(stream: &mut LoopbackStream) {
        stream
            .send(&TransportMessage::Hello(Hello::default()).encode())
            .unwrap();
        match TransportMessage::decode(&stream.recv().unwrap().unwrap()).unwrap() {
            TransportMessage::Acknowledge(_) => {}
            other => panic!("expected ACK, got {other:?}"),
        }
    }

    /// Opens an insecure channel, returning the channel id.
    fn open_none_channel(stream: &mut LoopbackStream) -> u32 {
        let req = ServiceBody::OpenSecureChannelRequest(OpenSecureChannelRequest {
            request_header: RequestHeader::new(NodeId::NULL, 1, UaDateTime::NULL),
            client_protocol_version: 0,
            request_type: SecurityTokenRequestType::Issue,
            security_mode: MessageSecurityMode::None,
            client_nonce: None,
            requested_lifetime: 3_600_000,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let raw = ua_proto::secure::seal_asymmetric(
            &mut rng,
            SecurityPolicy::None,
            None,
            None,
            None,
            0,
            SequenceHeader {
                sequence_number: 1,
                request_id: 1,
            },
            &req.encode_to_vec(),
        )
        .unwrap();
        stream.send(&raw).unwrap();
        let reply = stream.recv().unwrap().unwrap();
        let opened = open_asymmetric(None, &reply).unwrap();
        match ServiceBody::decode_all(&opened.opened.body).unwrap() {
            ServiceBody::OpenSecureChannelResponse(r) => r.security_token.channel_id,
            other => panic!("expected OPN response, got {other:?}"),
        }
    }

    fn send_service(
        stream: &mut LoopbackStream,
        channel_id: u32,
        seq: u32,
        body: ServiceBody,
    ) -> ServiceBody {
        let raw = ua_proto::secure::seal_symmetric(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            ua_proto::transport::MessageType::Msg,
            ua_proto::transport::ChunkKind::Final,
            channel_id,
            1,
            SequenceHeader {
                sequence_number: seq,
                request_id: seq,
            },
            &body.encode_to_vec(),
        )
        .unwrap();
        stream.send(&raw).unwrap();
        let reply = stream.recv().unwrap().unwrap();
        let opened = open_symmetric(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            &reply,
        )
        .unwrap();
        ServiceBody::decode_all(&opened.body).unwrap()
    }

    #[test]
    fn hello_ack() {
        let mut s = wide_open_stream();
        hello(&mut s);
    }

    #[test]
    fn garbage_yields_transport_error_and_close() {
        let mut s = wide_open_stream();
        s.send(b"GET / HTTP/1.1\r\n\r\nxxxxxxxxxxxxxxxx").unwrap();
        let reply = s.recv().unwrap().unwrap();
        match TransportMessage::decode(&reply).unwrap() {
            TransportMessage::Error(e) => {
                assert_eq!(e.error, StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID)
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        assert!(s.is_closed());
    }

    #[test]
    fn get_endpoints_over_none_channel() {
        let mut s = wide_open_stream();
        hello(&mut s);
        let ch = open_none_channel(&mut s);
        let resp = send_service(
            &mut s,
            ch,
            2,
            ServiceBody::GetEndpointsRequest(GetEndpointsRequest {
                request_header: RequestHeader::new(NodeId::NULL, 2, UaDateTime::NULL),
                endpoint_url: Some("opc.tcp://h:4840/".into()),
                locale_ids: vec![],
                profile_uris: vec![],
            }),
        );
        match resp {
            ServiceBody::GetEndpointsResponse(r) => {
                assert_eq!(r.endpoints.len(), 1);
                let ep = &r.endpoints[0];
                assert_eq!(ep.security_mode, MessageSecurityMode::None);
                assert_eq!(ep.security_policy(), Some(SecurityPolicy::None));
                assert!(ep.allows_anonymous());
                assert_eq!(ep.server.application_uri.as_deref(), Some("urn:acme:dev1"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anonymous_session_browse_read() {
        let mut s = wide_open_stream();
        hello(&mut s);
        let ch = open_none_channel(&mut s);

        // CreateSession.
        let resp = send_service(
            &mut s,
            ch,
            2,
            ServiceBody::CreateSessionRequest(CreateSessionRequest {
                request_header: RequestHeader::new(NodeId::NULL, 2, UaDateTime::NULL),
                client_description: ApplicationDescription::server("urn:scanner", "scan"),
                server_uri: None,
                endpoint_url: Some("opc.tcp://h:4840/".into()),
                session_name: Some("s".into()),
                client_nonce: Some(vec![1; 32]),
                client_certificate: None,
                requested_session_timeout: 60_000.0,
                max_response_message_size: 1 << 20,
            }),
        );
        let token = match resp {
            ServiceBody::CreateSessionResponse(r) => r.authentication_token,
            other => panic!("unexpected {other:?}"),
        };

        // ActivateSession (anonymous).
        let resp = send_service(
            &mut s,
            ch,
            3,
            ServiceBody::ActivateSessionRequest(ActivateSessionRequest {
                request_header: RequestHeader::new(token.clone(), 3, UaDateTime::NULL),
                client_signature: SignatureData::default(),
                locale_ids: vec![],
                user_identity_token: IdentityToken::Anonymous {
                    policy_id: Some("anon".into()),
                }
                .to_extension_object(),
                user_token_signature: SignatureData::default(),
            }),
        );
        assert!(matches!(resp, ServiceBody::ActivateSessionResponse(_)));

        // Browse Objects.
        let resp = send_service(
            &mut s,
            ch,
            4,
            ServiceBody::BrowseRequest(BrowseRequest {
                request_header: RequestHeader::new(token.clone(), 4, UaDateTime::NULL),
                view: ViewDescription::default(),
                requested_max_references_per_node: 100,
                nodes_to_browse: vec![BrowseDescription::all_forward(NodeId::numeric(
                    0,
                    ua_addrspace::ids::OBJECTS_FOLDER,
                ))],
            }),
        );
        let refs = match resp {
            ServiceBody::BrowseResponse(r) => r.results[0].references.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // Server object + Plant folder.
        assert_eq!(refs.len(), 2);

        // Read the inflow variable.
        let resp = send_service(
            &mut s,
            ch,
            5,
            ServiceBody::ReadRequest(ReadRequest {
                request_header: RequestHeader::new(token, 5, UaDateTime::NULL),
                max_age: 0.0,
                timestamps_to_return: 3,
                nodes_to_read: vec![ReadValueId::new(
                    NodeId::string(1, "m3InflowPerHour"),
                    AttributeId::Value.id(),
                )],
            }),
        );
        match resp {
            ServiceBody::ReadResponse(r) => {
                assert_eq!(r.results[0].value, Some(Variant::Double(13.5)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anonymous_rejected_when_disabled() {
        let (cert, key) = cert_key(5, "urn:acme:secure");
        let mut cfg = ServerConfig::recommended("urn:acme:secure", "opc.tcp://h:4840/", cert, key);
        // Allow a None endpoint so the test can talk without crypto, but
        // keep anonymous auth disabled.
        cfg.endpoints.push(EndpointConfig::none());
        let mut s = open_server(cfg);
        hello(&mut s);
        let ch = open_none_channel(&mut s);
        let resp = send_service(
            &mut s,
            ch,
            2,
            ServiceBody::CreateSessionRequest(CreateSessionRequest {
                request_header: RequestHeader::new(NodeId::NULL, 2, UaDateTime::NULL),
                client_description: ApplicationDescription::server("urn:scanner", "scan"),
                server_uri: None,
                endpoint_url: Some("opc.tcp://h:4840/".into()),
                session_name: None,
                client_nonce: Some(vec![1; 32]),
                client_certificate: None,
                requested_session_timeout: 60_000.0,
                max_response_message_size: 1 << 20,
            }),
        );
        let token = match resp {
            ServiceBody::CreateSessionResponse(r) => r.authentication_token,
            other => panic!("unexpected {other:?}"),
        };
        let resp = send_service(
            &mut s,
            ch,
            3,
            ServiceBody::ActivateSessionRequest(ActivateSessionRequest {
                request_header: RequestHeader::new(token, 3, UaDateTime::NULL),
                client_signature: SignatureData::default(),
                locale_ids: vec![],
                user_identity_token: IdentityToken::Anonymous {
                    policy_id: Some("anon".into()),
                }
                .to_extension_object(),
                user_token_signature: SignatureData::default(),
            }),
        );
        match resp {
            ServiceBody::ServiceFault(f) => assert_eq!(
                f.response_header.service_result,
                StatusCode::BAD_IDENTITY_TOKEN_REJECTED
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn browse_requires_activated_session() {
        let mut s = wide_open_stream();
        hello(&mut s);
        let ch = open_none_channel(&mut s);
        let resp = send_service(
            &mut s,
            ch,
            2,
            ServiceBody::BrowseRequest(BrowseRequest {
                request_header: RequestHeader::new(NodeId::NULL, 2, UaDateTime::NULL),
                view: ViewDescription::default(),
                requested_max_references_per_node: 10,
                nodes_to_browse: vec![BrowseDescription::all_forward(NodeId::numeric(0, 85))],
            }),
        );
        match resp {
            ServiceBody::ServiceFault(f) => assert_eq!(
                f.response_header.service_result,
                StatusCode::BAD_SESSION_ID_INVALID
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn secure_policy_rejected_when_not_offered() {
        // wide-open server offers only None; an OPN with Basic256Sha256
        // must be rejected at the channel level.
        let (client_cert, client_key) = cert_key(9, "urn:scanner");
        let (server_cert_for_encrypt, _server_key) = cert_key(10, "urn:other");

        let mut s = wide_open_stream();
        hello(&mut s);
        let req = ServiceBody::OpenSecureChannelRequest(OpenSecureChannelRequest {
            request_header: RequestHeader::new(NodeId::NULL, 1, UaDateTime::NULL),
            client_protocol_version: 0,
            request_type: SecurityTokenRequestType::Issue,
            security_mode: MessageSecurityMode::SignAndEncrypt,
            client_nonce: Some(vec![1; 32]),
            requested_lifetime: 3_600_000,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let raw = ua_proto::secure::seal_asymmetric(
            &mut rng,
            SecurityPolicy::Basic256Sha256,
            Some(&client_key),
            Some(&client_cert.to_der()),
            Some(&server_cert_for_encrypt),
            0,
            SequenceHeader {
                sequence_number: 1,
                request_id: 1,
            },
            &req.encode_to_vec(),
        )
        .unwrap();
        s.send(&raw).unwrap();
        let reply = s.recv().unwrap().unwrap();
        match TransportMessage::decode(&reply).unwrap() {
            TransportMessage::Error(e) => {
                // Either the policy is refused outright or unsealing
                // failed because the server lacks a key: both are
                // channel-level rejections.
                assert!(e.error.is_bad());
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        assert!(s.is_closed());
    }
}
