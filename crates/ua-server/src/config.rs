//! Server configuration — including every *misconfiguration* knob the
//! study observes in the wild.
//!
//! The population generator (crate `population`) instantiates thousands
//! of these; each knob corresponds to a configuration deficit class from
//! the paper (§5, Figure 8).

use ua_crypto::{Certificate, RsaPrivateKey};
use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType};

/// One offered endpoint: a (mode, policy) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointConfig {
    /// Message security mode.
    pub mode: MessageSecurityMode,
    /// Security policy.
    pub policy: SecurityPolicy,
}

impl EndpointConfig {
    /// Convenience constructor.
    pub fn new(mode: MessageSecurityMode, policy: SecurityPolicy) -> Self {
        EndpointConfig { mode, policy }
    }

    /// The completely insecure endpoint (mode None / policy None).
    pub fn none() -> Self {
        EndpointConfig {
            mode: MessageSecurityMode::None,
            policy: SecurityPolicy::None,
        }
    }
}

/// A username/password entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserAccount {
    /// User name.
    pub name: String,
    /// Password (plaintext — simulation only).
    pub password: String,
}

/// Full server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Application URI (`urn:<vendor>:...`) — the field the paper
    /// clusters manufacturers by (§4).
    pub application_uri: String,
    /// Human-readable application name.
    pub application_name: String,
    /// Endpoint URL clients should use.
    pub endpoint_url: String,
    /// Offered (mode, policy) endpoints.
    pub endpoints: Vec<EndpointConfig>,
    /// Offered identity token types.
    pub token_types: Vec<UserTokenType>,
    /// The application-instance certificate served to clients. May
    /// deliberately *mismatch* the announced policies (§5.2's 409
    /// too-weak certificates) or be shared across hosts (§5.3).
    pub certificate: Option<Certificate>,
    /// Private key matching [`Self::certificate`].
    pub private_key: Option<RsaPrivateKey>,
    /// Username database for `cred.` authentication.
    pub users: Vec<UserAccount>,
    /// Reject secure-channel establishment for unknown client
    /// certificates (the "Secure Channel" rejections of Table 2).
    pub reject_foreign_certs: bool,
    /// Faulty/incomplete endpoint configuration: anonymous access is
    /// *advertised* but session establishment is rejected anyway (§5.4
    /// observed such hosts; they count as "Authentication" rejections).
    pub broken_session_config: bool,
    /// This host is a discovery server (LDS): it answers FindServers
    /// with references to other hosts and has no own address space
    /// worth probing.
    pub is_discovery_server: bool,
    /// Discovery URLs announced via FindServers (may point to other
    /// hosts and non-default ports — followed by the scanner from
    /// 2020-05-04 on).
    pub referenced_endpoints: Vec<String>,
    /// Reported `SoftwareVersion` (§5.5 update detection).
    pub software_version: String,
    /// Maximum references returned per Browse before a continuation
    /// point is issued.
    pub max_references_per_browse: u32,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("application_uri", &self.application_uri)
            .field("endpoints", &self.endpoints)
            .field("token_types", &self.token_types)
            .field("has_certificate", &self.certificate.is_some())
            .field("reject_foreign_certs", &self.reject_foreign_certs)
            .field("broken_session_config", &self.broken_session_config)
            .field("is_discovery_server", &self.is_discovery_server)
            .finish_non_exhaustive()
    }
}

impl ServerConfig {
    /// A minimal secure-by-default configuration (what the
    /// recommendations ask for): Sign+SignAndEncrypt on Basic256Sha256,
    /// username auth only.
    pub fn recommended(
        application_uri: impl Into<String>,
        endpoint_url: impl Into<String>,
        certificate: Certificate,
        private_key: RsaPrivateKey,
    ) -> Self {
        ServerConfig {
            application_uri: application_uri.into(),
            application_name: "OPC UA Server".into(),
            endpoint_url: endpoint_url.into(),
            endpoints: vec![
                EndpointConfig::new(MessageSecurityMode::Sign, SecurityPolicy::Basic256Sha256),
                EndpointConfig::new(
                    MessageSecurityMode::SignAndEncrypt,
                    SecurityPolicy::Basic256Sha256,
                ),
            ],
            token_types: vec![UserTokenType::UserName],
            certificate: Some(certificate),
            private_key: Some(private_key),
            users: vec![UserAccount {
                name: "operator".into(),
                password: "correct horse battery staple".into(),
            }],
            reject_foreign_certs: false,
            broken_session_config: false,
            is_discovery_server: false,
            referenced_endpoints: Vec::new(),
            software_version: "1.0.0".into(),
            max_references_per_browse: 64,
        }
    }

    /// The insecure-everything configuration the paper found on 24 % of
    /// hosts: only mode/policy None, anonymous access enabled.
    pub fn wide_open(application_uri: impl Into<String>, endpoint_url: impl Into<String>) -> Self {
        ServerConfig {
            application_uri: application_uri.into(),
            application_name: "OPC UA Server".into(),
            endpoint_url: endpoint_url.into(),
            endpoints: vec![EndpointConfig::none()],
            token_types: vec![UserTokenType::Anonymous, UserTokenType::UserName],
            certificate: None,
            private_key: None,
            users: Vec::new(),
            reject_foreign_certs: false,
            broken_session_config: false,
            is_discovery_server: false,
            referenced_endpoints: Vec::new(),
            software_version: "1.0.0".into(),
            max_references_per_browse: 64,
        }
    }

    /// True if any endpoint uses the given policy.
    pub fn offers_policy(&self, policy: SecurityPolicy) -> bool {
        self.endpoints.iter().any(|e| e.policy == policy)
    }

    /// True if any endpoint uses the given mode.
    pub fn offers_mode(&self, mode: MessageSecurityMode) -> bool {
        self.endpoints.iter().any(|e| e.mode == mode)
    }

    /// True if the anonymous token type is offered.
    pub fn allows_anonymous(&self) -> bool {
        self.token_types.contains(&UserTokenType::Anonymous)
    }

    /// Checks a username/password pair.
    pub fn check_credentials(&self, user: &str, password: &str) -> bool {
        self.users
            .iter()
            .any(|u| u.name == user && u.password == password)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_crypto::{CertificateBuilder, DistinguishedName, HashAlgorithm};

    fn cert_and_key() -> (Certificate, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(1);
        let key = RsaPrivateKey::generate(&mut rng, 256, 2048);
        let cert = CertificateBuilder::new(DistinguishedName::new("srv", "Acme"))
            .application_uri("urn:acme:srv")
            .self_signed(HashAlgorithm::Sha256, &key);
        (cert, key)
    }

    #[test]
    fn recommended_is_secure() {
        let (cert, key) = cert_and_key();
        let cfg = ServerConfig::recommended("urn:acme:srv", "opc.tcp://h:4840/", cert, key);
        assert!(!cfg.allows_anonymous());
        assert!(!cfg.offers_mode(MessageSecurityMode::None));
        assert!(cfg.offers_policy(SecurityPolicy::Basic256Sha256));
        assert!(!cfg.offers_policy(SecurityPolicy::Basic128Rsa15));
    }

    #[test]
    fn wide_open_is_deficient() {
        let cfg = ServerConfig::wide_open("urn:x", "opc.tcp://h:4840/");
        assert!(cfg.allows_anonymous());
        assert!(cfg.offers_mode(MessageSecurityMode::None));
        assert!(cfg.offers_policy(SecurityPolicy::None));
        assert!(cfg.certificate.is_none());
    }

    #[test]
    fn credentials_checked() {
        let (cert, key) = cert_and_key();
        let cfg = ServerConfig::recommended("urn:a", "opc.tcp://h:4840/", cert, key);
        assert!(cfg.check_credentials("operator", "correct horse battery staple"));
        assert!(!cfg.check_credentials("operator", "wrong"));
        assert!(!cfg.check_credentials("admin", "correct horse battery staple"));
    }
}
