//! The configuration-deficit taxonomy and the per-host rules.
//!
//! Each [`Deficit`] is one of the paper's finding categories (§5):
//! deprecated policies, missing encryption, certificate hygiene,
//! anonymous access, and actually-accessible data. Cross-host deficits
//! (certificate reuse, shared primes) are detected population-wide in
//! [`crate::report`]; everything else is a pure function of one
//! [`ScanRecord`].

use scanner::{ScanRecord, SessionOutcome};
use std::collections::BTreeSet;
use ua_crypto::HashAlgorithm;
use ua_types::{MessageSecurityMode, PolicyClass, PolicyHash};

/// One security-configuration deficit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Deficit {
    /// A deprecated policy (Basic128Rsa15 / Basic256) is offered.
    DeprecatedPolicy,
    /// An endpoint with security mode `None` is offered — traffic can be
    /// neither authenticated nor encrypted on it.
    NoneModeOffered,
    /// *Only* mode `None` is offered: no secure communication possible
    /// at all (24 % of the paper's hosts).
    OnlyNoneMode,
    /// The served certificate is self-signed (no verifiable identity
    /// chain; 99 % in the wild).
    SelfSignedCertificate,
    /// The served certificate is outside its validity window at scan
    /// time.
    ExpiredCertificate,
    /// The certificate is too weak for an advertised policy: its
    /// signature hash or key length is below what the policy permits
    /// (the paper's 409 too-weak certificates, §5.2).
    CertificateTooWeak,
    /// The same certificate is served by multiple hosts (§5.3).
    ReusedCertificate,
    /// The RSA modulus shares a prime factor with another host's key
    /// (batch-GCD finding; the paper found none in the wild).
    SharedPrimeKey,
    /// Anonymous authentication is advertised — no user authentication
    /// required (50 % of the paper's servers).
    AnonymousAccess,
    /// Anonymous access is advertised but sessions fail anyway: a
    /// faulty/incomplete endpoint configuration (§5.4).
    BrokenSessionConfig,
    /// An anonymous session succeeded and process data was readable.
    DataReadable,
    /// An anonymous session succeeded and variables were *writable* —
    /// the paper's worst case (direct process manipulation).
    DataWritable,
    /// An anonymous session succeeded and methods were executable.
    MethodsExecutable,
    /// A TLS-wrapped host (uat-tls) completed its TLS handshake but
    /// still advertises anonymous authentication inside the tunnel —
    /// transport encryption without user authentication ("Missed
    /// Opportunities", §5).
    TlsButAnonymous,
    /// A TLS-wrapped host presented a certificate outside its validity
    /// window in the TLS prologue itself.
    TlsExpiredCert,
}

impl Deficit {
    /// All deficits in report order.
    pub const ALL: [Deficit; 15] = [
        Deficit::OnlyNoneMode,
        Deficit::NoneModeOffered,
        Deficit::DeprecatedPolicy,
        Deficit::SelfSignedCertificate,
        Deficit::ExpiredCertificate,
        Deficit::CertificateTooWeak,
        Deficit::ReusedCertificate,
        Deficit::SharedPrimeKey,
        Deficit::AnonymousAccess,
        Deficit::BrokenSessionConfig,
        Deficit::DataReadable,
        Deficit::DataWritable,
        Deficit::MethodsExecutable,
        Deficit::TlsButAnonymous,
        Deficit::TlsExpiredCert,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Deficit::OnlyNoneMode => "only mode None",
            Deficit::NoneModeOffered => "mode None offered",
            Deficit::DeprecatedPolicy => "deprecated policy",
            Deficit::SelfSignedCertificate => "self-signed cert",
            Deficit::ExpiredCertificate => "expired cert",
            Deficit::CertificateTooWeak => "cert too weak for policy",
            Deficit::ReusedCertificate => "cert reused across hosts",
            Deficit::SharedPrimeKey => "key shares prime factor",
            Deficit::AnonymousAccess => "anonymous access",
            Deficit::BrokenSessionConfig => "broken session config",
            Deficit::DataReadable => "data readable anonymously",
            Deficit::DataWritable => "data writable anonymously",
            Deficit::MethodsExecutable => "methods executable anonymously",
            Deficit::TlsButAnonymous => "TLS but anonymous",
            Deficit::TlsExpiredCert => "TLS cert expired",
        }
    }
}

fn hash_to_policy_hash(h: HashAlgorithm) -> PolicyHash {
    match h {
        HashAlgorithm::Md5 => PolicyHash::Md5,
        HashAlgorithm::Sha1 => PolicyHash::Sha1,
        HashAlgorithm::Sha256 => PolicyHash::Sha256,
    }
}

/// Applies every *per-host* rule to one record. Cross-host deficits
/// ([`Deficit::ReusedCertificate`], [`Deficit::SharedPrimeKey`]) are
/// added by the population-level pass.
pub fn host_deficits(record: &ScanRecord) -> BTreeSet<Deficit> {
    let mut out = BTreeSet::new();

    // --- TLS-wrapper rules ("Missed Opportunities"). ---
    if let Some(tls) = record.uat_tls() {
        if tls.tls_ok {
            if tls.cert_expired {
                out.insert(Deficit::TlsExpiredCert);
            }
            if record.advertises_anonymous() {
                out.insert(Deficit::TlsButAnonymous);
            }
        }
    }

    let endpoints = record.endpoints();
    if endpoints.is_empty() {
        return out;
    }

    // --- Mode / policy rules (Figure 3). ---
    if record.offers_mode(MessageSecurityMode::None) {
        out.insert(Deficit::NoneModeOffered);
    }
    if endpoints
        .iter()
        .all(|e| e.security_mode == MessageSecurityMode::None)
    {
        out.insert(Deficit::OnlyNoneMode);
    }
    if endpoints.iter().any(|e| {
        e.security_policy
            .is_some_and(|p| p.class() == PolicyClass::Deprecated)
    }) {
        out.insert(Deficit::DeprecatedPolicy);
    }

    // --- Certificate hygiene (§5.2). ---
    for ep in endpoints {
        let Some(handle) = ep.certificate.as_ref() else {
            continue;
        };
        let Some(cert) = handle.certificate() else {
            continue;
        };
        // The self-signed verdict (an RSA verification) was precomputed
        // when the certificate was interned — once per distinct cert,
        // not once per host serving it.
        if handle.is_self_signed() {
            out.insert(Deficit::SelfSignedCertificate);
        }
        if !cert.is_valid_at(record.discovered_unix) {
            out.insert(Deficit::ExpiredCertificate);
        }
        // Weakness is judged against the policies that would *use* the
        // certificate (anything except policy None).
        if let Some(policy) = ep.security_policy {
            let allowed = policy.allowed_certificate_hashes();
            if !allowed.is_empty() && !allowed.contains(&hash_to_policy_hash(cert.signature_hash()))
            {
                out.insert(Deficit::CertificateTooWeak);
            }
            if let Some((min_bits, _)) = policy.key_length_range() {
                if cert.key_bits() < min_bits {
                    out.insert(Deficit::CertificateTooWeak);
                }
            }
        }
    }

    // --- Authentication (§5.4, Table 2). ---
    if record.advertises_anonymous() {
        out.insert(Deficit::AnonymousAccess);
        if matches!(
            record.session(),
            SessionOutcome::AuthRejected | SessionOutcome::ChannelRejected
        ) {
            out.insert(Deficit::BrokenSessionConfig);
        }
    }

    // --- Accessible data (Figure 7). ---
    // Discovery servers expose only the standard server metadata, so the
    // paper's data-access analysis does not apply to them.
    if record.session() == SessionOutcome::AnonymousActivated && !record.is_discovery_server() {
        if let Some(t) = record.traversal() {
            if t.readable > 0 {
                out.insert(Deficit::DataReadable);
            }
            if t.writable > 0 {
                out.insert(Deficit::DataWritable);
            }
            if t.executable > 0 {
                out.insert(Deficit::MethodsExecutable);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Ipv4;
    use scanner::{EndpointSnapshot, TraversalSummary};
    use ua_types::{SecurityPolicy, UserTokenType};

    fn snapshot(
        mode: MessageSecurityMode,
        policy: SecurityPolicy,
        anonymous: bool,
    ) -> EndpointSnapshot {
        EndpointSnapshot {
            security_mode: mode,
            security_policy: Some(policy),
            security_policy_uri: Some(policy.uri().into()),
            token_types: if anonymous {
                vec![UserTokenType::Anonymous, UserTokenType::UserName]
            } else {
                vec![UserTokenType::UserName]
            },
            certificate: None,
            security_level: 0,
        }
    }

    fn record(endpoints: Vec<EndpointSnapshot>) -> ScanRecord {
        let mut r = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 1_581_206_400);
        r.opcua_mut().hello_ok = true;
        r.opcua_mut().endpoints = endpoints;
        r
    }

    #[test]
    fn empty_record_has_no_deficits() {
        let r = record(vec![]);
        assert!(host_deficits(&r).is_empty());
    }

    #[test]
    fn none_only_host_flags_both_mode_rules() {
        let r = record(vec![snapshot(
            MessageSecurityMode::None,
            SecurityPolicy::None,
            true,
        )]);
        let d = host_deficits(&r);
        assert!(d.contains(&Deficit::OnlyNoneMode));
        assert!(d.contains(&Deficit::NoneModeOffered));
        assert!(d.contains(&Deficit::AnonymousAccess));
        assert!(!d.contains(&Deficit::DeprecatedPolicy));
    }

    #[test]
    fn mixed_host_is_not_only_none() {
        let r = record(vec![
            snapshot(MessageSecurityMode::None, SecurityPolicy::None, false),
            snapshot(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
                false,
            ),
        ]);
        let d = host_deficits(&r);
        assert!(d.contains(&Deficit::NoneModeOffered));
        assert!(!d.contains(&Deficit::OnlyNoneMode));
    }

    #[test]
    fn deprecated_policy_detected() {
        let r = record(vec![snapshot(
            MessageSecurityMode::Sign,
            SecurityPolicy::Basic128Rsa15,
            false,
        )]);
        assert!(host_deficits(&r).contains(&Deficit::DeprecatedPolicy));
    }

    #[test]
    fn broken_session_requires_advertised_anonymous() {
        let mut r = record(vec![snapshot(
            MessageSecurityMode::None,
            SecurityPolicy::None,
            true,
        )]);
        r.opcua_mut().session = SessionOutcome::AuthRejected;
        assert!(host_deficits(&r).contains(&Deficit::BrokenSessionConfig));

        let mut no_anon = record(vec![snapshot(
            MessageSecurityMode::None,
            SecurityPolicy::None,
            false,
        )]);
        no_anon.opcua_mut().session = SessionOutcome::AuthRejected;
        let d = host_deficits(&no_anon);
        assert!(!d.contains(&Deficit::BrokenSessionConfig));
        assert!(!d.contains(&Deficit::AnonymousAccess));
    }

    #[test]
    fn accessible_data_rules_need_an_activated_session() {
        let mut r = record(vec![snapshot(
            MessageSecurityMode::None,
            SecurityPolicy::None,
            true,
        )]);
        r.opcua_mut().session = SessionOutcome::AnonymousActivated;
        r.opcua_mut().traversal = Some(TraversalSummary {
            nodes: 5,
            variables: 3,
            readable: 3,
            writable: 1,
            methods: 1,
            executable: 1,
            truncated: false,
            requests: 9,
        });
        let d = host_deficits(&r);
        assert!(d.contains(&Deficit::DataReadable));
        assert!(d.contains(&Deficit::DataWritable));
        assert!(d.contains(&Deficit::MethodsExecutable));

        // Same traversal numbers but no activated session: no data flags.
        let mut not_active = r.clone();
        not_active.opcua_mut().session = SessionOutcome::NotAttempted;
        let d2 = host_deficits(&not_active);
        assert!(!d2.contains(&Deficit::DataReadable));
    }

    #[test]
    fn tls_wrapper_rules() {
        use scanner::{ProtocolPayload, UatTlsPayload};
        let mut r = record(vec![snapshot(
            MessageSecurityMode::None,
            SecurityPolicy::None,
            true,
        )]);
        // Re-wrap the opcua payload in a uat-tls one with the same inner.
        let inner = r.opcua().clone();
        r.payload = ProtocolPayload::UatTls(UatTlsPayload {
            tls_ok: true,
            cert_expired: true,
            inner,
            ..UatTlsPayload::default()
        });
        let d = host_deficits(&r);
        assert!(d.contains(&Deficit::TlsButAnonymous));
        assert!(d.contains(&Deficit::TlsExpiredCert));
        // The inner opcua rules still apply through the wrapper.
        assert!(d.contains(&Deficit::AnonymousAccess));

        // A failed TLS handshake reports no wrapper deficits.
        let Some(tls) = r.uat_tls_mut() else {
            unreachable!()
        };
        tls.tls_ok = false;
        let d = host_deficits(&r);
        assert!(!d.contains(&Deficit::TlsButAnonymous));
        assert!(!d.contains(&Deficit::TlsExpiredCert));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Deficit::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), Deficit::ALL.len());
    }
}
