//! Longitudinal assessment: diffing consecutive weekly campaigns into
//! the paper's churn series (§4.3, §6).
//!
//! One internet-wide snapshot says what is broken; only the *series*
//! says whether anyone fixes anything. This module consumes one
//! `(records, report)` pair per weekly campaign and produces
//! paper-style deltas:
//!
//! * **hosts seen / new / vanished** per week;
//! * **stable-key-despite-IP-churn matching** — a host that vanished
//!   from address A while an identical certificate surfaced on a fresh
//!   address B is *one moved host*, not an arrival plus a departure.
//!   The certificate thumbprint ([`Thumbprint`]) is the cross-week
//!   identity, exactly as in §4.3; thumbprints served by more than one
//!   host (the §5.3 reuse clusters) are ambiguous and deliberately
//!   never matched;
//! * **certificate renewals** — the same `(address, port)` serving a
//!   different certificate week over week;
//! * **upgrade/downgrade detection** — `software_version` deltas on
//!   matched hosts (§6: most hosts never patch);
//! * **deficit-rate trajectories** — the per-week deficit counts of the
//!   regular [`AssessmentReport`], lined up as a series.

use crate::deficit::Deficit;
use crate::report::AssessmentReport;
use netsim::Ipv4;
use scanner::ScanRecord;
use std::cmp::Ordering;
// ua-lint: allow(unordered-iteration) -- matching indexes are keyed lookups; week output follows roster order
use std::collections::{BTreeMap, HashMap};
use ua_crypto::Thumbprint;

/// What one weekly campaign observed about one host — the minimal
/// projection cross-week matching operates on.
#[derive(Debug, Clone, PartialEq)]
pub struct HostObservation {
    /// Probed address.
    pub address: Ipv4,
    /// Probed port.
    pub port: u16,
    /// Identity anchor: thumbprint of the first certificate the host
    /// served (`None` for certificate-less hosts, which can never be
    /// matched across an address change).
    pub thumbprint: Option<Thumbprint>,
    /// Reported `SoftwareVersion`, where an anonymous session exposed
    /// it.
    pub software_version: Option<String>,
}

/// The per-host observations of one weekly campaign.
#[derive(Debug, Clone)]
pub struct WeekSnapshot {
    /// Week index (0-based).
    pub week: u32,
    /// One observation per OPC UA host, in record order.
    pub hosts: Vec<HostObservation>,
}

impl WeekSnapshot {
    /// Projects a campaign's records (OPC UA speakers only) into a
    /// snapshot.
    pub fn from_records(week: u32, records: &[ScanRecord]) -> WeekSnapshot {
        WeekSnapshot {
            week,
            hosts: records
                .iter()
                .filter(|r| r.speaks())
                .map(|r| HostObservation {
                    address: r.address,
                    port: r.port,
                    thumbprint: r.certificates().first().map(|c| c.identity()),
                    software_version: r.software_version().map(str::to_string),
                })
                .collect(),
        }
    }
}

/// The diff of one weekly campaign against its predecessor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeekDelta {
    /// Week index (0-based; week 0 is the baseline where every host is
    /// new).
    pub week: u32,
    /// OPC UA hosts seen this week.
    pub hosts: usize,
    /// Hosts with no identity in the previous week.
    pub new_hosts: usize,
    /// Previous-week hosts with no identity this week.
    pub vanished_hosts: usize,
    /// Hosts matched on the same `(address, port)`.
    pub stable_hosts: usize,
    /// Hosts matched across an address change by a unique certificate
    /// thumbprint — the §4.3 stable-key-despite-IP-churn category.
    pub moved_hosts: usize,
    /// Matched hosts whose certificate changed (renewal/rollover).
    pub renewed_certs: usize,
    /// Matched hosts whose `software_version` increased.
    pub upgrades: usize,
    /// Matched hosts whose `software_version` decreased.
    pub downgrades: usize,
}

/// Numeric dot-component version comparison; `None` when either side
/// does not parse as `digits(.digits)*`.
pub fn cmp_versions(a: &str, b: &str) -> Option<Ordering> {
    let parse =
        |v: &str| -> Option<Vec<u64>> { v.split('.').map(|p| p.parse::<u64>().ok()).collect() };
    Some(parse(a)?.cmp(&parse(b)?))
}

/// Classifies what changed on one host matched across two weeks.
fn classify_matched(prev: &HostObservation, cur: &HostObservation, delta: &mut WeekDelta) {
    if let (Some(a), Some(b)) = (prev.thumbprint, cur.thumbprint) {
        if a != b {
            delta.renewed_certs += 1;
        }
    }
    if let (Some(a), Some(b)) = (&prev.software_version, &cur.software_version) {
        match cmp_versions(a, b) {
            Some(Ordering::Less) => delta.upgrades += 1,
            Some(Ordering::Greater) => delta.downgrades += 1,
            _ => {}
        }
    }
}

/// Diffs two consecutive snapshots.
///
/// Matching runs in two passes: first by `(address, port)` (stable
/// hosts), then — among the leftovers — by certificate thumbprint,
/// accepting a match only when the thumbprint is unique on *both*
/// sides (moved hosts). Whatever remains is new respectively vanished;
/// in particular, a host vanishing from A while an unrelated host
/// arrives on B stays one vanish plus one arrival. The result is
/// independent of host order.
pub fn diff(prev: &WeekSnapshot, cur: &WeekSnapshot) -> WeekDelta {
    let mut delta = WeekDelta {
        week: cur.week,
        hosts: cur.hosts.len(),
        ..WeekDelta::default()
    };
    let mut prev_matched = vec![false; prev.hosts.len()];
    // ua-lint: allow(unordered-iteration) -- probe-target index: keyed lookup only, never iterated
    let by_target: HashMap<(u32, u16), usize> = prev
        .hosts
        .iter()
        .enumerate()
        .map(|(i, h)| ((h.address.0, h.port), i))
        .collect();

    // Pass 1: same probe target.
    let mut cur_unmatched = Vec::new();
    for (ci, h) in cur.hosts.iter().enumerate() {
        match by_target.get(&(h.address.0, h.port)) {
            Some(&pi) if !prev_matched[pi] => {
                prev_matched[pi] = true;
                delta.stable_hosts += 1;
                classify_matched(&prev.hosts[pi], h, &mut delta);
            }
            _ => cur_unmatched.push(ci),
        }
    }

    // Pass 2: unique-thumbprint matching across address changes. A
    // thumbprint is usable as an identity only when exactly one host
    // served it in *each* full snapshot — members of a §5.3 reuse
    // cluster are ambiguous by construction and never matched, even
    // after the rest of their cluster resolved by address.
    // ua-lint: allow(unordered-iteration) -- ambiguity counts: keyed lookup only, never iterated
    let tp_counts = |hosts: &[HostObservation]| -> HashMap<Thumbprint, usize> {
        // ua-lint: allow(unordered-iteration) -- ambiguity counts: keyed lookup only, never iterated
        let mut counts = HashMap::new();
        for h in hosts {
            if let Some(tp) = h.thumbprint {
                *counts.entry(tp).or_default() += 1;
            }
        }
        counts
    };
    let prev_tp_total = tp_counts(&prev.hosts);
    let cur_tp_total = tp_counts(&cur.hosts);
    // ua-lint: allow(unordered-iteration) -- thumbprint index: keyed lookup only, never iterated
    let mut prev_by_tp: HashMap<Thumbprint, usize> = HashMap::new();
    for (pi, h) in prev.hosts.iter().enumerate() {
        if prev_matched[pi] {
            continue;
        }
        if let Some(tp) = h.thumbprint {
            prev_by_tp.insert(tp, pi);
        }
    }
    for ci in cur_unmatched {
        let h = &cur.hosts[ci];
        let matched = h.thumbprint.and_then(|tp| {
            (cur_tp_total.get(&tp) == Some(&1) && prev_tp_total.get(&tp) == Some(&1))
                .then(|| prev_by_tp.get(&tp).copied())
                .flatten()
        });
        match matched {
            Some(pi) => {
                prev_matched[pi] = true;
                delta.moved_hosts += 1;
                classify_matched(&prev.hosts[pi], h, &mut delta);
            }
            None => delta.new_hosts += 1,
        }
    }

    delta.vanished_hosts = prev_matched.iter().filter(|m| !**m).count();
    delta
}

/// One week's point in the longitudinal series: the diff against the
/// previous week plus the week's deficit distribution.
#[derive(Debug, Clone)]
pub struct WeekPoint {
    /// The week-over-week diff.
    pub delta: WeekDelta,
    /// OPC UA hosts the week's assessment covered.
    pub assessed_hosts: usize,
    /// The week's deficit counts (from the regular assessment).
    pub deficit_counts: BTreeMap<Deficit, usize>,
}

impl WeekPoint {
    /// Share of the week's hosts flagged with `deficit`, in `[0, 1]`.
    pub fn deficit_rate(&self, deficit: Deficit) -> f64 {
        if self.assessed_hosts == 0 {
            0.0
        } else {
            self.deficit_counts.get(&deficit).copied().unwrap_or(0) as f64
                / self.assessed_hosts as f64
        }
    }
}

/// Folds one weekly campaign after another into the longitudinal
/// series; [`finalize`](Self::finalize) yields the report.
#[derive(Debug, Default)]
pub struct LongitudinalAssessor {
    prev: Option<WeekSnapshot>,
    points: Vec<WeekPoint>,
}

impl LongitudinalAssessor {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the next week's campaign output. Week 0 is the baseline:
    /// every host counts as new. Returns the week's point.
    pub fn fold_week(&mut self, records: &[ScanRecord], report: &AssessmentReport) -> &WeekPoint {
        let week = self.points.len() as u32;
        let snap = WeekSnapshot::from_records(week, records);
        let delta = match &self.prev {
            Some(prev) => diff(prev, &snap),
            None => WeekDelta {
                week,
                hosts: snap.hosts.len(),
                new_hosts: snap.hosts.len(),
                ..WeekDelta::default()
            },
        };
        self.prev = Some(snap);
        self.points.push(WeekPoint {
            delta,
            assessed_hosts: report.hosts,
            deficit_counts: report.deficit_counts.clone(),
        });
        // ua-lint: allow(panic-hygiene) -- the push on the previous line makes last() infallible
        self.points.last().expect("just pushed")
    }

    /// Weeks folded so far.
    pub fn weeks_seen(&self) -> usize {
        self.points.len()
    }

    /// Completes the series.
    pub fn finalize(self) -> LongitudinalReport {
        LongitudinalReport { weeks: self.points }
    }
}

/// The full longitudinal series — the data behind the paper's weekly
/// figures.
#[derive(Debug, Clone)]
pub struct LongitudinalReport {
    /// One point per weekly campaign, in week order.
    pub weeks: Vec<WeekPoint>,
}

impl LongitudinalReport {
    /// Sums a delta field over every post-baseline week (week 0 counts
    /// the whole initial population as "new" and would drown churn
    /// totals).
    pub fn churn_total(&self, field: impl Fn(&WeekDelta) -> usize) -> usize {
        self.weeks.iter().skip(1).map(|p| field(&p.delta)).sum()
    }

    /// The deficit-rate trajectory of `deficit`, one `[0, 1]` value per
    /// week.
    pub fn deficit_trajectory(&self, deficit: Deficit) -> Vec<f64> {
        self.weeks.iter().map(|p| p.deficit_rate(deficit)).collect()
    }
}

impl std::fmt::Display for LongitudinalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>4} {:>6} {:>5} {:>5} {:>6} {:>6} {:>4} {:>5}  {:>6} {:>6}",
            "week", "hosts", "new", "gone", "moved", "renew", "up", "down", "none%", "anon%"
        )?;
        for p in &self.weeks {
            let d = &p.delta;
            writeln!(
                f,
                "{:>4} {:>6} {:>5} {:>5} {:>6} {:>6} {:>4} {:>5}  {:>6.1} {:>6.1}",
                d.week,
                d.hosts,
                d.new_hosts,
                d.vanished_hosts,
                d.moved_hosts,
                d.renewed_certs,
                d.upgrades,
                d.downgrades,
                100.0 * p.deficit_rate(Deficit::NoneModeOffered),
                100.0 * p.deficit_rate(Deficit::AnonymousAccess),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(byte: u8) -> Option<Thumbprint> {
        Some(Thumbprint([byte; 20]))
    }

    fn obs(a: u32, port: u16, thumb: Option<Thumbprint>, version: &str) -> HostObservation {
        HostObservation {
            address: Ipv4(a),
            port,
            thumbprint: thumb,
            software_version: Some(version.to_string()),
        }
    }

    fn snap(week: u32, hosts: Vec<HostObservation>) -> WeekSnapshot {
        WeekSnapshot { week, hosts }
    }

    #[test]
    fn same_cert_on_new_ip_is_one_moved_host() {
        let prev = snap(0, vec![obs(1, 4840, tp(7), "1.0.0")]);
        let cur = snap(1, vec![obs(99, 4840, tp(7), "1.0.0")]);
        let d = diff(&prev, &cur);
        assert_eq!(d.moved_hosts, 1);
        assert_eq!(d.new_hosts, 0);
        assert_eq!(d.vanished_hosts, 0);
        assert_eq!(d.stable_hosts, 0);
        assert_eq!(d.renewed_certs, 0);
    }

    #[test]
    fn renewed_cert_on_same_ip_is_renewal_not_arrival() {
        let prev = snap(0, vec![obs(1, 4840, tp(7), "1.0.0")]);
        let cur = snap(1, vec![obs(1, 4840, tp(8), "1.0.0")]);
        let d = diff(&prev, &cur);
        assert_eq!(d.stable_hosts, 1);
        assert_eq!(d.renewed_certs, 1);
        assert_eq!(d.new_hosts, 0);
        assert_eq!(d.vanished_hosts, 0);
        assert_eq!(d.moved_hosts, 0);
    }

    #[test]
    fn vanish_and_unrelated_arrival_stay_separate() {
        // A vanishes, B arrives with a different identity: the
        // ambiguity must NOT collapse into a "move".
        let prev = snap(0, vec![obs(1, 4840, tp(7), "1.0.0")]);
        let cur = snap(1, vec![obs(99, 4840, tp(9), "2.0.0")]);
        let d = diff(&prev, &cur);
        assert_eq!(d.vanished_hosts, 1);
        assert_eq!(d.new_hosts, 1);
        assert_eq!(d.moved_hosts, 0);
        // No version delta either — unmatched hosts never compare.
        assert_eq!(d.upgrades, 0);
    }

    #[test]
    fn certificate_less_hosts_cannot_move() {
        let prev = snap(0, vec![obs(1, 4840, None, "1.0.0")]);
        let cur = snap(1, vec![obs(99, 4840, None, "1.0.0")]);
        let d = diff(&prev, &cur);
        assert_eq!(d.vanished_hosts, 1);
        assert_eq!(d.new_hosts, 1);
        assert_eq!(d.moved_hosts, 0);
    }

    #[test]
    fn reused_thumbprints_are_ambiguous_never_matched() {
        // Two hosts share a certificate (a §5.3 reuse cluster); one
        // moves. The thumbprint is not unique on the prev side, so the
        // mover is unmatchable — by design.
        let prev = snap(
            0,
            vec![obs(1, 4840, tp(7), "1.0.0"), obs(2, 4840, tp(7), "1.0.0")],
        );
        let cur = snap(
            1,
            vec![obs(1, 4840, tp(7), "1.0.0"), obs(99, 4840, tp(7), "1.0.0")],
        );
        let d = diff(&prev, &cur);
        assert_eq!(d.stable_hosts, 1);
        assert_eq!(d.moved_hosts, 0);
        assert_eq!(d.new_hosts, 1);
        assert_eq!(d.vanished_hosts, 1);
    }

    #[test]
    fn moved_host_can_also_upgrade() {
        let prev = snap(0, vec![obs(1, 4840, tp(7), "1.2.9")]);
        let cur = snap(1, vec![obs(99, 4840, tp(7), "1.2.10")]);
        let d = diff(&prev, &cur);
        assert_eq!(d.moved_hosts, 1);
        assert_eq!(d.upgrades, 1, "numeric compare: 1.2.10 > 1.2.9");
        assert_eq!(d.downgrades, 0);
    }

    #[test]
    fn version_deltas_on_stable_hosts() {
        let prev = snap(
            0,
            vec![
                obs(1, 4840, tp(1), "1.0.0"),
                obs(2, 4840, tp(2), "2.5.3"),
                obs(3, 4840, tp(3), "3.0.0"),
            ],
        );
        let cur = snap(
            1,
            vec![
                obs(1, 4840, tp(1), "1.1.0"),
                obs(2, 4840, tp(2), "2.5.2"),
                obs(3, 4840, tp(3), "3.0.0"),
            ],
        );
        let d = diff(&prev, &cur);
        assert_eq!(d.stable_hosts, 3);
        assert_eq!(d.upgrades, 1);
        assert_eq!(d.downgrades, 1);
    }

    #[test]
    fn cmp_versions_is_numeric_not_lexicographic() {
        assert_eq!(cmp_versions("1.0.9", "1.0.10"), Some(Ordering::Less));
        assert_eq!(cmp_versions("1.10", "1.9"), Some(Ordering::Greater));
        assert_eq!(cmp_versions("2.0.0", "2.0.0"), Some(Ordering::Equal));
        assert_eq!(cmp_versions("2.0.0", "2.0"), Some(Ordering::Greater));
        assert_eq!(cmp_versions("v2", "1"), None);
    }

    #[test]
    fn assessor_baseline_counts_everything_new() {
        use crate::report::assess;
        let mut a = LongitudinalAssessor::new();
        let report = assess(&[]);
        let p = a.fold_week(&[], &report);
        assert_eq!(p.delta.week, 0);
        assert_eq!(p.delta.new_hosts, 0);
        assert_eq!(a.weeks_seen(), 1);
        let report = a.finalize();
        assert_eq!(report.weeks.len(), 1);
        assert_eq!(report.churn_total(|d| d.new_hosts), 0);
    }

    #[test]
    fn report_display_renders_a_table() {
        let report = LongitudinalReport {
            weeks: vec![WeekPoint {
                delta: WeekDelta {
                    week: 0,
                    hosts: 5,
                    new_hosts: 5,
                    ..WeekDelta::default()
                },
                assessed_hosts: 5,
                deficit_counts: BTreeMap::new(),
            }],
        };
        let rendered = report.to_string();
        assert!(rendered.contains("week"));
        assert!(rendered.contains("moved"));
        assert_eq!(
            report.deficit_trajectory(Deficit::AnonymousAccess),
            vec![0.0]
        );
    }
}
