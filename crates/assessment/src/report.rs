//! Population-level aggregation: cross-host analyses and the summary
//! tables of the paper.

use crate::deficit::{host_deficits, Deficit};
use netsim::Ipv4;
use scanner::{DiscoveredVia, HostOutcome, ScanRecord, SessionOutcome, DEFAULT_OPCUA_PORT};
// ua-lint: allow(unordered-iteration) -- the one HashMap left is a lookup-only dedup index
use std::collections::{BTreeMap, BTreeSet, HashMap};
use ua_crypto::hash::to_hex;
use ua_crypto::{find_shared_factors, BigUint};
use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType};

/// Per-host assessment outcome.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host address.
    pub address: Ipv4,
    /// Port the host was probed on.
    pub port: u16,
    /// How the scanner discovered the host (sweep or LDS referral).
    pub via: DiscoveredVia,
    /// AS number.
    pub asn: u32,
    /// True for local discovery servers.
    pub is_discovery_server: bool,
    /// Referral URLs this host announced via FindServers.
    pub announced_referrals: usize,
    /// Every deficit detected on this host.
    pub deficits: BTreeSet<Deficit>,
}

/// Table 1-style accounting of what referral following added on top of
/// the sweep: the host category that is invisible without it.
#[derive(Debug, Clone, Default)]
pub struct ReferralSummary {
    /// Hosts reachable *only* via an LDS referral (their records carry
    /// [`DiscoveredVia::Referral`] provenance).
    pub referral_only_hosts: usize,
    /// Hosts announcing at least one referral URL.
    pub referring_hosts: usize,
    /// Discovery servers among the referring hosts.
    pub referring_discovery_servers: usize,
    /// Referral-discovered hosts on a port other than the campaign's
    /// sweep port (derived from the swept records;
    /// [`DEFAULT_OPCUA_PORT`] when a record set contains none).
    pub non_default_port_hosts: usize,
    /// Deepest referral chain among assessed hosts.
    pub max_chain_depth: u32,
    /// Deficit counts among referral-only hosts (the report renders
    /// these next to the whole-population counts for the
    /// swept-vs-referred deficit-rate contrast).
    pub deficit_counts: BTreeMap<Deficit, usize>,
}

/// A certificate served by more than one host.
#[derive(Debug, Clone)]
pub struct ReuseCluster {
    /// SHA-1 thumbprint (hex) of the reused certificate.
    pub thumbprint_hex: String,
    /// Hosts serving it, ascending.
    pub hosts: Vec<Ipv4>,
}

/// A pair of hosts whose RSA moduli share a prime factor.
#[derive(Debug, Clone)]
pub struct SharedPrimePair {
    /// First host.
    pub a: Ipv4,
    /// Second host.
    pub b: Ipv4,
}

/// Reachability tallies over *every* folded record — including hosts
/// the probe stack never got a byte out of. On a polite (fault-free)
/// network every record is [`HostOutcome::Ok`] and the tally is
/// invisible in the rendered report; under middlebox fault injection it
/// quantifies what the retry layer recovered and what it had to write
/// off, per [`HostOutcome`] class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachabilityTally {
    /// Records that yielded a usable stream (OPC UA or not).
    pub ok: usize,
    /// Connection refused: a live address with no listener.
    pub unreachable: usize,
    /// Retry budget exhausted on silent SYN loss.
    pub timed_out: usize,
    /// Retry budget exhausted against a rate-limiting middlebox.
    pub throttled: usize,
    /// Accepted then stalled past the stage budget (tarpit).
    pub tarpitted: usize,
    /// Records whose host needed more than one connect attempt.
    pub retried: usize,
}

impl ReachabilityTally {
    /// Records written off without a usable stream.
    pub fn unrecovered(&self) -> usize {
        self.unreachable + self.timed_out + self.throttled + self.tarpitted
    }

    /// Folds one record's outcome into the tally.
    fn observe(&mut self, record: &ScanRecord) {
        match record.outcome {
            HostOutcome::Ok => self.ok += 1,
            HostOutcome::Unreachable => self.unreachable += 1,
            HostOutcome::TimedOut => self.timed_out += 1,
            HostOutcome::Throttled => self.throttled += 1,
            HostOutcome::Tarpitted => self.tarpitted += 1,
        }
        if record.connect_attempts > 1 {
            self.retried += 1;
        }
    }
}

/// Session-stage tallies (the paper's Table 2 columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionTally {
    /// Hosts where no session was attempted.
    pub not_attempted: usize,
    /// Secure-channel stage rejections.
    pub channel_rejected: usize,
    /// Authentication-stage rejections.
    pub auth_rejected: usize,
    /// Other protocol failures.
    pub protocol_error: usize,
    /// Anonymous sessions activated.
    pub anonymous_activated: usize,
}

/// The full population assessment.
#[derive(Debug, Clone)]
pub struct AssessmentReport {
    /// Hosts assessed (records with at least a completed UACP hello).
    pub hosts: usize,
    /// Responsive hosts that did not speak OPC UA (excluded from rules).
    pub non_opcua: usize,
    /// Discovery servers among the assessed hosts.
    pub discovery_servers: usize,
    /// Per-host outcomes, in record order.
    pub host_reports: Vec<HostReport>,
    /// Hosts per deficit.
    pub deficit_counts: BTreeMap<Deficit, usize>,
    /// Hosts offering each security mode.
    pub mode_distribution: BTreeMap<MessageSecurityMode, usize>,
    /// Hosts offering each (parseable) security policy.
    pub policy_distribution: BTreeMap<SecurityPolicy, usize>,
    /// Hosts offering each identity-token type.
    pub token_distribution: BTreeMap<UserTokenType, usize>,
    /// Certificate-reuse clusters, largest first.
    pub reuse_clusters: Vec<ReuseCluster>,
    /// Host pairs with shared prime factors.
    pub shared_prime_pairs: Vec<SharedPrimePair>,
    /// Session-stage outcomes.
    pub sessions: SessionTally,
    /// What following LDS referrals added on top of the sweep.
    pub referrals: ReferralSummary,
    /// Per-[`HostOutcome`] reachability tallies over all records.
    pub reachability: ReachabilityTally,
    /// Assessed hosts per protocol suite (`"opcua"`, `"uat-tls"`, …).
    pub protocol_hosts: BTreeMap<&'static str, usize>,
    /// Vendor breakdown recovered by the fingerprint stage (hosts per
    /// identified vendor). Empty when no fingerprint stage ran.
    pub vendor_counts: BTreeMap<&'static str, usize>,
    /// Assessed hosts the fingerprint stage could not attribute (no
    /// known quirk, or the stage did not run).
    pub unfingerprinted: usize,
}

impl AssessmentReport {
    /// Hosts flagged with `deficit`.
    pub fn count(&self, deficit: Deficit) -> usize {
        self.deficit_counts.get(&deficit).copied().unwrap_or(0)
    }

    /// Share of assessed hosts flagged with `deficit` in `[0, 1]`.
    pub fn share(&self, deficit: Deficit) -> f64 {
        if self.hosts == 0 {
            0.0
        } else {
            self.count(deficit) as f64 / self.hosts as f64
        }
    }
}

/// Incremental population assessment: fold [`ScanRecord`]s one at a time
/// as a campaign streams them, then [`finalize`](Assessor::finalize) into
/// the [`AssessmentReport`].
///
/// Per-host rules run immediately on [`fold`](Assessor::fold); the small
/// cross-host state (thumbprint→hosts, modulus→hosts) accumulates online.
/// Only batch GCD — which needs every modulus — is deferred to
/// finalization, together with the back-patching of the two cross-host
/// deficits ([`Deficit::ReusedCertificate`], [`Deficit::SharedPrimeKey`])
/// into the per-host reports.
///
/// `fold` + `finalize` over any record sequence produces exactly the
/// report [`assess`] produces over the same slice; streaming consumers
/// (e.g. `examples/deployment_audit.rs`) read the running tallies via
/// [`hosts_seen`](Assessor::hosts_seen) and
/// [`running_count`](Assessor::running_count) while the scan is live.
#[derive(Debug, Default)]
pub struct Assessor {
    host_reports: Vec<HostReport>,
    non_opcua: usize,
    sweep_port: Option<u16>,
    by_thumbprint: BTreeMap<[u8; 20], BTreeSet<Ipv4>>,
    moduli: Vec<BigUint>,
    modulus_hosts: Vec<BTreeSet<Ipv4>>,
    // ua-lint: allow(unordered-iteration) -- modulus dedup index: keyed lookup only, never iterated
    modulus_index: HashMap<BigUint, usize>,
    deficit_counts: BTreeMap<Deficit, usize>,
    mode_distribution: BTreeMap<MessageSecurityMode, usize>,
    policy_distribution: BTreeMap<SecurityPolicy, usize>,
    token_distribution: BTreeMap<UserTokenType, usize>,
    sessions: SessionTally,
    reachability: ReachabilityTally,
    protocol_hosts: BTreeMap<&'static str, usize>,
    vendor_counts: BTreeMap<&'static str, usize>,
    unfingerprinted: usize,
}

impl Assessor {
    /// An empty assessor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the running assessment. Per-host rules run
    /// now; cross-host state accumulates for [`Self::finalize`].
    pub fn fold(&mut self, record: &ScanRecord) {
        if !record.via.is_referral() {
            // Every swept record carries the campaign's sweep port; the
            // referral section judges "non-default port" against it
            // rather than assuming 4840.
            self.sweep_port.get_or_insert(record.port);
        }
        // Reachability counts every record — faulted hosts never reach
        // the hello stage, and writing them off silently is exactly the
        // bias the retry layer exists to measure.
        self.reachability.observe(record);
        if !record.speaks() {
            self.non_opcua += 1;
            return;
        }
        *self
            .protocol_hosts
            .entry(record.payload.protocol())
            .or_default() += 1;
        match record.vendor_fingerprint() {
            Some(vendor) => *self.vendor_counts.entry(vendor).or_default() += 1,
            None => self.unfingerprinted += 1,
        }
        let deficits = host_deficits(record);
        for &d in &deficits {
            *self.deficit_counts.entry(d).or_default() += 1;
        }
        self.host_reports.push(HostReport {
            address: record.address,
            port: record.port,
            via: record.via,
            asn: record.asn,
            is_discovery_server: record.is_discovery_server(),
            announced_referrals: record.referred_urls().len(),
            deficits,
        });

        // Cross-host: certificate reuse (thumbprint) and shared primes
        // (batch GCD over moduli), folded over the *interned* handles —
        // thumbprints and parsed moduli were precomputed once per
        // distinct certificate by the scanner's `CertStore`, so this is
        // pure map bookkeeping, no hashing or DER parsing per host.
        // Moduli are deduplicated with host multiplicity tracked: hosts
        // serving the *same* key are reuse, not weak randomness (the
        // paper checks distinct keys pairwise), and finalize's batch
        // GCD input shrinks by exactly the reuse factor.
        for cert in record.certificates() {
            self.by_thumbprint
                .entry(cert.thumbprint())
                .or_default()
                .insert(record.address);
            let Some(n) = cert.modulus() else {
                continue;
            };
            let idx = match self.modulus_index.get(n) {
                Some(&idx) => idx,
                None => {
                    self.moduli.push(n.clone());
                    self.modulus_hosts.push(BTreeSet::new());
                    self.modulus_index.insert(n.clone(), self.moduli.len() - 1);
                    self.moduli.len() - 1
                }
            };
            self.modulus_hosts[idx].insert(record.address);
        }

        // Distributions and session tallies.
        let mut modes: BTreeSet<MessageSecurityMode> = BTreeSet::new();
        let mut policies: BTreeSet<SecurityPolicy> = BTreeSet::new();
        let mut tokens: BTreeSet<UserTokenType> = BTreeSet::new();
        for ep in record.endpoints() {
            modes.insert(ep.security_mode);
            if let Some(p) = ep.security_policy {
                policies.insert(p);
            }
            tokens.extend(ep.token_types.iter().copied());
        }
        for m in modes {
            *self.mode_distribution.entry(m).or_default() += 1;
        }
        for p in policies {
            *self.policy_distribution.entry(p).or_default() += 1;
        }
        for t in tokens {
            *self.token_distribution.entry(t).or_default() += 1;
        }
        match record.session() {
            SessionOutcome::NotAttempted => self.sessions.not_attempted += 1,
            SessionOutcome::ChannelRejected => self.sessions.channel_rejected += 1,
            SessionOutcome::AuthRejected => self.sessions.auth_rejected += 1,
            SessionOutcome::ProtocolError => self.sessions.protocol_error += 1,
            SessionOutcome::AnonymousActivated => self.sessions.anonymous_activated += 1,
        }
    }

    /// OPC UA hosts folded so far.
    pub fn hosts_seen(&self) -> usize {
        self.host_reports.len()
    }

    /// Responsive-but-not-OPC-UA records folded so far.
    pub fn non_opcua_seen(&self) -> usize {
        self.non_opcua
    }

    /// Running count of hosts flagged with `deficit` by the *per-host*
    /// rules. The two cross-host deficits stay 0 until
    /// [`Self::finalize`] — they cannot be attributed before the
    /// population is complete.
    pub fn running_count(&self, deficit: Deficit) -> usize {
        self.deficit_counts.get(&deficit).copied().unwrap_or(0)
    }

    /// Completes the assessment: runs batch GCD over the accumulated
    /// moduli, patches the cross-host deficits into the per-host
    /// reports, and builds the final tables.
    pub fn finalize(self) -> AssessmentReport {
        let Assessor {
            mut host_reports,
            non_opcua,
            sweep_port,
            by_thumbprint,
            moduli,
            modulus_hosts,
            modulus_index: _,
            mut deficit_counts,
            mode_distribution,
            policy_distribution,
            token_distribution,
            sessions,
            reachability,
            protocol_hosts,
            vendor_counts,
            unfingerprinted,
        } = self;

        let mut reuse_clusters: Vec<ReuseCluster> = by_thumbprint
            .iter()
            .filter(|(_, hosts)| hosts.len() > 1)
            .map(|(tp, hosts)| ReuseCluster {
                thumbprint_hex: to_hex(tp),
                hosts: hosts.iter().copied().collect(),
            })
            .collect();
        reuse_clusters.sort_by(|a, b| {
            b.hosts
                .len()
                .cmp(&a.hosts.len())
                .then_with(|| a.thumbprint_hex.cmp(&b.thumbprint_hex))
        });
        let reused_hosts: BTreeSet<Ipv4> = reuse_clusters
            .iter()
            .flat_map(|c| c.hosts.iter().copied())
            .collect();

        let mut shared_prime_pairs = Vec::new();
        let mut shared_prime_hosts: BTreeSet<Ipv4> = BTreeSet::new();
        for hit in find_shared_factors(&moduli) {
            for &a in &modulus_hosts[hit.a] {
                shared_prime_hosts.insert(a);
            }
            for &b in &modulus_hosts[hit.b] {
                shared_prime_hosts.insert(b);
            }
            // ua-lint: allow(panic-hygiene) -- every modulus slot gains a host the moment it is created
            let a = *modulus_hosts[hit.a].iter().next().expect("hosts recorded");
            // ua-lint: allow(panic-hygiene) -- every modulus slot gains a host the moment it is created
            let b = *modulus_hosts[hit.b].iter().next().expect("hosts recorded");
            shared_prime_pairs.push(SharedPrimePair { a, b });
        }

        for hr in &mut host_reports {
            if reused_hosts.contains(&hr.address) && hr.deficits.insert(Deficit::ReusedCertificate)
            {
                *deficit_counts
                    .entry(Deficit::ReusedCertificate)
                    .or_default() += 1;
            }
            if shared_prime_hosts.contains(&hr.address)
                && hr.deficits.insert(Deficit::SharedPrimeKey)
            {
                *deficit_counts.entry(Deficit::SharedPrimeKey).or_default() += 1;
            }
        }

        // Referral accounting — computed after the cross-host
        // back-patch so referral-only deficit counts include reuse and
        // shared-prime findings.
        let mut referrals = ReferralSummary::default();
        let campaign_port = sweep_port.unwrap_or(DEFAULT_OPCUA_PORT);
        for hr in &host_reports {
            if hr.announced_referrals > 0 {
                referrals.referring_hosts += 1;
                if hr.is_discovery_server {
                    referrals.referring_discovery_servers += 1;
                }
            }
            if hr.via.is_referral() {
                referrals.referral_only_hosts += 1;
                if hr.port != campaign_port {
                    referrals.non_default_port_hosts += 1;
                }
                referrals.max_chain_depth = referrals.max_chain_depth.max(hr.via.depth());
                for &d in &hr.deficits {
                    *referrals.deficit_counts.entry(d).or_default() += 1;
                }
            }
        }

        AssessmentReport {
            hosts: host_reports.len(),
            non_opcua,
            discovery_servers: host_reports
                .iter()
                .filter(|h| h.is_discovery_server)
                .count(),
            host_reports,
            deficit_counts,
            mode_distribution,
            policy_distribution,
            token_distribution,
            reuse_clusters,
            shared_prime_pairs,
            sessions,
            referrals,
            reachability,
            protocol_hosts,
            vendor_counts,
            unfingerprinted,
        }
    }
}

/// Runs the per-host rules plus the cross-host analyses over `records`:
/// a thin batch wrapper over the incremental [`Assessor`].
pub fn assess(records: &[ScanRecord]) -> AssessmentReport {
    let mut assessor = Assessor::new();
    for record in records {
        assessor.fold(record);
    }
    assessor.finalize()
}

impl std::fmt::Display for AssessmentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "OPC UA security assessment")?;
        writeln!(
            f,
            "  hosts: {} OPC UA ({} discovery servers), {} non-OPC-UA responders",
            self.hosts, self.discovery_servers, self.non_opcua
        )?;
        writeln!(
            f,
            "  discovery (Table 1): {} swept + {} referral-only ({} on non-default ports, max chain depth {})",
            self.hosts - self.referrals.referral_only_hosts,
            self.referrals.referral_only_hosts,
            self.referrals.non_default_port_hosts,
            self.referrals.max_chain_depth,
        )?;
        writeln!(
            f,
            "  referring hosts: {} ({} discovery servers announce referrals)",
            self.referrals.referring_hosts, self.referrals.referring_discovery_servers,
        )?;
        // Rendered only for multi-suite campaigns: OPC-UA-only output
        // stays byte-identical to the single-protocol report.
        if self.protocol_hosts.keys().any(|p| *p != "opcua") {
            writeln!(f, "  protocol suites (hosts):")?;
            for (proto, n) in &self.protocol_hosts {
                writeln!(
                    f,
                    "    {:<16} {:>6}  ({:>5.1} %)",
                    proto,
                    n,
                    pct(*n, self.hosts)
                )?;
            }
        }
        // Rendered only when the network bit: polite-campaign output is
        // byte-identical to the pre-fault-injection report.
        let reach = &self.reachability;
        if reach.unrecovered() > 0 || reach.retried > 0 {
            writeln!(
                f,
                "  reachability: {} ok, {} unreachable, {} timed out, {} throttled, {} tarpitted ({} hosts needed retries)",
                reach.ok,
                reach.unreachable,
                reach.timed_out,
                reach.throttled,
                reach.tarpitted,
                reach.retried,
            )?;
        }

        writeln!(f, "\n  security modes offered (hosts):")?;
        for (mode, n) in &self.mode_distribution {
            writeln!(
                f,
                "    {:<16} {:>6}  ({:>5.1} %)",
                mode.abbrev(),
                n,
                pct(*n, self.hosts)
            )?;
        }
        writeln!(f, "  security policies offered (hosts):")?;
        for (policy, n) in &self.policy_distribution {
            writeln!(
                f,
                "    {:<16} {:>6}  ({:>5.1} %)",
                policy.abbrev(),
                n,
                pct(*n, self.hosts)
            )?;
        }
        writeln!(f, "  identity tokens offered (hosts):")?;
        for (token, n) in &self.token_distribution {
            writeln!(
                f,
                "    {:<16} {:>6}  ({:>5.1} %)",
                token.label(),
                n,
                pct(*n, self.hosts)
            )?;
        }

        writeln!(f, "\n  configuration deficits (all hosts | referral-only):")?;
        let referred = self.referrals.referral_only_hosts;
        for d in Deficit::ALL {
            let n = self.count(d);
            let r = self.referrals.deficit_counts.get(&d).copied().unwrap_or(0);
            writeln!(
                f,
                "    {:<30} {:>6}  ({:>5.1} %) | {:>5}  ({:>5.1} %)",
                d.label(),
                n,
                pct(n, self.hosts),
                r,
                pct(r, referred),
            )?;
        }

        // Vendor breakdown (Table-6 style) — only when the fingerprint
        // stage attributed at least one host.
        if !self.vendor_counts.is_empty() {
            writeln!(f, "\n  vendor fingerprints (hosts):")?;
            for (vendor, n) in &self.vendor_counts {
                writeln!(
                    f,
                    "    {:<30} {:>6}  ({:>5.1} %)",
                    vendor,
                    n,
                    pct(*n, self.hosts)
                )?;
            }
            writeln!(
                f,
                "    {:<30} {:>6}  ({:>5.1} %)",
                "(unidentified)",
                self.unfingerprinted,
                pct(self.unfingerprinted, self.hosts)
            )?;
        }

        writeln!(f, "\n  sessions: {} anonymous activated, {} auth-rejected, {} channel-rejected, {} errors, {} not attempted",
            self.sessions.anonymous_activated,
            self.sessions.auth_rejected,
            self.sessions.channel_rejected,
            self.sessions.protocol_error,
            self.sessions.not_attempted,
        )?;

        if !self.reuse_clusters.is_empty() {
            writeln!(f, "\n  certificate reuse clusters:")?;
            for c in &self.reuse_clusters {
                writeln!(
                    f,
                    "    {} hosts share cert {}…",
                    c.hosts.len(),
                    &c.thumbprint_hex[..16]
                )?;
            }
        }
        if !self.shared_prime_pairs.is_empty() {
            writeln!(f, "  shared-prime key pairs:")?;
            for p in &self.shared_prime_pairs {
                writeln!(f, "    {} ↔ {}", p.a, p.b)?;
            }
        }
        Ok(())
    }
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}
