//! # assessment
//!
//! Security-configuration assessment of OPC UA scan records — the
//! analysis layer of the study (§5–§6):
//!
//! * [`deficit`] — the finding taxonomy ([`Deficit`]) and the pure
//!   per-host classification rules ([`host_deficits`]);
//! * [`report`] — population-wide aggregation: the incremental
//!   [`Assessor`] folds records as a campaign streams them (per-host
//!   rules immediately, cross-host state online, batch GCD at
//!   [`Assessor::finalize`]); [`assess`] is the batch wrapper producing
//!   the paper-style summary tables ([`AssessmentReport`]);
//! * [`longitudinal`] — multi-campaign diffing: consecutive weekly
//!   outputs become churn series (hosts new/vanished/moved, certificate
//!   renewals, `software_version` upgrade detection, deficit-rate
//!   trajectories), with the certificate thumbprint as the cross-week
//!   host identity (§4.3).
//!
//! The crate consumes [`scanner::ScanRecord`]s only; it never touches
//! the network layer, so stored campaigns can be re-assessed offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deficit;
pub mod longitudinal;
pub mod report;

pub use deficit::{host_deficits, Deficit};
pub use longitudinal::{
    cmp_versions, diff, HostObservation, LongitudinalAssessor, LongitudinalReport, WeekDelta,
    WeekPoint, WeekSnapshot,
};
pub use report::{
    assess, AssessmentReport, Assessor, HostReport, ReachabilityTally, ReuseCluster, SessionTally,
    SharedPrimePair,
};
