//! Placeholder: implementation follows.
