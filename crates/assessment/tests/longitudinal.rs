//! End-to-end longitudinal integration: a churned world scanned by
//! weekly campaigns must produce exactly the churn series its ground
//! truth predicts.
//!
//! The ground-truth mirror applies the *same* diffing rules
//! ([`assessment::diff`]) to the world's true per-week state
//! (addresses, certificate thumbprints, version visibility), so any
//! divergence between planted and detected churn — a host the scanner
//! missed, a stale referral, a broken identity match — fails the test.

use assessment::{assess, diff, HostObservation, LongitudinalAssessor, WeekSnapshot};
use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{ChurnConfig, EvolvingWorld, HostClass, PopulationConfig, StrataMix};
use scanner::{Campaign, ScanConfig, Scanner};

/// What the scanner *should* observe this week — the world's own
/// scanner-visibility rule ([`EvolvingWorld::observable_truth`]),
/// projected into the differ's observation type.
fn truth_snapshot(week: u32, world: &EvolvingWorld) -> WeekSnapshot {
    WeekSnapshot {
        week,
        hosts: world
            .observable_truth()
            .into_iter()
            .map(|t| HostObservation {
                address: t.address,
                port: t.port,
                thumbprint: t.thumbprint,
                software_version: t.software_version,
            })
            .collect(),
    }
}

#[test]
fn scan_derived_deltas_match_planted_ground_truth() {
    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.80.0.0/22".parse().unwrap();
    let mix = StrataMix::new()
        .with(HostClass::SecureModern, 6)
        .with(HostClass::WideOpen, 3)
        .with(HostClass::ExpiredCert, 2)
        .with(HostClass::BrokenSession, 1)
        .with(HostClass::DiscoveryServer, 2)
        .with(HostClass::HiddenServer, 2);
    let cfg = PopulationConfig::new(2020, vec![universe], mix);
    // Aggressive rates so four weeks plant every event class.
    let churn = ChurnConfig {
        ip_move: 0.3,
        departure: 0.08,
        arrival: 0.15,
        renewal: 0.2,
        upgrade: 0.3,
        downgrade: 0.05,
        remediation: 0.1,
        regression: 0.1,
    };
    let mut world = EvolvingWorld::new(&net, &cfg, churn);
    let scan_config = ScanConfig {
        workers: 2,
        ..ScanConfig::default()
    };
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), scan_config));
    let mut longitudinal = LongitudinalAssessor::new();
    let mut truth_prev: Option<WeekSnapshot> = None;
    let mut planted_moves = 0;
    let mut planted_renewals = 0;
    let mut detected_moves = 0;

    for week in 0..4u32 {
        let scan = {
            let world = &mut world;
            campaign.run_week(&[universe], 2020, |w| {
                if w > 0 {
                    let log = world.evolve(w);
                    planted_moves += log.moves();
                    planted_renewals += log.renewals();
                }
            })
        };
        let report = assess(&scan.records);
        let point = longitudinal.fold_week(&scan.records, &report).clone();
        assert_eq!(
            point.delta.hosts,
            world.alive_count(),
            "week {week}: scanner missed hosts"
        );

        let truth = truth_snapshot(week, &world);
        if let Some(prev) = &truth_prev {
            let truth_delta = diff(prev, &truth);
            assert_eq!(
                point.delta, truth_delta,
                "week {week}: scan-derived delta diverges from ground truth"
            );
            detected_moves += point.delta.moved_hosts;
        }
        truth_prev = Some(truth);
    }

    // The study actually churned, and identity matching actually fired.
    assert!(planted_moves > 0, "churn model planted no moves");
    assert!(planted_renewals > 0, "churn model planted no renewals");
    assert!(
        detected_moves > 0,
        "no stable-key-despite-IP-churn match in four weeks of 30% moves"
    );
    // Detection can only miss ambiguous/certificate-less movers, never
    // invent extras.
    assert!(detected_moves <= planted_moves);

    let series = longitudinal.finalize();
    assert_eq!(series.weeks.len(), 4);
    assert_eq!(series.churn_total(|d| d.moved_hosts), detected_moves);
}

#[test]
fn frozen_world_yields_zero_churn_series() {
    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.81.0.0/23".parse().unwrap();
    let cfg = PopulationConfig::new(7, vec![universe], StrataMix::paper_like(30));
    let mut world = EvolvingWorld::new(&net, &cfg, ChurnConfig::frozen());
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), ScanConfig::default()));
    let mut longitudinal = LongitudinalAssessor::new();
    for week in 0..3u32 {
        let scan = {
            let world = &mut world;
            campaign.run_week(&[universe], 7, |w| {
                if w > 0 {
                    world.evolve(w);
                }
            })
        };
        let report = assess(&scan.records);
        longitudinal.fold_week(&scan.records, &report);
        let _ = week;
    }
    let series = longitudinal.finalize();
    assert_eq!(series.churn_total(|d| d.new_hosts), 0);
    assert_eq!(series.churn_total(|d| d.vanished_hosts), 0);
    assert_eq!(series.churn_total(|d| d.moved_hosts), 0);
    assert_eq!(series.churn_total(|d| d.renewed_certs), 0);
    assert_eq!(series.churn_total(|d| d.upgrades), 0);
    // The deficit trajectory is flat: same hosts, same deficits.
    for deficit in assessment::Deficit::ALL {
        let trajectory = series.deficit_trajectory(deficit);
        assert!(
            trajectory.windows(2).all(|w| w[0] == w[1]),
            "{deficit:?} trajectory moved in a frozen world: {trajectory:?}"
        );
    }
}
