//! Table-driven end-to-end classification tests: purpose-built
//! populations are deployed, scanned, and assessed, and every paper
//! category must be detected exactly where the ground truth says it is.

use assessment::{assess, AssessmentReport, Deficit};
use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{synthesize, HostClass, Population, PopulationConfig, StrataMix};
use scanner::{ScanConfig, ScanRecord, Scanner};

const UNIVERSE: &str = "10.0.0.0/20";

/// Deploys `mix`, scans the universe, assesses the records.
fn pipeline(mix: StrataMix, seed: u64) -> (Population, Vec<ScanRecord>, AssessmentReport) {
    let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
    let universe: Cidr = UNIVERSE.parse().unwrap();
    let pop = synthesize(&net, &PopulationConfig::new(seed, vec![universe], mix));
    let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
    let (summary, records) = scanner.scan_collect(&[universe], seed ^ 0x5CA9);
    assert_eq!(
        summary.opcua_hosts as usize,
        pop.len(),
        "every deployed host must be found and speak OPC UA"
    );
    let report = assess(&records);
    (pop, records, report)
}

/// One row of the classification table.
struct Case {
    class: HostClass,
    count: usize,
    /// Deficits every host of the class must carry.
    expect: &'static [Deficit],
    /// Deficits no host of the class may carry.
    forbid: &'static [Deficit],
}

#[test]
fn every_paper_category_is_detected_on_purpose_built_populations() {
    use Deficit::*;
    let table = [
        Case {
            class: HostClass::WideOpen,
            count: 3,
            expect: &[OnlyNoneMode, NoneModeOffered, AnonymousAccess, DataReadable],
            forbid: &[
                DeprecatedPolicy,
                SelfSignedCertificate,
                ExpiredCertificate,
                CertificateTooWeak,
                BrokenSessionConfig,
            ],
        },
        Case {
            class: HostClass::DeprecatedOnly,
            count: 3,
            expect: &[DeprecatedPolicy, SelfSignedCertificate],
            forbid: &[
                NoneModeOffered,
                OnlyNoneMode,
                AnonymousAccess,
                ExpiredCertificate,
            ],
        },
        Case {
            class: HostClass::MixedLegacy,
            count: 3,
            expect: &[
                NoneModeOffered,
                DeprecatedPolicy,
                AnonymousAccess,
                SelfSignedCertificate,
                DataReadable,
            ],
            forbid: &[OnlyNoneMode, ExpiredCertificate, CertificateTooWeak],
        },
        Case {
            class: HostClass::SecureModern,
            count: 3,
            expect: &[SelfSignedCertificate],
            forbid: &[
                NoneModeOffered,
                OnlyNoneMode,
                DeprecatedPolicy,
                ExpiredCertificate,
                CertificateTooWeak,
                AnonymousAccess,
                DataReadable,
            ],
        },
        Case {
            class: HostClass::ExpiredCert,
            count: 3,
            expect: &[ExpiredCertificate, SelfSignedCertificate],
            forbid: &[CertificateTooWeak, NoneModeOffered],
        },
        Case {
            class: HostClass::WeakCert,
            count: 3,
            expect: &[CertificateTooWeak, SelfSignedCertificate],
            forbid: &[ExpiredCertificate, NoneModeOffered],
        },
        Case {
            class: HostClass::BrokenSession,
            count: 3,
            expect: &[AnonymousAccess, BrokenSessionConfig, OnlyNoneMode],
            forbid: &[DataReadable, DataWritable],
        },
    ];

    for case in table {
        let mix = StrataMix::new().with(case.class, case.count);
        let (pop, _, report) = pipeline(mix, 0xA11CE ^ case.count as u64);
        assert_eq!(report.hosts, case.count, "{:?}", case.class);
        for host in pop.of_class(case.class) {
            let hr = report
                .host_reports
                .iter()
                .find(|h| h.address == host.address)
                .unwrap_or_else(|| panic!("{:?}: no report for {}", case.class, host.address));
            for d in case.expect {
                assert!(
                    hr.deficits.contains(d),
                    "{:?} host {} must carry {d:?}, has {:?}",
                    case.class,
                    host.address,
                    hr.deficits
                );
            }
            for d in case.forbid {
                assert!(
                    !hr.deficits.contains(d),
                    "{:?} host {} must not carry {d:?}",
                    case.class,
                    host.address
                );
            }
        }
    }
}

#[test]
fn clean_ca_signed_hosts_have_no_deficits() {
    let (_, _, report) = pipeline(StrataMix::new().with(HostClass::SecureCa, 3), 77);
    assert_eq!(report.hosts, 3);
    for hr in &report.host_reports {
        assert!(
            hr.deficits.is_empty(),
            "clean host {} flagged: {:?}",
            hr.address,
            hr.deficits
        );
    }
}

#[test]
fn certificate_reuse_cluster_detected_across_hosts() {
    let mix = StrataMix::new()
        .with(HostClass::ReusedCert, 4)
        .with(HostClass::SecureModern, 3);
    let (pop, _, report) = pipeline(mix, 0xBEEF);
    assert_eq!(report.count(Deficit::ReusedCertificate), 4);
    assert_eq!(report.reuse_clusters.len(), 1);
    let cluster = &report.reuse_clusters[0];
    assert_eq!(cluster.hosts.len(), 4);
    for host in pop.of_class(HostClass::ReusedCert) {
        assert!(cluster.hosts.contains(&host.address));
    }
    // Independent hosts are not flagged.
    for host in pop.of_class(HostClass::SecureModern) {
        let hr = report
            .host_reports
            .iter()
            .find(|h| h.address == host.address)
            .unwrap();
        assert!(!hr.deficits.contains(&Deficit::ReusedCertificate));
    }
}

#[test]
fn shared_prime_keys_found_by_batch_gcd() {
    let mix = StrataMix::new()
        .with(HostClass::SharedPrime, 3)
        .with(HostClass::SecureModern, 3);
    let (pop, _, report) = pipeline(mix, 0xF00D);
    assert_eq!(report.count(Deficit::SharedPrimeKey), 3);
    assert!(!report.shared_prime_pairs.is_empty());
    for host in pop.of_class(HostClass::SharedPrime) {
        let hr = report
            .host_reports
            .iter()
            .find(|h| h.address == host.address)
            .unwrap();
        assert!(hr.deficits.contains(&Deficit::SharedPrimeKey));
        // Distinct certificates — this is weak keygen, not cert reuse.
        assert!(!hr.deficits.contains(&Deficit::ReusedCertificate));
    }
    for host in pop.of_class(HostClass::SecureModern) {
        let hr = report
            .host_reports
            .iter()
            .find(|h| h.address == host.address)
            .unwrap();
        assert!(!hr.deficits.contains(&Deficit::SharedPrimeKey));
    }
}

#[test]
fn discovery_servers_classified_and_exempt_from_data_rules() {
    let mix = StrataMix::new()
        .with(HostClass::WideOpen, 2)
        .with(HostClass::DiscoveryServer, 2);
    let (pop, records, report) = pipeline(mix, 0xD15C);
    assert_eq!(report.discovery_servers, 2);
    for host in pop.of_class(HostClass::DiscoveryServer) {
        let record = records.iter().find(|r| r.address == host.address).unwrap();
        assert!(record.is_discovery_server());
        assert!(
            !record.referred_urls().is_empty(),
            "LDS must reference other deployments"
        );
        let hr = report
            .host_reports
            .iter()
            .find(|h| h.address == host.address)
            .unwrap();
        assert!(hr.deficits.contains(&Deficit::OnlyNoneMode));
        assert!(!hr.deficits.contains(&Deficit::DataReadable));
    }
}

#[test]
fn aggregate_counts_match_ground_truth_on_paper_mix() {
    let mix = StrataMix::paper_like(40);
    let (pop, _, report) = pipeline(mix, 2020);
    let n = |c| pop.count(c);

    assert_eq!(report.hosts, pop.len());
    // Referral-only strata are found (with provenance) despite being
    // invisible to the sweep.
    assert_eq!(
        report.referrals.referral_only_hosts,
        n(HostClass::HiddenServer) + n(HostClass::ChainedLds)
    );
    assert_eq!(
        report.count(Deficit::OnlyNoneMode),
        n(HostClass::WideOpen)
            + n(HostClass::BrokenSession)
            + n(HostClass::DiscoveryServer)
            + n(HostClass::ChainedLds)
    );
    assert_eq!(
        report.count(Deficit::DeprecatedPolicy),
        n(HostClass::DeprecatedOnly) + n(HostClass::MixedLegacy)
    );
    assert_eq!(
        report.count(Deficit::ExpiredCertificate),
        n(HostClass::ExpiredCert)
    );
    assert_eq!(
        report.count(Deficit::CertificateTooWeak),
        n(HostClass::WeakCert)
    );
    assert_eq!(
        report.count(Deficit::ReusedCertificate),
        n(HostClass::ReusedCert)
    );
    assert_eq!(
        report.count(Deficit::SharedPrimeKey),
        n(HostClass::SharedPrime)
    );
    assert_eq!(
        report.count(Deficit::AnonymousAccess),
        n(HostClass::WideOpen)
            + n(HostClass::MixedLegacy)
            + n(HostClass::BrokenSession)
            + n(HostClass::DiscoveryServer)
            + n(HostClass::HiddenServer)
            + n(HostClass::ChainedLds)
    );
    assert_eq!(
        report.count(Deficit::BrokenSessionConfig),
        n(HostClass::BrokenSession)
    );
    assert_eq!(
        report.count(Deficit::DataReadable),
        n(HostClass::WideOpen) + n(HostClass::MixedLegacy) + n(HostClass::HiddenServer)
    );
    // Writable/executable data matches the deployed address spaces.
    let writable_hosts = pop
        .hosts
        .iter()
        .filter(|h| {
            matches!(
                h.class,
                HostClass::WideOpen | HostClass::MixedLegacy | HostClass::HiddenServer
            ) && h.writable_variables > 0
        })
        .count();
    assert_eq!(report.count(Deficit::DataWritable), writable_hosts);
    let executable_hosts = pop
        .hosts
        .iter()
        .filter(|h| {
            matches!(
                h.class,
                HostClass::WideOpen | HostClass::MixedLegacy | HostClass::HiddenServer
            ) && h.executable_methods > 0
        })
        .count();
    assert_eq!(report.count(Deficit::MethodsExecutable), executable_hosts);
    // Self-signed: every certificate-bearing class except the CA-signed one.
    assert_eq!(
        report.count(Deficit::SelfSignedCertificate),
        n(HostClass::DeprecatedOnly)
            + n(HostClass::MixedLegacy)
            + n(HostClass::SecureModern)
            + n(HostClass::ExpiredCert)
            + n(HostClass::WeakCert)
            + n(HostClass::ReusedCert)
            + n(HostClass::SharedPrime)
            + n(HostClass::HiddenServer)
    );
    // Sessions: anonymous activation succeeds on wide-open, mixed,
    // hidden, and discovery hosts; broken hosts land in the
    // auth-rejected column.
    assert_eq!(
        report.sessions.anonymous_activated,
        n(HostClass::WideOpen)
            + n(HostClass::MixedLegacy)
            + n(HostClass::DiscoveryServer)
            + n(HostClass::HiddenServer)
            + n(HostClass::ChainedLds)
    );
    assert_eq!(report.sessions.auth_rejected, n(HostClass::BrokenSession));
}

#[test]
fn referral_port_novelty_judged_against_campaign_port_not_4840() {
    use netsim::Ipv4;
    use scanner::DiscoveredVia;

    // A campaign swept on port 4841: a referral host on 4841 is *not*
    // novel, while one on 4840 is.
    let mut swept =
        ScanRecord::for_target(Ipv4::new(10, 0, 0, 1), 4841, DiscoveredVia::Sweep, 0, 0);
    swept.opcua_mut().hello_ok = true;
    let referrer = swept.address;
    let mut same_port = ScanRecord::for_target(
        Ipv4::new(10, 0, 0, 2),
        4841,
        DiscoveredVia::Referral {
            from: referrer,
            depth: 1,
        },
        0,
        0,
    );
    same_port.opcua_mut().hello_ok = true;
    let mut odd_port = ScanRecord::for_target(
        Ipv4::new(10, 0, 0, 3),
        4840,
        DiscoveredVia::Referral {
            from: referrer,
            depth: 1,
        },
        0,
        0,
    );
    odd_port.opcua_mut().hello_ok = true;

    let report = assess(&[swept, same_port, odd_port]);
    assert_eq!(report.referrals.referral_only_hosts, 2);
    assert_eq!(report.referrals.non_default_port_hosts, 1);
}

#[test]
fn same_seed_produces_identical_aggregates() {
    let run = |seed| {
        let (_, _, report) = pipeline(StrataMix::paper_like(35), seed);
        report
    };
    let a = run(314);
    let b = run(314);
    assert_eq!(a.hosts, b.hosts);
    assert_eq!(a.deficit_counts, b.deficit_counts);
    assert_eq!(a.mode_distribution, b.mode_distribution);
    assert_eq!(a.policy_distribution, b.policy_distribution);
    assert_eq!(a.token_distribution, b.token_distribution);
    assert_eq!(
        a.reuse_clusters
            .iter()
            .map(|c| &c.thumbprint_hex)
            .collect::<Vec<_>>(),
        b.reuse_clusters
            .iter()
            .map(|c| &c.thumbprint_hex)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        a.sessions.anonymous_activated,
        b.sessions.anonymous_activated
    );
    assert_eq!(a.sessions.auth_rejected, b.sessions.auth_rejected);
    // And the rendered report itself is stable.
    assert_eq!(a.to_string(), b.to_string());
}
