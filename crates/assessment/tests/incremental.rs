//! Incremental assessment must be a refactoring, not a reinterpretation:
//! folding records one at a time and finalizing yields exactly the report
//! the batch `assess()` builds from the same slice.

use assessment::{assess, Assessor, Deficit};
use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{synthesize, PopulationConfig, StrataMix};
use scanner::{ScanConfig, ScanRecord, Scanner};

fn scan_population(seed: u64) -> Vec<ScanRecord> {
    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.77.0.0/22".parse().unwrap();
    let cfg = PopulationConfig::new(seed, vec![universe], StrataMix::paper_like(70));
    synthesize(&net, &cfg);
    let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
    scanner.scan_collect(&[universe], seed).1
}

#[test]
fn fold_finalize_equals_batch_assess() {
    let records = scan_population(11);
    assert!(records.len() > 30, "need a meaningful population");

    let batch = assess(&records);

    let mut assessor = Assessor::new();
    for record in &records {
        assessor.fold(record);
    }
    let incremental = assessor.finalize();

    // The Display form covers hosts, distributions, every deficit count,
    // session tallies, reuse clusters, and shared-prime pairs.
    assert_eq!(batch.to_string(), incremental.to_string());

    assert_eq!(batch.hosts, incremental.hosts);
    assert_eq!(batch.non_opcua, incremental.non_opcua);
    assert_eq!(batch.discovery_servers, incremental.discovery_servers);
    assert_eq!(batch.deficit_counts, incremental.deficit_counts);
    assert_eq!(batch.host_reports.len(), incremental.host_reports.len());
    for (a, b) in batch.host_reports.iter().zip(&incremental.host_reports) {
        assert_eq!(a.address, b.address);
        assert_eq!(a.asn, b.asn);
        assert_eq!(a.is_discovery_server, b.is_discovery_server);
        assert_eq!(a.deficits, b.deficits);
    }
    assert_eq!(batch.reuse_clusters.len(), incremental.reuse_clusters.len());
    for (a, b) in batch.reuse_clusters.iter().zip(&incremental.reuse_clusters) {
        assert_eq!(a.thumbprint_hex, b.thumbprint_hex);
        assert_eq!(a.hosts, b.hosts);
    }
    assert_eq!(
        batch.shared_prime_pairs.len(),
        incremental.shared_prime_pairs.len()
    );
}

#[test]
fn running_counts_grow_monotonically_and_match_finalized_per_host_rules() {
    let records = scan_population(23);
    let mut assessor = Assessor::new();
    let mut last_anon = 0;
    for record in &records {
        assessor.fold(record);
        let anon = assessor.running_count(Deficit::AnonymousAccess);
        assert!(anon >= last_anon, "running counts never decrease");
        last_anon = anon;
    }
    let hosts_seen = assessor.hosts_seen();
    let non_opcua_seen = assessor.non_opcua_seen();
    // Cross-host deficits are unattributable before finalize.
    assert_eq!(assessor.running_count(Deficit::SharedPrimeKey), 0);
    let anon_running = assessor.running_count(Deficit::AnonymousAccess);

    let report = assessor.finalize();
    assert_eq!(report.hosts, hosts_seen);
    assert_eq!(report.non_opcua, non_opcua_seen);
    // Per-host rule counts carry over unchanged into the final report.
    assert_eq!(report.count(Deficit::AnonymousAccess), anon_running);
}
