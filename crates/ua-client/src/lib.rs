//! # ua-client
//!
//! An OPC UA client over the simulated network: UACP handshake, secure
//! channels (all six policies), sessions with every identity-token type,
//! discovery, attribute services, and a budgeted recursive address-space
//! traversal — everything the paper's zgrab2 module does (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod traverse;

pub use client::{ClientConfig, UaClient};
pub use error::ClientError;
pub use traverse::{traverse, Traversal, TraversalBudget, TraversedNode};

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Internet, Ipv4, VirtualClock};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use ua_addrspace::{NodeAccess, SpaceBuilder};
    use ua_crypto::{
        Certificate, CertificateBuilder, DistinguishedName, HashAlgorithm, RsaPrivateKey,
    };
    use ua_proto::services::IdentityToken;
    use ua_server::{EndpointConfig, ServerConfig, ServerCore, UaServerService};
    use ua_types::*;

    const SERVER_IP: Ipv4 = Ipv4(0x0A000001);
    const URL: &str = "opc.tcp://10.0.0.1:4840/";

    fn cert_key(seed: u64, uri: &str) -> (Certificate, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = RsaPrivateKey::generate(&mut rng, 256, 2048);
        let cert = CertificateBuilder::new(DistinguishedName::new("peer", "Org"))
            .application_uri(uri)
            .self_signed(HashAlgorithm::Sha256, &key);
        (cert, key)
    }

    fn spawn_server(config: ServerConfig) -> (Internet, VirtualClock) {
        let clock = VirtualClock::starting_at(1_581_206_400);
        let net = Internet::new(clock.clone());
        let mut b = SpaceBuilder::new(&["urn:acme:waterworks"], "2.0");
        let plant = b.folder(None, "Plant");
        b.variable(
            &plant,
            "m3InflowPerHour",
            Variant::Double(12.5),
            NodeAccess::read_only(),
        );
        b.variable(
            &plant,
            "rSetFillLevel",
            Variant::Float(80.0),
            NodeAccess::read_write_all(),
        );
        b.method(&plant, "AddEndpoint", true);
        let space = b.finish();
        let core = ServerCore::new(config, space, 11);
        net.add_host(SERVER_IP, 10_000);
        net.bind(SERVER_IP, 4840, Arc::new(UaServerService::new(core, 5)));
        (net, clock)
    }

    fn scanner_client(net: &Internet, clock: &VirtualClock) -> UaClient<netsim::TcpStreamSim> {
        let (cert, key) = cert_key(99, "urn:research:scanner");
        let stream = net
            .connect(Ipv4::new(192, 0, 2, 1), SERVER_IP, 4840)
            .unwrap();
        let config = ClientConfig {
            certificate: Some(cert),
            private_key: Some(key),
            politeness_delay_millis: 500,
            ..ClientConfig::default()
        };
        UaClient::new(stream, clock.clone(), config, 42)
    }

    #[test]
    fn discovery_over_insecure_channel() {
        let cfg = ServerConfig::wide_open("urn:acme:dev", URL);
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        let endpoints = client.get_endpoints(URL).unwrap();
        assert_eq!(endpoints.len(), 1);
        assert!(endpoints[0].allows_anonymous());
    }

    #[test]
    fn full_anonymous_walk() {
        let cfg = ServerConfig::wide_open("urn:acme:dev", URL);
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        client.create_session(URL).unwrap();
        client
            .activate_session(IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            })
            .unwrap();

        let result = traverse(&mut client, &TraversalBudget::default()).unwrap();
        assert!(!result.truncated);
        let names: Vec<&str> = result
            .nodes
            .iter()
            .map(|n| n.browse_name.as_str())
            .collect();
        assert!(names.contains(&"Plant"));
        assert!(names.contains(&"m3InflowPerHour"));
        assert!(names.contains(&"rSetFillLevel"));
        assert!(names.contains(&"AddEndpoint"));
        assert!(names.contains(&"NamespaceArray"));

        let inflow = result
            .nodes
            .iter()
            .find(|n| n.browse_name == "m3InflowPerHour")
            .unwrap();
        assert!(inflow.readable);
        assert!(!inflow.writable);
        assert_eq!(inflow.value, Some(Variant::Double(12.5)));

        let fill = result
            .nodes
            .iter()
            .find(|n| n.browse_name == "rSetFillLevel")
            .unwrap();
        assert!(fill.writable);

        let method = result
            .nodes
            .iter()
            .find(|n| n.browse_name == "AddEndpoint")
            .unwrap();
        assert!(method.executable);

        let (r, w, x) = result.access_fractions();
        assert!(r > 0.9, "most variables readable, got {r}");
        assert!(w > 0.0 && w < 0.5, "some writable, got {w}");
        assert!(x > 0.0, "method executable, got {x}");

        assert!(result.requests > 5);
    }

    #[test]
    fn secure_channel_end_to_end() {
        let (server_cert, server_key) = cert_key(7, "urn:acme:secure");
        let mut cfg =
            ServerConfig::recommended("urn:acme:secure", URL, server_cert.clone(), server_key);
        cfg.token_types.push(UserTokenType::Anonymous);
        cfg.endpoints.push(EndpointConfig::none());
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        // Discover over None, then reopen securely — like the paper's
        // scanner.
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        let endpoints = client.get_endpoints(URL).unwrap();
        let secure_ep = endpoints
            .iter()
            .find(|e| e.security_mode == MessageSecurityMode::SignAndEncrypt)
            .unwrap();
        let cert = Certificate::from_der(secure_ep.server_certificate.as_ref().unwrap()).unwrap();
        assert_eq!(cert.thumbprint(), server_cert.thumbprint());

        client
            .open_channel(
                SecurityPolicy::Basic256Sha256,
                MessageSecurityMode::SignAndEncrypt,
                Some(&cert),
            )
            .unwrap();
        client.create_session(URL).unwrap();
        client
            .activate_session(IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            })
            .unwrap();
        let values = client
            .read(vec![(
                NodeId::string(1, "m3InflowPerHour"),
                AttributeId::Value,
            )])
            .unwrap();
        assert_eq!(values[0].value, Some(Variant::Double(12.5)));
    }

    #[test]
    fn username_authentication() {
        let (server_cert, server_key) = cert_key(8, "urn:acme:auth");
        let mut cfg = ServerConfig::recommended("urn:acme:auth", URL, server_cert, server_key);
        cfg.endpoints.push(EndpointConfig::none());
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        client.create_session(URL).unwrap();

        // Wrong password rejected.
        let err = client
            .activate_session(IdentityToken::UserName {
                policy_id: Some("user".into()),
                user_name: Some("operator".into()),
                password: Some(b"guess".to_vec()),
                encryption_algorithm: None,
            })
            .unwrap_err();
        assert!(err.is_auth_rejection(), "{err:?}");

        // Correct credentials accepted.
        client
            .activate_session(IdentityToken::UserName {
                policy_id: Some("user".into()),
                user_name: Some("operator".into()),
                password: Some(b"correct horse battery staple".to_vec()),
                encryption_algorithm: None,
            })
            .unwrap();
    }

    #[test]
    fn foreign_cert_rejected_at_channel() {
        let (server_cert, server_key) = cert_key(9, "urn:acme:strict");
        let mut cfg =
            ServerConfig::recommended("urn:acme:strict", URL, server_cert.clone(), server_key);
        cfg.reject_foreign_certs = true;
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        let err = client
            .open_channel(
                SecurityPolicy::Basic256Sha256,
                MessageSecurityMode::SignAndEncrypt,
                Some(&server_cert),
            )
            .unwrap_err();
        assert!(err.is_channel_rejection(), "{err:?}");
    }

    #[test]
    fn write_and_call_respect_access() {
        let cfg = ServerConfig::wide_open("urn:acme:dev", URL);
        let (net, clock) = spawn_server(cfg);
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        client.create_session(URL).unwrap();
        client
            .activate_session(IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            })
            .unwrap();
        // rSetFillLevel is writable by anyone (the paper's nightmare).
        let st = client
            .write(NodeId::string(1, "rSetFillLevel"), Variant::Float(99.9))
            .unwrap();
        assert_eq!(st, StatusCode::GOOD);
        // m3InflowPerHour is read-only.
        let st = client
            .write(NodeId::string(1, "m3InflowPerHour"), Variant::Double(0.0))
            .unwrap();
        assert_eq!(st, StatusCode::BAD_NOT_WRITABLE);
        // AddEndpoint is anonymously executable.
        let result = client
            .call(NodeId::string(1, "Plant"), NodeId::string(1, "AddEndpoint"))
            .unwrap();
        assert_eq!(result.status_code, StatusCode::GOOD);
    }

    #[test]
    fn politeness_delay_advances_clock() {
        let cfg = ServerConfig::wide_open("urn:acme:dev", URL);
        let (net, clock) = spawn_server(cfg);
        let start = clock.now_micros();
        let mut client = scanner_client(&net, &clock);
        client.handshake(URL).unwrap();
        client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .unwrap();
        let _ = client.get_endpoints(URL).unwrap();
        // Three requests → at least 2 politeness pauses of 500 ms.
        assert!(clock.now_micros() - start >= 1_000_000);
    }
}
