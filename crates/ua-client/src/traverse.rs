//! Budgeted address-space traversal — the scanner's deepest probe
//! (§4/§5.4 of the paper).
//!
//! From `Objects`, the traversal walks all forward references
//! breadth-first, records every node with its effective anonymous access
//! rights (`UserAccessLevel`, `UserExecutable`), reads readable values,
//! and respects the paper's politeness budget: 500 ms between requests
//! (enforced by the client), 60 minutes and 50 MB per host.

use crate::client::UaClient;
use crate::error::ClientError;
use netsim::ByteStream;
use std::collections::HashSet;
use ua_types::{AttributeId, NodeClass, NodeId, Variant};

/// Traversal budget (Appendix A.2 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct TraversalBudget {
    /// Maximum virtual time on one host, milliseconds (paper: 60 min).
    pub max_millis: u64,
    /// Maximum outgoing traffic, bytes (paper: 50 MB).
    pub max_tx_bytes: u64,
    /// Safety cap on visited nodes.
    pub max_nodes: usize,
}

impl Default for TraversalBudget {
    fn default() -> Self {
        TraversalBudget {
            max_millis: 60 * 60 * 1000,
            max_tx_bytes: 50 * 1024 * 1024,
            max_nodes: 100_000,
        }
    }
}

/// A node discovered during traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct TraversedNode {
    /// The node id.
    pub node_id: NodeId,
    /// Browse name text.
    pub browse_name: String,
    /// Namespace index of the browse name.
    pub namespace_index: u16,
    /// Node class.
    pub node_class: NodeClass,
    /// Anonymous user may read (variables).
    pub readable: bool,
    /// Anonymous user may write (variables).
    pub writable: bool,
    /// Anonymous user may execute (methods).
    pub executable: bool,
    /// Value, when readable and read succeeded.
    pub value: Option<Variant>,
}

/// Result of traversing one host.
#[derive(Debug, Clone, Default)]
pub struct Traversal {
    /// All discovered nodes.
    pub nodes: Vec<TraversedNode>,
    /// True when a budget limit forced early disconnect.
    pub truncated: bool,
    /// Requests issued during traversal.
    pub requests: u64,
}

impl Traversal {
    /// Fractions of (readable, writable) variables and (executable)
    /// methods — the per-host data points of Figure 7.
    pub fn access_fractions(&self) -> (f64, f64, f64) {
        let variables: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.node_class == NodeClass::Variable)
            .collect();
        let methods: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.node_class == NodeClass::Method)
            .collect();
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        (
            frac(
                variables.iter().filter(|n| n.readable).count(),
                variables.len(),
            ),
            frac(
                variables.iter().filter(|n| n.writable).count(),
                variables.len(),
            ),
            frac(
                methods.iter().filter(|n| n.executable).count(),
                methods.len(),
            ),
        )
    }
}

/// Walks the address space of the connected, activated session.
pub fn traverse<S: ByteStream>(
    client: &mut UaClient<S>,
    budget: &TraversalBudget,
) -> Result<Traversal, ClientError> {
    let start_requests = client.requests_sent();
    let start_millis = client.clock().now_micros() / 1000;
    let start_tx = client.stats().tx_bytes;

    let mut out = Traversal::default();
    let mut queue: Vec<NodeId> = vec![NodeId::numeric(0, 85)]; // ObjectsFolder
    let mut seen: HashSet<NodeId> = queue.iter().cloned().collect();

    'walk: while let Some(node) = queue.pop() {
        // Budget checks before each request burst.
        let elapsed = client.clock().now_micros() / 1000 - start_millis;
        let tx = client.stats().tx_bytes - start_tx;
        if elapsed > budget.max_millis
            || tx > budget.max_tx_bytes
            || out.nodes.len() >= budget.max_nodes
        {
            out.truncated = true;
            break 'walk;
        }

        let mut result = client.browse(node, 0)?;
        loop {
            for reference in &result.references {
                let target = reference.node_id.node_id.clone();
                if !seen.insert(target.clone()) {
                    continue;
                }
                let mut record = TraversedNode {
                    node_id: target.clone(),
                    browse_name: reference.browse_name.name.clone().unwrap_or_default(),
                    namespace_index: reference.browse_name.namespace_index,
                    node_class: reference.node_class,
                    readable: false,
                    writable: false,
                    executable: false,
                    value: None,
                };
                match reference.node_class {
                    NodeClass::Variable => {
                        let values = client.read(vec![
                            (target.clone(), AttributeId::UserAccessLevel),
                            (target.clone(), AttributeId::Value),
                        ])?;
                        if let Some(Variant::Byte(level)) =
                            values.first().and_then(|dv| dv.value.clone())
                        {
                            record.readable = level & 0x01 != 0;
                            record.writable = level & 0x02 != 0;
                        }
                        if let Some(dv) = values.get(1) {
                            if dv.is_good() {
                                record.value = dv.value.clone();
                            }
                        }
                    }
                    NodeClass::Method => {
                        let values =
                            client.read(vec![(target.clone(), AttributeId::UserExecutable)])?;
                        if let Some(Variant::Boolean(x)) =
                            values.first().and_then(|dv| dv.value.clone())
                        {
                            record.executable = x;
                        }
                    }
                    _ => {}
                }
                out.nodes.push(record);
                queue.push(target);
            }
            match result.continuation_point.take() {
                Some(cp) => result = client.browse_next(cp)?,
                None => break,
            }
        }
    }

    out.requests = client.requests_sent() - start_requests;
    Ok(out)
}
