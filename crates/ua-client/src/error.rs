//! Client error taxonomy.
//!
//! The scanner needs to *distinguish* failure stages (Table 2 separates
//! "Secure Channel" rejections from "Authentication" rejections), so the
//! error type preserves where in the exchange a host failed.

use netsim::StreamError;
use ua_proto::secure::SecureError;
use ua_types::{CodecError, StatusCode};

/// Errors from client operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The byte stream failed (peer closed).
    Stream(StreamError),
    /// A reply could not be decoded.
    Codec(CodecError),
    /// Message security processing failed.
    Secure(SecureError),
    /// The server sent a transport-level `ERR` (e.g. it aborted the
    /// secure-channel handshake rejecting our certificate).
    Remote {
        /// Status code from the ERR message.
        status: StatusCode,
        /// Reason string, if any.
        reason: Option<String>,
    },
    /// The server answered with a `ServiceFault`.
    Fault(StatusCode),
    /// The server sent a structurally valid but unexpected response.
    UnexpectedResponse,
    /// The server sent nothing where a reply was required.
    NoReply,
    /// The client is not in the right state (e.g. no open channel).
    BadState(&'static str),
}

impl From<StreamError> for ClientError {
    fn from(e: StreamError) -> Self {
        ClientError::Stream(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

impl From<SecureError> for ClientError {
    fn from(e: SecureError) -> Self {
        ClientError::Secure(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Stream(e) => write!(f, "stream error: {e}"),
            ClientError::Codec(e) => write!(f, "codec error: {e}"),
            ClientError::Secure(e) => write!(f, "security error: {e}"),
            ClientError::Remote { status, reason } => write!(
                f,
                "server error {status}{}",
                reason
                    .as_deref()
                    .map(|r| format!(": {r}"))
                    .unwrap_or_default()
            ),
            ClientError::Fault(s) => write!(f, "service fault: {s}"),
            ClientError::UnexpectedResponse => write!(f, "unexpected response type"),
            ClientError::NoReply => write!(f, "no reply from server"),
            ClientError::BadState(s) => write!(f, "bad client state: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True when the failure happened at the secure-channel stage
    /// (Table 2 column "Secure Channel").
    pub fn is_channel_rejection(&self) -> bool {
        matches!(self, ClientError::Remote { .. } | ClientError::Secure(_))
    }

    /// True when the failure is an authentication/session rejection
    /// (Table 2 column "Authentication").
    pub fn is_auth_rejection(&self) -> bool {
        matches!(
            self,
            ClientError::Fault(
                StatusCode::BAD_IDENTITY_TOKEN_REJECTED
                    | StatusCode::BAD_IDENTITY_TOKEN_INVALID
                    | StatusCode::BAD_USER_ACCESS_DENIED
                    | StatusCode::BAD_INTERNAL_ERROR
                    | StatusCode::BAD_SESSION_ID_INVALID
                    | StatusCode::BAD_SESSION_NOT_ACTIVATED
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let chan = ClientError::Remote {
            status: StatusCode::BAD_CERTIFICATE_UNTRUSTED,
            reason: None,
        };
        assert!(chan.is_channel_rejection());
        assert!(!chan.is_auth_rejection());

        let auth = ClientError::Fault(StatusCode::BAD_IDENTITY_TOKEN_REJECTED);
        assert!(auth.is_auth_rejection());
        assert!(!auth.is_channel_rejection());

        let other = ClientError::NoReply;
        assert!(!other.is_auth_rejection());
        assert!(!other.is_channel_rejection());
    }

    #[test]
    fn display_includes_detail() {
        let e = ClientError::Remote {
            status: StatusCode::BAD_SECURITY_CHECKS_FAILED,
            reason: Some("nope".into()),
        };
        let s = format!("{e}");
        assert!(s.contains("nope"));
        assert!(s.contains("BAD_SECURITY_CHECKS_FAILED"));
    }
}
