//! The OPC UA client: handshake, secure channels, sessions, services.

use crate::error::ClientError;
use netsim::{ByteStream, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ua_crypto::{Certificate, RsaPrivateKey};
use ua_proto::chunk::{chunk_message, Reassembler};
use ua_proto::secure::{
    derive_keys, open_asymmetric, open_symmetric, policy_crypto, seal_asymmetric, DerivedKeys,
    SequenceHeader,
};
use ua_proto::services::*;
use ua_proto::transport::{FrameReader, Hello, TransportMessage};
use ua_types::*;

/// Client configuration. The paper's scanner identifies itself through
/// `application_name` and its certificate (Appendix A.2: contact data in
/// both).
#[derive(Clone)]
pub struct ClientConfig {
    /// Application URI.
    pub application_uri: String,
    /// Application name (the scanner places contact info here).
    pub application_name: String,
    /// Client certificate for secure channels.
    pub certificate: Option<Certificate>,
    /// Matching private key.
    pub private_key: Option<RsaPrivateKey>,
    /// Delay between consecutive requests to one server, in virtual
    /// milliseconds (the paper used 500 ms).
    pub politeness_delay_millis: u64,
    /// Payload bytes per outgoing chunk.
    pub chunk_body: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            application_uri: "urn:research:scanner".into(),
            application_name: "Internet measurement study - contact research@scan.example.org"
                .into(),
            certificate: None,
            private_key: None,
            politeness_delay_millis: 500,
            chunk_body: 8192,
        }
    }
}

struct Channel {
    id: u32,
    token_id: u32,
    policy: SecurityPolicy,
    mode: MessageSecurityMode,
    /// Keys for messages the client sends.
    local_keys: Option<DerivedKeys>,
    /// Keys for messages the server sends.
    remote_keys: Option<DerivedKeys>,
    next_sequence: u32,
    next_request_id: u32,
    reassembler: Reassembler,
}

struct SessionHandle {
    authentication_token: NodeId,
}

/// An OPC UA client over any [`ByteStream`].
pub struct UaClient<S: ByteStream> {
    stream: S,
    clock: VirtualClock,
    config: ClientConfig,
    rng: StdRng,
    channel: Option<Channel>,
    session: Option<SessionHandle>,
    requests_sent: u64,
    first_request_done: bool,
}

impl<S: ByteStream> UaClient<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S, clock: VirtualClock, config: ClientConfig, seed: u64) -> Self {
        UaClient {
            stream,
            clock,
            config,
            rng: StdRng::seed_from_u64(seed),
            channel: None,
            session: None,
            requests_sent: 0,
            first_request_done: false,
        }
    }

    /// Number of requests sent so far.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Traffic statistics from the underlying stream.
    pub fn stats(&self) -> netsim::ConnectionStats {
        self.stream.stats()
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn politeness_pause(&mut self) {
        if self.first_request_done {
            self.clock
                .advance_millis(self.config.politeness_delay_millis);
        }
        self.first_request_done = true;
        self.requests_sent += 1;
    }

    fn now(&self) -> UaDateTime {
        UaDateTime::from_unix_seconds(self.clock.now_unix_seconds())
    }

    fn auth_token(&self) -> NodeId {
        self.session
            .as_ref()
            .map(|s| s.authentication_token.clone())
            .unwrap_or(NodeId::NULL)
    }

    /// Collects all currently available reply bytes into frames.
    fn drain_frames(&mut self) -> Result<Vec<Vec<u8>>, ClientError> {
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match self.stream.recv() {
                Ok(Some(bytes)) => reader.push(&bytes),
                Ok(None) => break,
                // Peer closed: anything already queued (e.g. a final ERR
                // before the RST) is still parsed below.
                Err(netsim::StreamError::Closed) => break,
            }
        }
        while let Some(frame) = reader.next_raw_frame()? {
            frames.push(frame);
        }
        Ok(frames)
    }

    /// UACP handshake: HEL → ACK.
    pub fn handshake(&mut self, endpoint_url: &str) -> Result<(), ClientError> {
        self.politeness_pause();
        let hello = TransportMessage::Hello(Hello {
            endpoint_url: Some(endpoint_url.to_string()),
            ..Hello::default()
        });
        self.stream.send(&hello.encode())?;
        let frames = self.drain_frames()?;
        let frame = frames.first().ok_or(ClientError::NoReply)?;
        match TransportMessage::decode(frame)? {
            TransportMessage::Acknowledge(_) => Ok(()),
            TransportMessage::Error(e) => Err(ClientError::Remote {
                status: e.error,
                reason: e.reason,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Opens a secure channel with the given policy/mode. For policies
    /// other than `None`, `server_certificate` (from GetEndpoints) and a
    /// client certificate/key (from the config) are required.
    pub fn open_channel(
        &mut self,
        policy: SecurityPolicy,
        mode: MessageSecurityMode,
        server_certificate: Option<&Certificate>,
    ) -> Result<(), ClientError> {
        self.politeness_pause();
        let client_nonce = if policy == SecurityPolicy::None {
            None
        } else {
            // ua-lint: allow(panic-hygiene) -- every policy except None has crypto parameters
            let params = policy_crypto(policy).expect("non-None policy");
            let nonce: Vec<u8> = (0..params.nonce_len)
                .map(|_| rand::Rng::gen(&mut self.rng))
                .collect();
            Some(nonce)
        };

        let body = ServiceBody::OpenSecureChannelRequest(OpenSecureChannelRequest {
            request_header: RequestHeader::new(NodeId::NULL, 1, self.now()),
            client_protocol_version: 0,
            request_type: SecurityTokenRequestType::Issue,
            security_mode: mode,
            client_nonce: client_nonce.clone(),
            requested_lifetime: 3_600_000,
        })
        .encode_to_vec();

        let cert_der = self.config.certificate.as_ref().map(|c| c.to_der());
        let raw = seal_asymmetric(
            &mut self.rng,
            policy,
            self.config.private_key.as_ref(),
            cert_der.as_deref(),
            server_certificate,
            0,
            SequenceHeader {
                sequence_number: 1,
                request_id: 1,
            },
            &body,
        )?;
        self.stream.send(&raw)?;

        let frames = self.drain_frames()?;
        let frame = frames.first().ok_or(ClientError::NoReply)?;
        if &frame[0..3] == b"ERR" {
            return match TransportMessage::decode(frame)? {
                TransportMessage::Error(e) => Err(ClientError::Remote {
                    status: e.error,
                    reason: e.reason,
                }),
                _ => Err(ClientError::UnexpectedResponse),
            };
        }
        let opened = open_asymmetric(self.config.private_key.as_ref(), frame)?;
        let response = match ServiceBody::decode_all(&opened.opened.body)? {
            ServiceBody::OpenSecureChannelResponse(r) => r,
            ServiceBody::ServiceFault(f) => {
                return Err(ClientError::Fault(f.response_header.service_result))
            }
            _ => return Err(ClientError::UnexpectedResponse),
        };

        let (local_keys, remote_keys) = match (&client_nonce, &response.server_nonce) {
            (Some(cn), Some(sn)) if policy != SecurityPolicy::None => {
                // Client keys: P_SHA(secret=serverNonce, seed=clientNonce).
                (derive_keys(policy, sn, cn), derive_keys(policy, cn, sn))
            }
            _ => (None, None),
        };

        self.channel = Some(Channel {
            id: response.security_token.channel_id,
            token_id: response.security_token.token_id,
            policy,
            mode,
            local_keys,
            remote_keys,
            next_sequence: 2,
            next_request_id: 2,
            reassembler: Reassembler::new(4096, 16 * 1024 * 1024),
        });
        Ok(())
    }

    /// Sends one service request over the open channel and returns the
    /// response body.
    pub fn request(&mut self, body: ServiceBody) -> Result<ServiceBody, ClientError> {
        self.politeness_pause();
        let channel = self
            .channel
            .as_mut()
            .ok_or(ClientError::BadState("no open channel"))?;
        let request_id = channel.next_request_id;
        channel.next_request_id += 1;
        let first_seq = channel.next_sequence;
        let chunks = chunk_message(
            channel.policy,
            channel.mode,
            channel.local_keys.as_ref(),
            channel.id,
            channel.token_id,
            first_seq,
            request_id,
            &body.encode_to_vec(),
            self.config.chunk_body,
        )?;
        channel.next_sequence = first_seq + chunks.len() as u32;
        let policy = channel.policy;
        let mode = channel.mode;

        for chunk in &chunks {
            self.stream.send(chunk)?;
        }

        let frames = self.drain_frames()?;
        if frames.is_empty() {
            return Err(ClientError::NoReply);
        }
        // ua-lint: allow(panic-hygiene) -- the open-channel check above makes this infallible
        let channel = self.channel.as_mut().expect("channel still open");
        let mut assembled = None;
        for frame in &frames {
            if &frame[0..3] == b"ERR" {
                return match TransportMessage::decode(frame)? {
                    TransportMessage::Error(e) => Err(ClientError::Remote {
                        status: e.error,
                        reason: e.reason,
                    }),
                    _ => Err(ClientError::UnexpectedResponse),
                };
            }
            let opened = open_symmetric(policy, mode, channel.remote_keys.as_ref(), frame)?;
            if let Some(msg) = channel
                .reassembler
                .push(opened.chunk, opened.sequence, &opened.body)
                .map_err(|_| ClientError::UnexpectedResponse)?
            {
                assembled = Some(msg);
            }
        }
        let assembled = assembled.ok_or(ClientError::NoReply)?;
        match ServiceBody::decode_all(&assembled.body)? {
            ServiceBody::ServiceFault(f) => {
                Err(ClientError::Fault(f.response_header.service_result))
            }
            other => Ok(other),
        }
    }

    /// GetEndpoints over the open channel.
    pub fn get_endpoints(
        &mut self,
        endpoint_url: &str,
    ) -> Result<Vec<EndpointDescription>, ClientError> {
        let body = ServiceBody::GetEndpointsRequest(GetEndpointsRequest {
            request_header: RequestHeader::new(NodeId::NULL, 2, self.now()),
            endpoint_url: Some(endpoint_url.to_string()),
            locale_ids: vec![],
            profile_uris: vec![],
        });
        match self.request(body)? {
            ServiceBody::GetEndpointsResponse(r) => Ok(r.endpoints),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// FindServers over the open channel (discovery servers announce
    /// other hosts/ports here).
    pub fn find_servers(
        &mut self,
        endpoint_url: &str,
    ) -> Result<Vec<ApplicationDescription>, ClientError> {
        let body = ServiceBody::FindServersRequest(FindServersRequest {
            request_header: RequestHeader::new(NodeId::NULL, 2, self.now()),
            endpoint_url: Some(endpoint_url.to_string()),
            locale_ids: vec![],
            server_uris: vec![],
        });
        match self.request(body)? {
            ServiceBody::FindServersResponse(r) => Ok(r.servers),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Creates a session.
    pub fn create_session(&mut self, endpoint_url: &str) -> Result<(), ClientError> {
        let cert_der = self.config.certificate.as_ref().map(|c| c.to_der());
        let body = ServiceBody::CreateSessionRequest(CreateSessionRequest {
            request_header: RequestHeader::new(NodeId::NULL, 3, self.now()),
            client_description: ApplicationDescription::server(
                self.config.application_uri.clone(),
                self.config.application_name.clone(),
            ),
            server_uri: None,
            endpoint_url: Some(endpoint_url.to_string()),
            session_name: Some("measurement".into()),
            client_nonce: Some((0..32).map(|_| rand::Rng::gen(&mut self.rng)).collect()),
            client_certificate: cert_der,
            requested_session_timeout: 120_000.0,
            max_response_message_size: 1 << 20,
        });
        match self.request(body)? {
            ServiceBody::CreateSessionResponse(r) => {
                self.session = Some(SessionHandle {
                    authentication_token: r.authentication_token,
                });
                Ok(())
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Activates the session with the given identity.
    pub fn activate_session(&mut self, identity: IdentityToken) -> Result<(), ClientError> {
        let token = self.auth_token();
        if token.is_null() {
            return Err(ClientError::BadState("no session"));
        }
        let body = ServiceBody::ActivateSessionRequest(ActivateSessionRequest {
            request_header: RequestHeader::new(token, 4, self.now()),
            client_signature: SignatureData::default(),
            locale_ids: vec!["en".into()],
            user_identity_token: identity.to_extension_object(),
            user_token_signature: SignatureData::default(),
        });
        match self.request(body)? {
            ServiceBody::ActivateSessionResponse(_) => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Browses forward references of `node`.
    pub fn browse(&mut self, node: NodeId, max_refs: u32) -> Result<BrowseResult, ClientError> {
        let token = self.auth_token();
        let body = ServiceBody::BrowseRequest(BrowseRequest {
            request_header: RequestHeader::new(token, 5, self.now()),
            view: ViewDescription::default(),
            requested_max_references_per_node: max_refs,
            nodes_to_browse: vec![BrowseDescription::all_forward(node)],
        });
        match self.request(body)? {
            ServiceBody::BrowseResponse(mut r) if !r.results.is_empty() => Ok(r.results.remove(0)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Continues a browse with a continuation point.
    pub fn browse_next(&mut self, continuation: Vec<u8>) -> Result<BrowseResult, ClientError> {
        let token = self.auth_token();
        let body = ServiceBody::BrowseNextRequest(BrowseNextRequest {
            request_header: RequestHeader::new(token, 6, self.now()),
            release_continuation_points: false,
            continuation_points: vec![continuation],
        });
        match self.request(body)? {
            ServiceBody::BrowseNextResponse(mut r) if !r.results.is_empty() => {
                Ok(r.results.remove(0))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Reads attributes.
    pub fn read(
        &mut self,
        nodes: Vec<(NodeId, AttributeId)>,
    ) -> Result<Vec<DataValue>, ClientError> {
        let token = self.auth_token();
        let body = ServiceBody::ReadRequest(ReadRequest {
            request_header: RequestHeader::new(token, 7, self.now()),
            max_age: 0.0,
            timestamps_to_return: 3,
            nodes_to_read: nodes
                .into_iter()
                .map(|(n, a)| ReadValueId::new(n, a.id()))
                .collect(),
        });
        match self.request(body)? {
            ServiceBody::ReadResponse(r) => Ok(r.results),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Writes a variable value. The *paper's scanner never writes*
    /// (Appendix A.1); this exists for the operator-facing examples and
    /// access-control tests.
    pub fn write(&mut self, node: NodeId, value: Variant) -> Result<StatusCode, ClientError> {
        let token = self.auth_token();
        let body = ServiceBody::WriteRequest(WriteRequest {
            request_header: RequestHeader::new(token, 8, self.now()),
            nodes_to_write: vec![WriteValue {
                node_id: node,
                attribute_id: AttributeId::Value.id(),
                index_range: None,
                value: DataValue::new(value),
            }],
        });
        match self.request(body)? {
            ServiceBody::WriteResponse(r) => {
                Ok(r.results.first().copied().unwrap_or(StatusCode::GOOD))
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Calls a method (not used by the scanner; see [`Self::write`]).
    pub fn call(
        &mut self,
        object: NodeId,
        method: NodeId,
    ) -> Result<CallMethodResult, ClientError> {
        let token = self.auth_token();
        let body = ServiceBody::CallRequest(CallRequest {
            request_header: RequestHeader::new(token, 9, self.now()),
            methods_to_call: vec![CallMethodRequest {
                object_id: object,
                method_id: method,
                input_arguments: vec![],
            }],
        });
        match self.request(body)? {
            ServiceBody::CallResponse(mut r) if !r.results.is_empty() => Ok(r.results.remove(0)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Closes the session.
    pub fn close_session(&mut self) -> Result<(), ClientError> {
        let token = self.auth_token();
        if token.is_null() {
            return Ok(());
        }
        let body = ServiceBody::CloseSessionRequest(CloseSessionRequest {
            request_header: RequestHeader::new(token, 10, self.now()),
            delete_subscriptions: true,
        });
        let _ = self.request(body)?;
        self.session = None;
        Ok(())
    }
}
