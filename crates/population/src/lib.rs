//! # population
//!
//! Seeded synthesis of OPC UA deployment populations across the
//! simulated IPv4 Internet.
//!
//! Every configuration stratum the paper observes in the wild (§5–§6) is
//! representable: security mode `None`, deprecated `Basic128Rsa15`/
//! `Basic256` policies, self-signed / expired / too-weak certificates,
//! certificate reuse across hosts, RSA keys sharing a prime factor,
//! anonymous access, broken session configurations, and discovery
//! servers referencing other deployments. [`synthesize`] instantiates a
//! [`StrataMix`] of those host classes onto a [`netsim::Internet`] —
//! deterministically for a fixed seed — and returns per-host ground
//! truth so the `assessment` layer can be validated end to end.
//!
//! Worlds come in two flavors sharing one derivation: [`synthesize`]
//! builds every host up front (eager), while [`LazyWorld`] registers an
//! O(1) occupancy predicate and materializes a host only when a probe
//! first reaches it — million-address universes cost memory
//! proportional to the hosts a sweep actually touches. Every host is a
//! pure function of `(seed, host id, week)` — an internal `WorldSpec`
//! answers layout queries in O(1) and per-host RNG streams supply the
//! material — so the two paths are byte-identical at any scanner
//! worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolution;
pub mod middlebox;
pub mod multiproto;
mod spec;
mod world;

pub use evolution::{ChurnConfig, ChurnEvent, EvolvingWorld, TruthObservation, WeekChurn};
pub use middlebox::{FaultStratum, HostFault, MiddleboxConfig, MiddleboxPlan};
pub use multiproto::{
    population_vendor_counts, MultiProtoConfig, MultiProtoPlan, TlsClass, TlsHostTruth,
};
pub use world::{LazyWorld, MaterializationStats};

use netsim::{AsKind, AsRegistry, Cidr, Internet, Ipv4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
// ua-lint: allow(unordered-iteration) -- allocation membership checks only, never iterated
use std::collections::HashSet;
use std::sync::Arc;
use ua_addrspace::{AddressSpace, NodeAccess, SpaceBuilder};
use ua_crypto::{
    BigUint, Certificate, CertificateBuilder, DistinguishedName, HashAlgorithm, RsaPrivateKey,
};
use ua_server::{EndpointConfig, ServerConfig, ServerCore, UaServerService, UserAccount};
use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType, Variant};

/// Actual modulus bits for population keys (nominal sizes are what
/// certificates advertise; see `ua-crypto::rsa` docs for the scaling).
const ACTUAL_KEY_BITS: usize = 192;

/// The configuration strata of the study, one per host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HostClass {
    /// Only mode/policy `None`, anonymous access, no certificate — the
    /// paper's fully insecure quarter of the population.
    WideOpen,
    /// Only deprecated policies (D1/D2) with username auth.
    DeprecatedOnly,
    /// `None` plus deprecated plus secure endpoints, anonymous allowed —
    /// the common "supports everything" configuration.
    MixedLegacy,
    /// Secure policies only, username auth, valid self-signed cert.
    SecureModern,
    /// Secure policies only, CA-signed certificate — the rare clean host.
    SecureCa,
    /// Secure endpoints but the certificate's validity window has ended.
    ExpiredCert,
    /// Secure policy advertised, but the certificate is SHA-1-signed
    /// with a 1024-bit key — too weak for the policy (§5.2's 409 hosts).
    WeakCert,
    /// The same certificate and key deployed on many hosts (§5.3's
    /// reuse clusters, up to 385 hosts in the wild).
    ReusedCert,
    /// Distinct certificates whose RSA keys share a prime factor
    /// (what batch GCD would have found had vendors botched keygen).
    SharedPrime,
    /// Anonymous access is advertised but session establishment fails —
    /// faulty/incomplete endpoint configuration (§5.4).
    BrokenSession,
    /// A local discovery server referencing other deployments (42 % of
    /// the paper's hosts). Besides real servers it also announces a
    /// self-referral spelled in a non-canonical way, a dead referral,
    /// and its share of hidden/chained deployments — the URL zoo the
    /// paper's 2020-05-04 scanner extension had to survive.
    DiscoveryServer,
    /// A server on a *non-default* port, invisible to the sweep and
    /// reachable only via an LDS referral — the host category the
    /// paper's referral-following change surfaced (>1000 servers).
    HiddenServer,
    /// A discovery server on a non-default port, itself referenced by a
    /// default-port LDS: referral *chains*. Chained LDS reference their
    /// referrer back (A→B→A) and each other in a cycle, so they double
    /// as the loop stratum.
    ChainedLds,
}

impl HostClass {
    /// All classes in a stable order.
    pub const ALL: [HostClass; 13] = [
        HostClass::WideOpen,
        HostClass::DeprecatedOnly,
        HostClass::MixedLegacy,
        HostClass::SecureModern,
        HostClass::SecureCa,
        HostClass::ExpiredCert,
        HostClass::WeakCert,
        HostClass::ReusedCert,
        HostClass::SharedPrime,
        HostClass::BrokenSession,
        HostClass::DiscoveryServer,
        HostClass::HiddenServer,
        HostClass::ChainedLds,
    ];

    /// True for classes deployed on a non-default port, reachable only
    /// through LDS referrals.
    pub fn referral_only(self) -> bool {
        matches!(self, HostClass::HiddenServer | HostClass::ChainedLds)
    }
}

/// How many hosts of each class to deploy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrataMix {
    counts: Vec<(HostClass, usize)>,
}

impl StrataMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` hosts of `class` (builder style).
    pub fn with(mut self, class: HostClass, count: usize) -> Self {
        self.counts.push((class, count));
        self
    }

    /// Number of hosts of `class`.
    pub fn count(&self, class: HostClass) -> usize {
        self.counts
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total host count.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// The class of every host, in deployment order. (The non-test
    /// paths derive classes by rank arithmetic in `spec::WorldSpec`
    /// instead of expanding the roster.)
    #[cfg(test)]
    fn expand(&self) -> Vec<HostClass> {
        let mut v = Vec::with_capacity(self.total());
        for &(class, n) in &self.counts {
            v.extend(std::iter::repeat_n(class, n));
        }
        v
    }

    /// A mix whose class shares roughly follow the paper's findings:
    /// ~40 % discovery servers; among the actual servers ~26 % offer only
    /// `None`, ~45 % offer deprecated policies, half allow anonymous
    /// access, and certificate-hygiene deficits appear in small but
    /// non-zero numbers.
    ///
    /// `total` is clamped to a minimum of 30 so every stratum is
    /// represented at least once — check [`StrataMix::total`] on the
    /// result rather than assuming the requested count.
    pub fn paper_like(total: usize) -> Self {
        let t = total.max(30);
        let servers = t * 3 / 5; // ~60 % actual servers, rest LDS
        let wide_open = (servers * 26 / 100).max(1);
        let deprecated = (servers * 18 / 100).max(1);
        let mixed = (servers * 18 / 100).max(1);
        let secure_ca = (servers * 4 / 100).max(1);
        let expired = (servers * 4 / 100).max(1);
        let weak = (servers * 4 / 100).max(1);
        let reused = (servers * 8 / 100).max(2);
        let shared = 2; // kept tiny: the paper found *none* in the wild
        let broken = (servers * 4 / 100).max(1);
        let used =
            wide_open + deprecated + mixed + secure_ca + expired + weak + reused + shared + broken;
        let secure_modern = servers.saturating_sub(used).max(1);
        // Hosts hidden behind discovery servers: servers on non-default
        // ports plus chained LDS (the paper's referral-only category).
        let hidden = (t * 6 / 100).max(2);
        let chained = (t * 2 / 100).max(1);
        // Discovery servers absorb the rounding slack so the mix always
        // sums to the requested total.
        let discovery = t - used - secure_modern - hidden - chained;
        StrataMix::new()
            .with(HostClass::WideOpen, wide_open)
            .with(HostClass::DeprecatedOnly, deprecated)
            .with(HostClass::MixedLegacy, mixed)
            .with(HostClass::SecureModern, secure_modern)
            .with(HostClass::SecureCa, secure_ca)
            .with(HostClass::ExpiredCert, expired)
            .with(HostClass::WeakCert, weak)
            .with(HostClass::ReusedCert, reused)
            .with(HostClass::SharedPrime, shared)
            .with(HostClass::BrokenSession, broken)
            .with(HostClass::DiscoveryServer, discovery)
            .with(HostClass::HiddenServer, hidden)
            .with(HostClass::ChainedLds, chained)
    }
}

/// Population synthesis parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Master seed: everything (addresses, keys, address spaces, RTTs)
    /// derives from it.
    pub seed: u64,
    /// Address blocks hosts are placed into.
    pub universe: Vec<Cidr>,
    /// Host classes and counts.
    pub mix: StrataMix,
    /// TCP port servers listen on.
    pub port: u16,
}

impl PopulationConfig {
    /// A config with the default port.
    pub fn new(seed: u64, universe: Vec<Cidr>, mix: StrataMix) -> Self {
        PopulationConfig {
            seed,
            universe,
            mix,
            port: 4840,
        }
    }
}

/// Ground truth for one deployed host — what the scanner *should* find.
#[derive(Debug, Clone)]
pub struct HostGroundTruth {
    /// Deployed address.
    pub address: Ipv4,
    /// TCP port the server listens on (non-default for referral-only
    /// classes).
    pub port: u16,
    /// Configuration stratum.
    pub class: HostClass,
    /// Application URI announced by the server.
    pub application_uri: String,
    /// Synthetic vendor name.
    pub vendor: &'static str,
    /// Thumbprint of the served certificate, if any.
    pub cert_thumbprint: Option<[u8; 20]>,
    /// Certificate-reuse cluster id ([`HostClass::ReusedCert`] hosts).
    pub reuse_group: Option<usize>,
    /// Shared-prime cluster id ([`HostClass::SharedPrime`] hosts).
    pub shared_prime_group: Option<usize>,
    /// Variables in the address space (0 for discovery servers).
    pub variables: usize,
    /// Variables writable anonymously.
    pub writable_variables: usize,
    /// Methods in the address space.
    pub methods: usize,
    /// Methods executable anonymously.
    pub executable_methods: usize,
}

/// A deployed population with its ground truth.
#[derive(Debug, Clone)]
pub struct Population {
    /// Per-host ground truth, in deployment order.
    pub hosts: Vec<HostGroundTruth>,
    /// The universe hosts were placed into.
    pub universe: Vec<Cidr>,
}

impl Population {
    /// Number of deployed hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True if nothing was deployed.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Hosts of a given class.
    pub fn of_class(&self, class: HostClass) -> impl Iterator<Item = &HostGroundTruth> {
        self.hosts.iter().filter(move |h| h.class == class)
    }

    /// Number of hosts of a given class.
    pub fn count(&self, class: HostClass) -> usize {
        self.of_class(class).count()
    }

    /// Ground truth for `address`.
    pub fn host(&self, address: Ipv4) -> Option<&HostGroundTruth> {
        self.hosts.iter().find(|h| h.address == address)
    }
}

/// Synthetic vendors — the manufacturer diversity behind the paper's
/// ApplicationUri clustering (§4).
const VENDORS: [(&str, &str); 6] = [
    ("Bachfeld", "urn:bachfeld.example:M1:OpcUaServer"),
    ("Siegwart", "urn:siegwart.example:S7:OpcUa"),
    ("Acme Automation", "urn:acme.example:device"),
    ("Hydrotec", "urn:hydrotec.example:scada"),
    ("Voltaris", "urn:voltaris.example:rtu"),
    ("Ferrum Works", "urn:ferrum.example:plc"),
];

/// Industrial-flavored variable names for synthetic address spaces.
const VARIABLE_NAMES: [&str; 10] = [
    "m3InflowPerHour",
    "rSetFillLevel",
    "uiPumpState",
    "rBoilerTemp",
    "bValveOpen",
    "iMotorRpm",
    "rFlowSetpoint",
    "sBatchId",
    "rTankPressure",
    "uiAlarmCount",
];

/// Salt separating the shared-secrets RNG stream from every per-host
/// stream.
const SHARED_SALT: u64 = 0x5348_4152_4544;

pub(crate) struct Synthesizer {
    pub(crate) rng: StdRng,
    pub(crate) serial: u64,
}

impl Synthesizer {
    /// The synthesizer for host `id`'s material: its RNG stream and
    /// certificate-serial window depend on `(seed, id)` alone, never on
    /// synthesis order — the property lazy materialization rests on.
    /// Host `id` owns serials `[(id+1)e6, (id+2)e6)`; synthesis draws
    /// the first few, weekly events the rest (see `world::serial_for`).
    pub(crate) fn for_host(seed: u64, id: u64) -> Self {
        Synthesizer {
            rng: StdRng::seed_from_u64(spec::host_material_seed(seed, id)),
            serial: (id + 1) * 1_000_000,
        }
    }

    /// The synthesizer for cross-host material ([`SharedSecrets`]),
    /// on its own stream and serial window (below every host's).
    pub(crate) fn for_shared(seed: u64) -> Self {
        Synthesizer {
            rng: StdRng::seed_from_u64(spec::mix64(seed ^ SHARED_SALT)),
            serial: 0,
        }
    }

    fn vendor(&mut self) -> (&'static str, String) {
        let (name, prefix) = VENDORS[self.rng.gen_range(0..VENDORS.len())];
        self.serial += 1;
        (name, format!("{prefix}:{:06}", self.serial))
    }

    fn key(&mut self, nominal_bits: u32) -> RsaPrivateKey {
        RsaPrivateKey::generate(&mut self.rng, ACTUAL_KEY_BITS, nominal_bits)
    }

    /// Self-signed cert with the given hash/validity/nominal key length.
    fn cert(
        &mut self,
        vendor: &'static str,
        uri: &str,
        hash: HashAlgorithm,
        not_before: i64,
        not_after: i64,
        key: &RsaPrivateKey,
    ) -> Certificate {
        self.serial += 1;
        CertificateBuilder::new(DistinguishedName::new(
            format!("dev-{}", self.serial),
            vendor,
        ))
        .serial(self.serial)
        .validity(not_before, not_after)
        .application_uri(uri)
        .self_signed(hash, key)
    }

    /// A small industrial address space; returns (space, vars, writable,
    /// methods, executable methods).
    fn address_space(
        &mut self,
        uri: &str,
        version: &str,
    ) -> (AddressSpace, usize, usize, usize, usize) {
        let mut b = SpaceBuilder::new(&[uri], version);
        let folders = self.rng.gen_range(1..4usize);
        let mut variables = 0;
        let mut writable = 0;
        let mut methods = 0;
        let mut executable = 0;
        for f in 0..folders {
            let folder = b.folder(None, &format!("Subsystem{f}"));
            let vars = self.rng.gen_range(2..14usize);
            for v in 0..vars {
                let name = VARIABLE_NAMES[self.rng.gen_range(0..VARIABLE_NAMES.len())];
                let value = match self.rng.gen_range(0..4u32) {
                    0 => Variant::Double(self.rng.gen_range(0.0..100.0)),
                    1 => Variant::Float(self.rng.gen_range(0.0..100.0) as f32),
                    2 => Variant::Int32(self.rng.gen_range(0..10_000u64) as i32),
                    _ => Variant::Boolean(self.rng.gen_bool(0.5)),
                };
                let access = if self.rng.gen_bool(0.2) {
                    writable += 1;
                    NodeAccess::read_write_all()
                } else {
                    NodeAccess::read_only()
                };
                variables += 1;
                b.variable(&folder, &format!("{name}_{f}_{v}"), value, access);
            }
            if self.rng.gen_bool(0.5) {
                methods += 1;
                let anon_exec = self.rng.gen_bool(0.5);
                executable += anon_exec as usize;
                b.method(&folder, &format!("Maintenance{f}"), anon_exec);
            }
        }
        (b.finish(), variables, writable, methods, executable)
    }

    fn software_version(&mut self) -> String {
        format!(
            "{}.{}.{}",
            self.rng.gen_range(1..4u32),
            self.rng.gen_range(0..10u32),
            self.rng.gen_range(0..20u32)
        )
    }
}

/// The software version host `id` deploys with, derived without
/// building the host: replays the first draws of `build_host`'s
/// per-host stream (vendor, then version). The evolution engine needs
/// it to make upgrade/downgrade decisions for unmaterialized hosts.
pub(crate) fn initial_version(seed: u64, id: u64) -> String {
    let mut syn = Synthesizer::for_host(seed, id);
    let _ = syn.vendor();
    syn.software_version()
}

/// Installs the synthetic AS registry for `cfg.universe` on `net`: one
/// AS per universe block, kinds cycling through the registry's five
/// flavors.
pub(crate) fn setup_registry(net: &Internet, cfg: &PopulationConfig) {
    let mut registry = AsRegistry::new();
    let kinds = [
        AsKind::IotIsp,
        AsKind::RegionalIsp,
        AsKind::Hosting,
        AsKind::Enterprise,
        AsKind::Research,
    ];
    for (i, block) in cfg.universe.iter().enumerate() {
        let handle = registry.register(
            64_512 + i as u32,
            format!("AS-SIM-{i}"),
            kinds[i % kinds.len()],
        );
        registry.announce(handle, *block);
    }
    net.set_registry(registry);
}

/// Deterministic referral wiring: which URLs each discovery host
/// announces beyond its random same-port picks.
///
/// * every [`HostClass::ChainedLds`] is referenced by a default-port
///   LDS (round-robin) and references that referrer *back* — the
///   A→B→A loop the scanner's dedup must terminate;
/// * chained LDS also reference each other in a cycle (loops entirely
///   inside the referral phase);
/// * every [`HostClass::HiddenServer`] is referenced by exactly one
///   discovery host, alternating between default-port LDS (chain
///   depth one) and chained LDS (deeper), so each hidden server is
///   reachable and chains actually deepen.
///
/// Default-port discovery servers are the only entry point the sweep
/// can find: a mix without any [`HostClass::DiscoveryServer`] gets no
/// referral wiring at all — chained LDS and hidden servers then stay
/// deliberately unreachable rather than forming a stranded island that
/// *looks* wired but can never be discovered.
///
/// Superseded by the per-host inversion in `spec::WorldSpec::ref_specs`
/// (which needs no global vectors); kept as the reference
/// implementation the spec's wiring is tested against.
#[cfg(test)]
fn plan_referrals(classes: &[HostClass], addresses: &[Ipv4], ports: &[u16]) -> Vec<Vec<String>> {
    let url_of = |j: usize| format!("opc.tcp://{}:{}/", addresses[j], ports[j]);
    let of_class = |class: HostClass| -> Vec<usize> {
        classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == class)
            .map(|(j, _)| j)
            .collect()
    };
    let discovery = of_class(HostClass::DiscoveryServer);
    let mut planned: Vec<Vec<String>> = vec![Vec::new(); classes.len()];
    if discovery.is_empty() {
        return planned;
    }
    let chained = of_class(HostClass::ChainedLds);
    let hidden = of_class(HostClass::HiddenServer);

    for (c, &idx) in chained.iter().enumerate() {
        let referrer = discovery[c % discovery.len()];
        planned[referrer].push(url_of(idx));
        planned[idx].push(url_of(referrer));
    }
    if chained.len() > 1 {
        for (c, &idx) in chained.iter().enumerate() {
            planned[idx].push(url_of(chained[(c + 1) % chained.len()]));
        }
    }
    for (h, &idx) in hidden.iter().enumerate() {
        let referrer = if !chained.is_empty() && h % 2 == 1 {
            chained[(h / 2) % chained.len()]
        } else {
            discovery[h % discovery.len()]
        };
        planned[referrer].push(url_of(idx));
    }
    planned
}

/// Draws a universe address not yet in `used` (and reserves it).
/// Shared by initial synthesis and the weekly evolution step (DHCP-style
/// reassignment, arrivals).
pub(crate) fn pick_free_address(
    rng: &mut StdRng,
    universe: &[Cidr],
    // ua-lint: allow(unordered-iteration) -- rejection-sampling membership only, never iterated
    used: &mut HashSet<u32>,
) -> Ipv4 {
    let sizes: Vec<u64> = universe.iter().map(Cidr::size).collect();
    let total: u64 = sizes.iter().sum();
    // CIDR blocks are either disjoint or nested, so the number of
    // *distinct* addresses is the size sum of the blocks not
    // contained in another block. Guarding on `total` alone would
    // loop forever on overlapping universes.
    let distinct: u64 = universe
        .iter()
        .enumerate()
        .filter(|(i, block)| {
            !universe.iter().enumerate().any(|(j, outer)| {
                i != &j
                    && outer.contains(block.base)
                    && (outer.prefix_len < block.prefix_len
                        || (outer.prefix_len == block.prefix_len && j < *i))
            })
        })
        .map(|(_, block)| block.size())
        .sum();
    assert!(
        (used.len() as u64) < distinct,
        "universe too small for population"
    );
    loop {
        let mut idx = rng.gen_range(0..total);
        for (block, &size) in universe.iter().zip(&sizes) {
            if idx < size {
                let addr = Ipv4(block.base.0.wrapping_add(idx as u32));
                if used.insert(addr.0) {
                    return addr;
                }
                break;
            }
            idx -= size;
        }
    }
}

/// Cross-host secrets shared by several strata: the CA key behind
/// [`HostClass::SecureCa`], the certificate and key every
/// [`HostClass::ReusedCert`] host serves, and the prime factor the
/// [`HostClass::SharedPrime`] keys have in common. Kept alive for the
/// whole study so population *evolution* (weekly arrivals, certificate
/// renewals) stays consistent with the initial deployment.
pub(crate) struct SharedSecrets {
    pub(crate) ca_key: RsaPrivateKey,
    pub(crate) reused_key: RsaPrivateKey,
    pub(crate) reused_cert: Certificate,
    pub(crate) shared_prime: BigUint,
}

impl SharedSecrets {
    pub(crate) fn generate(syn: &mut Synthesizer, now: i64) -> Self {
        let ca_key = syn.key(4096);
        let reused_key = syn.key(2048);
        let (reused_vendor, reused_uri) = syn.vendor();
        let reused_cert = syn.cert(
            reused_vendor,
            &reused_uri,
            HashAlgorithm::Sha256,
            now - 3 * 365 * 86_400,
            now + 5 * 365 * 86_400,
            &reused_key,
        );
        let shared_prime = ua_crypto::generate_prime(&mut syn.rng, ACTUAL_KEY_BITS / 2);
        SharedSecrets {
            ca_key,
            reused_key,
            reused_cert,
            shared_prime,
        }
    }
}

/// Everything needed to (re)bind one host onto the simulated Internet:
/// the scanner-facing ground truth plus the full server material. The
/// longitudinal engine ([`evolution::EvolvingWorld`]) mutates these and
/// redeploys hosts week over week — IP reassignment, certificate
/// renewal, software upgrades, deficit remediation — without touching
/// the synthesis logic.
#[derive(Clone)]
pub struct HostDeployment {
    /// What the scanner should find on this host.
    pub truth: HostGroundTruth,
    /// The deployed server configuration (endpoints, tokens,
    /// certificate, referrals, software version).
    pub config: ServerConfig,
    /// The served address space.
    pub space: AddressSpace,
    /// Simulated round-trip time in microseconds.
    pub rtt_micros: u32,
    /// Seed of the server core (session ids, nonces).
    pub core_seed: u64,
    /// Seed of the per-connection service wrapper.
    pub service_seed: u64,
}

/// A fully materialized population: per-host deployments in roster
/// order. (Weekly campaigns use [`evolution::EvolvingWorld`], which
/// derives the same hosts through the shared world engine.)
pub struct Deployment {
    /// Per-host deployments, in deployment order.
    pub hosts: Vec<HostDeployment>,
    /// The universe hosts were placed into.
    pub universe: Vec<Cidr>,
}

impl Deployment {
    /// The ground-truth view of the deployment (what [`synthesize`]
    /// returns).
    pub fn population(&self) -> Population {
        Population {
            hosts: self.hosts.iter().map(|d| d.truth.clone()).collect(),
            universe: self.universe.clone(),
        }
    }
}

/// Binds a deployment onto the network: (re)creates the host entry and
/// its server core with the deployment's seeds. Idempotent — the
/// evolution engine rebinds hosts whenever their material changes.
pub(crate) fn bind_deployment(net: &Internet, dep: &HostDeployment, now: i64) {
    let core = ServerCore::new(dep.config.clone(), dep.space.clone(), dep.core_seed);
    core.set_time(now);
    // One atomic host+listener insert: a lazy world materializes hosts
    // while scanner workers are probing, and no worker may ever observe
    // a host without its service.
    net.install_host(
        dep.truth.address,
        dep.rtt_micros,
        vec![(
            dep.truth.port,
            Arc::new(UaServerService::new(core, dep.service_seed)) as _,
        )],
    );
}

/// Parameters for building one host's deployment material.
pub(crate) struct BuildParams {
    pub(crate) class: HostClass,
    pub(crate) address: Ipv4,
    pub(crate) port: u16,
    /// Fully resolved referral URLs this host announces (computed by
    /// the caller: random same-port picks, planned hidden/chained
    /// shares, self/dead/unresolvable decoys).
    pub(crate) referenced: Vec<String>,
    /// Stable host id: roster index, never reused across the study.
    pub(crate) id: u64,
    /// The population master seed (core/service seeds derive from it).
    pub(crate) seed: u64,
    pub(crate) now: i64,
}

/// Builds the deployment material for one host of `p.class`. Pure with
/// respect to the synthesizer's RNG stream: the same stream position
/// yields the same host.
pub(crate) fn build_host(
    syn: &mut Synthesizer,
    shared: &SharedSecrets,
    p: BuildParams,
) -> HostDeployment {
    let BuildParams {
        class,
        address,
        port,
        referenced,
        id,
        seed,
        now,
    } = p;
    let (vendor, uri) = syn.vendor();
    let url = format!("opc.tcp://{address}:{port}/");
    let version = syn.software_version();
    let valid = (now - 2 * 365 * 86_400, now + 4 * 365 * 86_400);

    let mut certificate = None;
    let mut private_key = None;
    let mut endpoints = Vec::new();
    let mut token_types = vec![UserTokenType::UserName];
    let mut users = vec![UserAccount {
        name: "operator".into(),
        password: format!("pw-{id}"),
    }];
    let mut broken_session = false;
    let mut is_discovery = false;
    let mut reuse_group = None;
    let mut shared_prime_group = None;

    match class {
        HostClass::WideOpen => {
            endpoints.push(EndpointConfig::none());
            token_types = vec![UserTokenType::Anonymous, UserTokenType::UserName];
            users.clear();
        }
        HostClass::DeprecatedOnly => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::Sign,
                SecurityPolicy::Basic128Rsa15,
            ));
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256,
            ));
            let key = syn.key(2048);
            certificate = Some(syn.cert(vendor, &uri, HashAlgorithm::Sha1, valid.0, valid.1, &key));
            private_key = Some(key);
        }
        HostClass::MixedLegacy => {
            endpoints.push(EndpointConfig::none());
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::Sign,
                SecurityPolicy::Basic256,
            ));
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            token_types = vec![UserTokenType::Anonymous, UserTokenType::UserName];
            let key = syn.key(2048);
            certificate =
                Some(syn.cert(vendor, &uri, HashAlgorithm::Sha256, valid.0, valid.1, &key));
            private_key = Some(key);
        }
        HostClass::SecureModern => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::Sign,
                SecurityPolicy::Basic256Sha256,
            ));
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            let key = syn.key(2048);
            certificate =
                Some(syn.cert(vendor, &uri, HashAlgorithm::Sha256, valid.0, valid.1, &key));
            private_key = Some(key);
        }
        HostClass::SecureCa => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Aes256Sha256RsaPss,
            ));
            token_types.push(UserTokenType::Certificate);
            let key = syn.key(2048);
            syn.serial += 1;
            let cert = CertificateBuilder::new(DistinguishedName::new(
                format!("dev-{}", syn.serial),
                vendor,
            ))
            .serial(syn.serial)
            .validity(valid.0, valid.1)
            .application_uri(&uri)
            .issued_by(
                HashAlgorithm::Sha256,
                DistinguishedName::new("Sim Root CA", "Sim Trust Services"),
                &shared.ca_key,
                &key.public,
            );
            certificate = Some(cert);
            private_key = Some(key);
        }
        HostClass::ExpiredCert => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            let key = syn.key(2048);
            // Expired a while before the scan.
            certificate = Some(syn.cert(
                vendor,
                &uri,
                HashAlgorithm::Sha256,
                now - 4 * 365 * 86_400,
                now - 90 * 86_400,
                &key,
            ));
            private_key = Some(key);
        }
        HostClass::WeakCert => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            let key = syn.key(1024);
            certificate = Some(syn.cert(vendor, &uri, HashAlgorithm::Sha1, valid.0, valid.1, &key));
            private_key = Some(key);
        }
        HostClass::ReusedCert => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::Sign,
                SecurityPolicy::Basic256Sha256,
            ));
            certificate = Some(shared.reused_cert.clone());
            private_key = Some(shared.reused_key.clone());
            reuse_group = Some(0);
        }
        HostClass::SharedPrime => {
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            let key = RsaPrivateKey::generate_with_shared_prime(
                &mut syn.rng,
                &shared.shared_prime,
                ACTUAL_KEY_BITS / 2,
                2048,
            );
            certificate =
                Some(syn.cert(vendor, &uri, HashAlgorithm::Sha256, valid.0, valid.1, &key));
            private_key = Some(key);
            shared_prime_group = Some(0);
        }
        HostClass::BrokenSession => {
            endpoints.push(EndpointConfig::none());
            token_types = vec![UserTokenType::Anonymous];
            users.clear();
            broken_session = true;
        }
        HostClass::DiscoveryServer | HostClass::ChainedLds => {
            endpoints.push(EndpointConfig::none());
            token_types = vec![UserTokenType::Anonymous];
            users.clear();
            is_discovery = true;
        }
        HostClass::HiddenServer => {
            // A production server that registered with an LDS and
            // listens on a non-default port: `None` plus a secure
            // endpoint, anonymous allowed — same deficit surface the
            // referral-discovered hosts showed in the wild.
            endpoints.push(EndpointConfig::none());
            endpoints.push(EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            ));
            token_types = vec![UserTokenType::Anonymous, UserTokenType::UserName];
            let key = syn.key(2048);
            certificate =
                Some(syn.cert(vendor, &uri, HashAlgorithm::Sha256, valid.0, valid.1, &key));
            private_key = Some(key);
        }
    }

    // Address space: discovery servers expose nothing of interest.
    let (space, variables, writable, methods, executable) = if is_discovery {
        (
            SpaceBuilder::new(&[uri.as_str()], &version).finish(),
            0,
            0,
            0,
            0,
        )
    } else {
        syn.address_space(&uri, &version)
    };

    let cert_thumbprint = certificate.as_ref().map(Certificate::thumbprint);
    let config = ServerConfig {
        application_uri: uri.clone(),
        application_name: format!("{vendor} OPC UA Server"),
        endpoint_url: url,
        endpoints,
        token_types,
        certificate,
        private_key,
        users,
        reject_foreign_certs: false,
        broken_session_config: broken_session,
        is_discovery_server: is_discovery,
        referenced_endpoints: referenced,
        software_version: version,
        max_references_per_browse: 64,
    };
    let rtt = syn.rng.gen_range(2_000..120_000u32);

    HostDeployment {
        truth: HostGroundTruth {
            address,
            port,
            class,
            application_uri: uri,
            vendor,
            cert_thumbprint,
            reuse_group,
            shared_prime_group,
            variables,
            writable_variables: writable,
            methods,
            executable_methods: executable,
        },
        config,
        space,
        rtt_micros: rtt,
        core_seed: seed ^ id.wrapping_mul(0x9E37),
        service_seed: seed ^ 0xC0FFEE ^ id,
    }
}

/// Renders host `id`'s symbolic referrals to URLs from the week-0
/// layout. The self-referral is deliberately non-canonical
/// (`OPC.TCP://…`, no trailing slash — URL-format variants the scanner
/// must not treat as new servers), the dead port a stale registration,
/// the internal name unresolvable.
pub(crate) fn render_spec_refs(spec: &spec::WorldSpec, id: u64) -> Vec<String> {
    spec.ref_specs(id)
        .iter()
        .map(|r| match r {
            spec::RefSpec::Host(j) => {
                format!("opc.tcp://{}:{}/", spec.address_of(*j), spec.port_of(*j))
            }
            spec::RefSpec::SelfNonCanonical => {
                format!("OPC.TCP://{}:{}", spec.address_of(id), spec.port_of(id))
            }
            spec::RefSpec::DeadPort => {
                format!(
                    "opc.tcp://{}:{}/",
                    spec.address_of(id),
                    spec.sweep_port + 90
                )
            }
            spec::RefSpec::Unresolvable => {
                format!("opc.tcp://plant-lds-{id}.internal:{}/", spec.sweep_port)
            }
        })
        .collect()
}

/// Builds host `id` in its week-0 state, entirely from the pure spec
/// and the per-host RNG stream. Shared by the eager builder below and
/// the lazy engine (`world::WorldCore`), which is what makes the two
/// byte-identical.
pub(crate) fn build_initial_host(
    spec: &spec::WorldSpec,
    shared: &SharedSecrets,
    id: u64,
    now: i64,
) -> HostDeployment {
    let mut syn = Synthesizer::for_host(spec.seed, id);
    build_host(
        &mut syn,
        shared,
        BuildParams {
            class: spec.class_of(id),
            address: spec.address_of(id),
            port: spec.port_of(id),
            referenced: render_spec_refs(spec, id),
            id,
            seed: spec.seed,
            now,
        },
    )
}

/// Deploys `cfg.mix` onto `net` and returns the full deployment —
/// ground truth plus the redeployable server material. Deterministic:
/// the same seed and mix produce byte-identical deployments, eagerly
/// here or lazily via [`LazyWorld`].
pub fn synthesize_deployment(net: &Internet, cfg: &PopulationConfig) -> Deployment {
    let now = net.clock().now_unix_seconds();
    setup_registry(net, cfg);
    let spec = spec::WorldSpec::new(cfg);
    let shared = SharedSecrets::generate(&mut Synthesizer::for_shared(cfg.seed), now);
    let mut hosts = Vec::with_capacity(spec.len() as usize);
    for id in 0..spec.len() {
        let dep = build_initial_host(&spec, &shared, id, now);
        bind_deployment(net, &dep, now);
        hosts.push(dep);
    }
    Deployment {
        hosts,
        universe: cfg.universe.clone(),
    }
}

/// Deploys `cfg.mix` onto `net`, returning ground truth. Deterministic:
/// the same seed and mix produce byte-identical deployments. (A thin
/// wrapper over [`synthesize_deployment`], which additionally returns
/// the redeployable server material.)
pub fn synthesize(net: &Internet, cfg: &PopulationConfig) -> Population {
    synthesize_deployment(net, cfg).population()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::VirtualClock;

    fn test_net() -> Internet {
        Internet::new(VirtualClock::starting_at(1_581_206_400))
    }

    fn universe() -> Vec<Cidr> {
        vec!["10.0.0.0/20".parse().unwrap()]
    }

    #[test]
    fn mix_counts_and_expansion() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 3)
            .with(HostClass::SecureModern, 2)
            .with(HostClass::WideOpen, 1);
        assert_eq!(mix.total(), 6);
        assert_eq!(mix.count(HostClass::WideOpen), 4);
        assert_eq!(mix.expand().len(), 6);
    }

    #[test]
    fn paper_like_mix_covers_all_classes() {
        let mix = StrataMix::paper_like(100);
        for class in HostClass::ALL {
            assert!(mix.count(class) > 0, "{class:?} missing from paper mix");
        }
        assert_eq!(mix.total(), 100);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = PopulationConfig::new(42, universe(), StrataMix::paper_like(20));
        let net_a = test_net();
        let pop_a = synthesize(&net_a, &cfg);
        let net_b = test_net();
        let pop_b = synthesize(&net_b, &cfg);
        assert_eq!(pop_a.len(), pop_b.len());
        for (a, b) in pop_a.hosts.iter().zip(&pop_b.hosts) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.class, b.class);
            assert_eq!(a.application_uri, b.application_uri);
            assert_eq!(a.cert_thumbprint, b.cert_thumbprint);
            assert_eq!(a.variables, b.variables);
        }
        assert_eq!(net_a.host_addresses(), net_b.host_addresses());
    }

    #[test]
    fn different_seeds_differ() {
        let mix = StrataMix::paper_like(20);
        let net_a = test_net();
        let pop_a = synthesize(&net_a, &PopulationConfig::new(1, universe(), mix.clone()));
        let net_b = test_net();
        let pop_b = synthesize(&net_b, &PopulationConfig::new(2, universe(), mix));
        let same_addr = pop_a
            .hosts
            .iter()
            .zip(&pop_b.hosts)
            .filter(|(a, b)| a.address == b.address)
            .count();
        assert!(same_addr < pop_a.len() / 2);
    }

    #[test]
    fn hosts_are_deployed_and_listening() {
        let cfg = PopulationConfig::new(7, universe(), StrataMix::paper_like(15));
        let net = test_net();
        let pop = synthesize(&net, &cfg);
        assert_eq!(net.host_count(), pop.len());
        for host in &pop.hosts {
            assert!(
                net.has_listener(host.address, host.port),
                "{}:{}",
                host.address,
                host.port
            );
            assert!(universe()[0].contains(host.address));
            // Every address got an AS assignment.
            assert_ne!(net.as_number(host.address), 0);
            // Referral-only classes are invisible on the sweep port.
            if host.class.referral_only() {
                assert_ne!(host.port, 4840);
                assert!(!net.has_listener(host.address, 4840));
            } else {
                assert_eq!(host.port, 4840);
            }
        }
    }

    #[test]
    fn referral_plan_reaches_every_hidden_host() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 2)
            .with(HostClass::DiscoveryServer, 2)
            .with(HostClass::HiddenServer, 5)
            .with(HostClass::ChainedLds, 2);
        let classes = mix.expand();
        let addresses: Vec<Ipv4> = (0..classes.len())
            .map(|i| Ipv4::new(10, 0, 0, 10 + i as u8))
            .collect();
        let ports: Vec<u16> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if c.referral_only() {
                    4841 + i as u16
                } else {
                    4840
                }
            })
            .collect();
        let planned = plan_referrals(&classes, &addresses, &ports);

        // Every hidden server and every chained LDS is announced
        // somewhere, with its real (non-default) port.
        let all: Vec<&String> = planned.iter().flatten().collect();
        for (j, class) in classes.iter().enumerate() {
            if class.referral_only() {
                let url = format!("opc.tcp://{}:{}/", addresses[j], ports[j]);
                assert!(all.iter().any(|u| **u == url), "{url} never announced");
            }
        }
        // Chained LDS loop back to their referrer and cycle among
        // themselves.
        let chained: Vec<usize> = classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == HostClass::ChainedLds)
            .map(|(j, _)| j)
            .collect();
        for &c in &chained {
            assert!(!planned[c].is_empty(), "chained LDS {c} refers to nothing");
        }
        // Plain servers and hidden servers announce nothing.
        for (j, class) in classes.iter().enumerate() {
            if matches!(class, HostClass::WideOpen | HostClass::HiddenServer) {
                assert!(planned[j].is_empty());
            }
        }
    }

    #[test]
    fn spec_wiring_matches_the_legacy_planner() {
        // The per-host inversion in `WorldSpec::ref_specs` must
        // reproduce the legacy global planner's round-robin wiring
        // exactly (random picks and decoys ride in front/behind it).
        let cfg = PopulationConfig::new(17, universe(), StrataMix::paper_like(40));
        let spec = spec::WorldSpec::new(&cfg);
        let classes = cfg.mix.expand();
        let addresses: Vec<Ipv4> = (0..spec.len()).map(|id| spec.address_of(id)).collect();
        let ports: Vec<u16> = (0..spec.len()).map(|id| spec.port_of(id)).collect();
        let planned = plan_referrals(&classes, &addresses, &ports);
        for id in 0..spec.len() {
            let rendered = render_spec_refs(&spec, id);
            match classes[id as usize] {
                HostClass::ChainedLds => {
                    assert_eq!(rendered, planned[id as usize], "chained LDS {id}");
                }
                HostClass::DiscoveryServer => {
                    let p = &planned[id as usize];
                    let start = rendered.len() - 3 - p.len();
                    assert_eq!(&rendered[start..start + p.len()], p.as_slice(), "LDS {id}");
                    for url in &rendered[..start] {
                        assert!(
                            classes.iter().enumerate().any(|(j, c)| {
                                !matches!(
                                    c,
                                    HostClass::DiscoveryServer
                                        | HostClass::HiddenServer
                                        | HostClass::ChainedLds
                                ) && *url == format!("opc.tcp://{}:{}/", addresses[j], ports[j])
                            }),
                            "{url} is not a swept non-LDS server"
                        );
                    }
                }
                _ => assert!(rendered.is_empty(), "host {id} should announce nothing"),
            }
        }
    }

    #[test]
    fn mix_without_default_port_lds_gets_no_referral_wiring() {
        // Without a sweep-visible entry point the referral island could
        // never be discovered; it must not be wired at all (no chained
        // cycles pointing into the void).
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 1)
            .with(HostClass::HiddenServer, 2)
            .with(HostClass::ChainedLds, 2);
        let classes = mix.expand();
        let addresses: Vec<Ipv4> = (0..5).map(|i| Ipv4::new(10, 0, 0, 1 + i)).collect();
        let ports = vec![4840, 4842, 4843, 4848, 4849];
        let planned = plan_referrals(&classes, &addresses, &ports);
        assert!(planned.iter().all(Vec::is_empty));
    }

    #[test]
    fn reused_cert_hosts_share_a_thumbprint() {
        let mix = StrataMix::new()
            .with(HostClass::ReusedCert, 4)
            .with(HostClass::SecureModern, 2);
        let net = test_net();
        let pop = synthesize(&net, &PopulationConfig::new(9, universe(), mix));
        let prints: Vec<_> = pop
            .of_class(HostClass::ReusedCert)
            .map(|h| h.cert_thumbprint.unwrap())
            .collect();
        assert_eq!(prints.len(), 4);
        assert!(prints.windows(2).all(|w| w[0] == w[1]));
        // The independent hosts do not share it.
        for h in pop.of_class(HostClass::SecureModern) {
            assert_ne!(h.cert_thumbprint.unwrap(), prints[0]);
        }
    }

    #[test]
    fn shared_prime_keys_actually_share_a_prime() {
        use ua_crypto::BigUint;
        let mix = StrataMix::new().with(HostClass::SharedPrime, 3);
        let net = test_net();
        let cfg = PopulationConfig::new(11, universe(), mix);
        let pop = synthesize(&net, &cfg);
        // Extract moduli from the served certificates via the scanner-visible
        // path: thumbprints differ (distinct certs)…
        let prints: Vec<_> = pop
            .hosts
            .iter()
            .map(|h| h.cert_thumbprint.unwrap())
            .collect();
        assert_ne!(prints[0], prints[1]);
        // …but the ground truth marks them as one shared-prime group.
        assert!(pop.hosts.iter().all(|h| h.shared_prime_group == Some(0)));
        let _ = BigUint::one(); // keep the dev-dependency honest
    }

    #[test]
    fn discovery_servers_reference_real_hosts() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 3)
            .with(HostClass::DiscoveryServer, 2);
        let net = test_net();
        let pop = synthesize(&net, &PopulationConfig::new(13, universe(), mix));
        assert_eq!(pop.count(HostClass::DiscoveryServer), 2);
        // Referenced endpoints point at deployed non-LDS hosts; verified
        // indirectly through the ground truth addresses.
        let server_addrs: Vec<String> = pop
            .of_class(HostClass::WideOpen)
            .map(|h| format!("opc.tcp://{}:4840/", h.address))
            .collect();
        assert!(!server_addrs.is_empty());
    }

    #[test]
    fn overlapping_universe_blocks_fill_without_hanging() {
        // A /30 nested inside a /29: 8 distinct addresses, size sum 12.
        // The exhaustion guard must count distinct addresses, not the
        // duplicate-weighted sum, or this would spin forever.
        let universe: Vec<Cidr> = vec![
            "10.0.0.0/29".parse().unwrap(),
            "10.0.0.0/30".parse().unwrap(),
        ];
        let mix = StrataMix::new().with(HostClass::WideOpen, 8);
        let net = test_net();
        let pop = synthesize(&net, &PopulationConfig::new(3, universe, mix));
        assert_eq!(pop.len(), 8);
        let addrs: std::collections::HashSet<_> = pop.hosts.iter().map(|h| h.address).collect();
        assert_eq!(addrs.len(), 8);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn overfull_overlapping_universe_panics() {
        let universe: Vec<Cidr> = vec![
            "10.0.0.0/29".parse().unwrap(),
            "10.0.0.0/30".parse().unwrap(),
        ];
        // 9 hosts into 8 distinct addresses must panic, not hang.
        let mix = StrataMix::new().with(HostClass::WideOpen, 9);
        let net = test_net();
        synthesize(&net, &PopulationConfig::new(3, universe, mix));
    }

    #[test]
    fn empty_mix_deploys_nothing() {
        let net = test_net();
        let pop = synthesize(
            &net,
            &PopulationConfig::new(1, universe(), StrataMix::new()),
        );
        assert!(pop.is_empty());
        assert_eq!(net.host_count(), 0);
    }
}
