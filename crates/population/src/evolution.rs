//! Deterministic weekly evolution of a deployed population — the
//! churn behind the paper's seven-month longitudinal study (§4, §6).
//!
//! Real deployments do not sit still between campaigns: DHCP leases
//! expire and hand hosts new addresses, devices appear and disappear,
//! certificates get renewed, firmware gets upgraded (and occasionally
//! rolled back), and operators sometimes fix — or reintroduce —
//! configuration deficits. [`EvolvingWorld`] applies exactly those
//! event classes once per simulated week, mutating the shared
//! [`netsim::Internet`] in place so a multi-campaign scanner observes
//! the churn the way the paper's scanner did.
//!
//! Everything is a pure function of `(seed, week, host id)`: each host
//! draws every weekly decision from its own salted RNG stream, so the
//! same seed replays the same seven months event for event regardless
//! of scanner worker counts, wall-clock timing — or *materialization
//! order*. That last property is what lets [`EvolvingWorld::new_lazy`]
//! run the identical study over a million-address universe: weekly
//! churn updates only a cheap per-host fate table, and the expensive
//! material (keys, certificates, server cores) is built, with all past
//! events replayed, the first time a probe reaches the host. The
//! ground truth of every planted event is logged per week
//! ([`WeekChurn`]) for the longitudinal assessment to validate against.
//!
//! Two deliberate scope choices keep the referral topology analyzable:
//! discovery servers (default-port LDS and chained LDS) never *depart*
//! — stale LDS would strand hidden servers behind unreachable referral
//! chains — and arrivals draw from swept (default-port, non-LDS)
//! classes only. Everything may still *move*: when a referenced host is
//! re-addressed, every live FindServers answer naming it is rewritten,
//! modeling servers that re-register with their LDS after a lease
//! change.

use crate::world::{MaterializationStats, WorldCore};
use crate::{HostClass, HostDeployment, Population, PopulationConfig};
use netsim::{Internet, Ipv4};
use std::sync::Arc;
use ua_crypto::Thumbprint;
use ua_types::UserTokenType;

/// Weekly churn probabilities, applied per host per week.
///
/// The defaults are flavored after the paper's observations: noticeable
/// IP churn week over week (§4.3 matches hosts across address changes
/// by key), slow fleet growth, certificate renewals and software
/// upgrades in the single-digit percent range (§6 found *most* hosts
/// never patched), and rare deficit remediation/regression.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// P(host is re-addressed this week) — DHCP-style reassignment; the
    /// host keeps its certificate, key, and configuration.
    pub ip_move: f64,
    /// P(host goes offline for good). Discovery servers are exempt (a
    /// departed LDS would strand its referral-only hosts unreachably).
    pub departure: f64,
    /// Expected arrivals as a fraction of the living population.
    /// Arrivals draw from swept, non-LDS classes.
    pub arrival: f64,
    /// P(certificate holder rolls its certificate over) — new serial
    /// and validity window, same subject and key, so the thumbprint
    /// changes while the modulus stays.
    pub renewal: f64,
    /// P(`software_version` increases this week).
    pub upgrade: f64,
    /// P(`software_version` decreases this week) — rollbacks happen.
    pub downgrade: f64,
    /// P(a host offering mode `None` drops it and goes secure-only,
    /// disabling anonymous access).
    pub remediation: f64,
    /// P(a secure-only host grows a `None` endpoint plus anonymous
    /// access) — the deficit *regressions* §6 observed.
    pub regression: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ip_move: 0.05,
            departure: 0.02,
            arrival: 0.025,
            renewal: 0.015,
            upgrade: 0.03,
            downgrade: 0.008,
            remediation: 0.012,
            regression: 0.006,
        }
    }
}

impl ChurnConfig {
    /// A frozen world: every rate zero. Weekly campaigns over it must
    /// report zero churn — the longitudinal null experiment.
    pub fn frozen() -> Self {
        ChurnConfig {
            ip_move: 0.0,
            departure: 0.0,
            arrival: 0.0,
            renewal: 0.0,
            upgrade: 0.0,
            downgrade: 0.0,
            remediation: 0.0,
            regression: 0.0,
        }
    }
}

/// One planted ground-truth churn event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new host joined the population.
    Arrived {
        /// Stratum of the arriving host.
        class: HostClass,
    },
    /// The host went offline permanently.
    Departed,
    /// DHCP handed the host a new address; identity (certificate, key,
    /// configuration) unchanged.
    Moved {
        /// The address the host vacated.
        from: Ipv4,
    },
    /// The certificate was rolled over (new thumbprint, same key).
    RenewedCert,
    /// `software_version` increased.
    Upgraded {
        /// Version before the upgrade.
        from: String,
        /// Version after the upgrade.
        to: String,
    },
    /// `software_version` decreased (rollback).
    Downgraded {
        /// Version before the rollback.
        from: String,
        /// Version after the rollback.
        to: String,
    },
    /// Mode-`None` endpoints and anonymous access were removed.
    Remediated,
    /// A mode-`None` endpoint plus anonymous access appeared.
    Regressed,
}

/// The ground-truth log of one week's evolution: every planted event,
/// keyed by stable host id (roster index).
#[derive(Debug, Clone, Default)]
pub struct WeekChurn {
    /// Week index (1-based; week 0 is the initial deployment).
    pub week: u32,
    /// Planted events in deterministic roster order.
    pub events: Vec<(u64, ChurnEvent)>,
}

impl WeekChurn {
    fn count(&self, pred: impl Fn(&ChurnEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Hosts that joined this week.
    pub fn arrivals(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Arrived { .. }))
    }

    /// Hosts that departed this week.
    pub fn departures(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Departed))
    }

    /// Hosts re-addressed this week.
    pub fn moves(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Moved { .. }))
    }

    /// Certificates rolled over this week.
    pub fn renewals(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::RenewedCert))
    }

    /// Software upgrades this week.
    pub fn upgrades(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Upgraded { .. }))
    }

    /// Software rollbacks this week.
    pub fn downgrades(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Downgraded { .. }))
    }

    /// Deficits fixed this week.
    pub fn remediations(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Remediated))
    }

    /// Deficits reintroduced this week.
    pub fn regressions(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Regressed))
    }
}

/// What a scanner campaign *should* observe for one living host: the
/// probe target, the certificate identity, and the software version —
/// the latter only where an anonymous session would expose it (the
/// session probe reads BuildInfo after activating anonymously, so
/// hosts without an anonymous token, and hosts whose session config is
/// broken, never reveal their version). Ground-truth mirrors project
/// these into their observation types; the visibility rule lives here,
/// in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthObservation {
    /// Current address.
    pub address: Ipv4,
    /// Listening port.
    pub port: u16,
    /// Identity of the served certificate, if any.
    pub thumbprint: Option<Thumbprint>,
    /// `software_version` as visible to an anonymous scanner.
    pub software_version: Option<String>,
}

/// Strata weekly arrivals cycle through — swept, non-LDS classes only
/// (see the module docs for why the referral topology stays stable).
pub(crate) const ARRIVAL_CLASSES: [HostClass; 7] = [
    HostClass::WideOpen,
    HostClass::MixedLegacy,
    HostClass::SecureModern,
    HostClass::DeprecatedOnly,
    HostClass::ReusedCert,
    HostClass::BrokenSession,
    HostClass::WeakCert,
];

/// Mixes `(seed, week, host id)` into an independent per-host weekly
/// RNG seed (the world engine salts it further per event kind).
pub(crate) fn host_week_seed(seed: u64, week: u32, id: u64) -> u64 {
    seed ^ (week as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ id.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Parses a `major.minor.patch` version string.
pub(crate) fn parse_version(v: &str) -> Option<(u32, u32, u32)> {
    let mut parts = v.split('.').map(|p| p.parse::<u32>());
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(Ok(a)), Some(Ok(b)), Some(Ok(c)), None) => Some((a, b, c)),
        _ => None,
    }
}

/// A deployed population evolving week over week on a shared
/// [`Internet`].
///
/// ```
/// use netsim::{Internet, VirtualClock};
/// use population::{ChurnConfig, EvolvingWorld, PopulationConfig, StrataMix};
///
/// let net = Internet::new(VirtualClock::default());
/// let cfg = PopulationConfig::new(
///     7,
///     vec!["10.0.0.0/22".parse().unwrap()],
///     StrataMix::paper_like(30),
/// );
/// let mut world = EvolvingWorld::new(&net, &cfg, ChurnConfig::default());
/// let week0 = world.population().len();
/// let churn = world.evolve(1).clone();
/// assert_eq!(
///     world.population().len(),
///     week0 + churn.arrivals() - churn.departures(),
/// );
/// ```
pub struct EvolvingWorld {
    core: Arc<WorldCore>,
    pub(crate) churn: ChurnConfig,
    week: u32,
    history: Vec<WeekChurn>,
}

impl EvolvingWorld {
    /// Synthesizes the week-0 deployment onto `net` and wraps it in an
    /// evolving world with the given churn model. Every host is built
    /// and bound up front (the eager path).
    pub fn new(net: &Internet, cfg: &PopulationConfig, churn: ChurnConfig) -> EvolvingWorld {
        EvolvingWorld {
            core: WorldCore::new(net, cfg, false),
            churn,
            week: 0,
            history: Vec::new(),
        }
    }

    /// Like [`EvolvingWorld::new`], but *lazy*: hosts materialize on
    /// first probe contact, weekly churn updates only the cheap fate
    /// table, and memory stays proportional to the hosts campaigns
    /// actually touch — byte-identical observations to the eager path.
    ///
    /// ```
    /// use netsim::{Internet, VirtualClock};
    /// use population::{ChurnConfig, EvolvingWorld, PopulationConfig, StrataMix};
    ///
    /// let net = Internet::new(VirtualClock::default());
    /// let cfg = PopulationConfig::new(
    ///     7,
    ///     vec!["10.0.0.0/16".parse().unwrap()],
    ///     StrataMix::paper_like(30),
    /// );
    /// let mut world = EvolvingWorld::new_lazy(&net, &cfg, ChurnConfig::default());
    /// world.evolve(1);
    /// // A full week of churn, and still nothing was built.
    /// assert_eq!(world.stats().hosts_materialized, 0);
    /// ```
    pub fn new_lazy(net: &Internet, cfg: &PopulationConfig, churn: ChurnConfig) -> EvolvingWorld {
        EvolvingWorld {
            core: WorldCore::new(net, cfg, true),
            churn,
            week: 0,
            history: Vec::new(),
        }
    }

    /// The week the world currently sits in (0 = initial deployment).
    pub fn week(&self) -> u32 {
        self.week
    }

    /// The shared Internet the world is deployed on.
    pub fn net(&self) -> &Internet {
        self.core.net()
    }

    /// Materialization telemetry (all hosts, for [`EvolvingWorld::new`];
    /// probed hosts only, for [`EvolvingWorld::new_lazy`]).
    pub fn stats(&self) -> MaterializationStats {
        self.core.stats()
    }

    /// Ground truth of the *living* population, in roster order.
    /// **Materializes every living host** in a lazy world — this is
    /// the audit exit, not the fast path.
    pub fn population(&self) -> Population {
        self.core.population()
    }

    /// The living hosts' full deployments, in roster order (current
    /// state). **Materializes every living host** in a lazy world.
    pub fn alive(&self) -> impl Iterator<Item = HostDeployment> {
        self.core.alive_deps().into_iter()
    }

    /// Number of living hosts (cheap: fate table only).
    pub fn alive_count(&self) -> usize {
        self.core.alive_count()
    }

    /// The per-week ground-truth churn logs so far.
    pub fn history(&self) -> &[WeekChurn] {
        &self.history
    }

    /// The scanner-visible truth for every living host, in roster
    /// order — what a full campaign over the current week should
    /// observe (see [`TruthObservation`]). **Materializes every living
    /// host** in a lazy world.
    pub fn observable_truth(&self) -> Vec<TruthObservation> {
        self.alive()
            .map(|dep| TruthObservation {
                address: dep.truth.address,
                port: dep.truth.port,
                thumbprint: dep
                    .config
                    .certificate
                    .as_ref()
                    .map(|c| Thumbprint(c.thumbprint())),
                software_version: (dep.config.token_types.contains(&UserTokenType::Anonymous)
                    && !dep.config.broken_session_config)
                    .then(|| dep.config.software_version.clone()),
            })
            .collect()
    }

    /// Advances the world by one week of churn. `week` must be the
    /// successor of the current week — the step is a deterministic
    /// function of `(seed, week, host id)`, so replaying the same seed
    /// replays the same study, eagerly or lazily. Returns the planted
    /// ground truth.
    ///
    /// Call *after* the campaign clock reached the new week's epoch:
    /// renewed certificates anchor their validity at the current
    /// virtual time.
    pub fn evolve(&mut self, week: u32) -> &WeekChurn {
        assert_eq!(week, self.week + 1, "evolution proceeds one week at a time");
        self.week = week;
        let log = self.core.evolve_week(week, &self.churn);
        self.history.push(log);
        // ua-lint: allow(panic-hygiene) -- the push on the previous line makes last() infallible
        self.history.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrataMix;
    use netsim::VirtualClock;
    use ua_addrspace::ids;
    use ua_types::{MessageSecurityMode, Variant};

    fn world(seed: u64, churn: ChurnConfig, mix: StrataMix) -> EvolvingWorld {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        let cfg = PopulationConfig::new(seed, vec!["10.0.0.0/20".parse().unwrap()], mix);
        EvolvingWorld::new(&net, &cfg, churn)
    }

    fn full(rate: &str) -> ChurnConfig {
        let mut c = ChurnConfig::frozen();
        match rate {
            "ip_move" => c.ip_move = 1.0,
            "departure" => c.departure = 1.0,
            "arrival" => c.arrival = 1.0,
            "renewal" => c.renewal = 1.0,
            "upgrade" => c.upgrade = 1.0,
            "downgrade" => c.downgrade = 1.0,
            "remediation" => c.remediation = 1.0,
            "regression" => c.regression = 1.0,
            _ => unreachable!(),
        }
        c
    }

    #[test]
    fn frozen_world_never_changes() {
        let mut w = world(3, ChurnConfig::frozen(), StrataMix::paper_like(30));
        let before: Vec<_> = w.alive().map(|d| d.truth.address).collect();
        for week in 1..=4 {
            let churn = w.evolve(week);
            assert!(churn.events.is_empty(), "week {week}: {:?}", churn.events);
        }
        let after: Vec<_> = w.alive().map(|d| d.truth.address).collect();
        assert_eq!(before, after);
        assert_eq!(w.net().host_count(), before.len());
    }

    #[test]
    fn evolution_is_deterministic() {
        let run = || {
            let mut w = world(11, ChurnConfig::default(), StrataMix::paper_like(40));
            let mut events = Vec::new();
            for week in 1..=5 {
                events.extend(w.evolve(week).events.clone());
            }
            let addrs: Vec<_> = w.alive().map(|d| (d.truth.address, d.truth.port)).collect();
            (events, addrs)
        };
        let (events_a, addrs_a) = run();
        let (events_b, addrs_b) = run();
        assert_eq!(events_a, events_b);
        assert_eq!(addrs_a, addrs_b);
        assert!(!events_a.is_empty(), "default churn must actually churn");
    }

    #[test]
    fn moves_keep_identity_and_rewire_referrals() {
        let mix = StrataMix::new()
            .with(HostClass::SecureModern, 4)
            .with(HostClass::DiscoveryServer, 1)
            .with(HostClass::HiddenServer, 2);
        let mut w = world(7, full("ip_move"), mix);
        let before: Vec<_> = w
            .alive()
            .map(|d| (d.truth.address, d.truth.port, d.truth.cert_thumbprint))
            .collect();
        let churn = w.evolve(1);
        assert_eq!(churn.moves(), before.len(), "every host moves at p=1");
        let after: Vec<_> = w
            .alive()
            .map(|d| (d.truth.address, d.truth.port, d.truth.cert_thumbprint))
            .collect();
        for ((a0, p0, t0), (a1, p1, t1)) in before.iter().zip(&after) {
            assert_ne!(a0, a1, "address must change");
            assert_eq!(p0, p1, "port is stable across moves");
            assert_eq!(t0, t1, "certificate identity survives the move");
        }
        // The network followed: new addresses listen, old ones are gone.
        for ((old, _, _), (new, port, _)) in before.iter().zip(&after) {
            assert!(!w.net().host_exists(*old));
            assert!(w.net().has_listener(*new, *port));
        }
        // Referral wiring follows the moves: every hidden server's new
        // URL is announced by some live discovery host.
        let announced: Vec<String> = w
            .alive()
            .flat_map(|d| d.config.referenced_endpoints.clone())
            .collect();
        for dep in w.alive() {
            if dep.truth.class == HostClass::HiddenServer {
                let url = format!("opc.tcp://{}:{}/", dep.truth.address, dep.truth.port);
                assert!(
                    announced.iter().any(|u| **u == url),
                    "{url} not re-announced after move"
                );
            }
        }
        // No live referral mentions a vacated address.
        for (old, _, _) in &before {
            let pat = format!("://{old}:");
            assert!(
                announced.iter().all(|u| !u.contains(&pat)),
                "stale referral to {old}"
            );
        }
    }

    #[test]
    fn renewal_changes_thumbprint_keeps_address_and_key() {
        let mix = StrataMix::new().with(HostClass::SecureModern, 3);
        let mut w = world(5, full("renewal"), mix);
        let before: Vec<_> = w
            .alive()
            .map(|d| {
                (
                    d.truth.address,
                    d.truth.cert_thumbprint.unwrap(),
                    d.config
                        .certificate
                        .as_ref()
                        .unwrap()
                        .tbs
                        .public_key
                        .n
                        .clone(),
                )
            })
            .collect();
        let now = w.net().clock().now_unix_seconds();
        let churn = w.evolve(1);
        assert_eq!(churn.renewals(), 3);
        for (dep, (addr, old_tp, old_n)) in w.alive().zip(&before) {
            let cert = dep.config.certificate.as_ref().unwrap();
            assert_eq!(dep.truth.address, *addr);
            assert_ne!(dep.truth.cert_thumbprint.unwrap(), *old_tp);
            assert_eq!(&cert.tbs.public_key.n, old_n, "key survives renewal");
            assert!(cert.is_valid_at(now));
            assert_eq!(dep.truth.cert_thumbprint.unwrap(), cert.thumbprint());
        }
    }

    #[test]
    fn expired_certificates_become_valid_on_renewal() {
        let mix = StrataMix::new().with(HostClass::ExpiredCert, 2);
        let mut w = world(9, full("renewal"), mix);
        let now = w.net().clock().now_unix_seconds();
        for dep in w.alive() {
            assert!(!dep.config.certificate.as_ref().unwrap().is_valid_at(now));
        }
        w.evolve(1);
        for dep in w.alive() {
            assert!(dep.config.certificate.as_ref().unwrap().is_valid_at(now));
        }
    }

    #[test]
    fn upgrades_and_downgrades_adjust_version_and_space() {
        let mix = StrataMix::new().with(HostClass::SecureModern, 4);
        let mut w = world(13, full("upgrade"), mix);
        let before: Vec<String> = w
            .alive()
            .map(|d| d.config.software_version.clone())
            .collect();
        let churn = w.evolve(1);
        assert_eq!(churn.upgrades(), 4);
        assert_eq!(churn.downgrades(), 0);
        for (dep, old) in w.alive().zip(&before) {
            let new = &dep.config.software_version;
            assert!(
                parse_version(new) > parse_version(old),
                "{old} -> {new} is not an upgrade"
            );
            // The served BuildInfo node follows the config.
            let node = dep
                .space
                .get(&ua_types::NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION))
                .unwrap();
            assert_eq!(
                node.value,
                Some(Variant::String(Some(new.clone()))),
                "SoftwareVersion node out of sync"
            );
        }
    }

    #[test]
    fn remediation_goes_secure_and_regression_reopens() {
        let mix = StrataMix::new().with(HostClass::WideOpen, 3);
        let mut w = world(17, full("remediation"), mix);
        let churn = w.evolve(1);
        assert_eq!(churn.remediations(), 3);
        for dep in w.alive() {
            assert!(dep
                .config
                .endpoints
                .iter()
                .all(|e| e.mode != MessageSecurityMode::None));
            assert!(!dep.config.token_types.contains(&UserTokenType::Anonymous));
            assert!(dep.config.certificate.is_some(), "secure needs a cert");
            assert!(dep.truth.cert_thumbprint.is_some());
        }
        // Remediated hosts no longer offer None, so a regression pass
        // can reopen them.
        let mut w2 = world(
            17,
            full("remediation"),
            StrataMix::new().with(HostClass::WideOpen, 3),
        );
        w2.evolve(1);
        w2.churn = full("regression");
        let churn = w2.evolve(2);
        assert_eq!(churn.regressions(), 3);
        for dep in w2.alive() {
            assert!(dep
                .config
                .endpoints
                .iter()
                .any(|e| e.mode == MessageSecurityMode::None));
            assert!(dep.config.token_types.contains(&UserTokenType::Anonymous));
        }
    }

    #[test]
    fn departures_and_arrivals_turn_the_roster_over() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 4)
            .with(HostClass::DiscoveryServer, 1);
        let mut w = world(19, full("departure"), mix);
        let churn = w.evolve(1);
        // The LDS is exempt from departure.
        assert_eq!(churn.departures(), 4);
        assert_eq!(w.alive_count(), 1);
        assert_eq!(w.net().host_count(), 1);

        w.churn = full("arrival");
        let churn = w.evolve(2).clone();
        assert_eq!(churn.arrivals(), 1, "one living host, arrival rate 1.0");
        assert_eq!(w.alive_count(), 2);
        // Arrivals are swept-class hosts on the sweep port and listen.
        let arrived = w.alive().last().unwrap();
        assert_eq!(arrived.truth.port, 4840);
        assert!(!arrived.truth.class.referral_only());
        assert!(w.net().has_listener(arrived.truth.address, 4840));
    }

    #[test]
    #[should_panic(expected = "one week at a time")]
    fn weeks_cannot_be_skipped() {
        let mut w = world(1, ChurnConfig::frozen(), StrataMix::paper_like(30));
        w.evolve(2);
    }

    #[test]
    fn lazy_evolution_materializes_nothing_until_probed() {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        let cfg = PopulationConfig::new(
            23,
            vec!["10.0.0.0/16".parse().unwrap()],
            StrataMix::paper_like(30),
        );
        let mut w = EvolvingWorld::new_lazy(&net, &cfg, ChurnConfig::default());
        for week in 1..=6 {
            w.evolve(week);
        }
        assert_eq!(
            w.stats(),
            MaterializationStats::default(),
            "six weeks of churn must not build a single host"
        );
        assert_eq!(net.host_count(), 0);
        // The audit exit still works — and pays for exactly the fleet.
        let pop = w.population();
        assert_eq!(w.stats().hosts_materialized as usize, pop.len());
    }
}
