//! Deterministic weekly evolution of a deployed population — the
//! churn behind the paper's seven-month longitudinal study (§4, §6).
//!
//! Real deployments do not sit still between campaigns: DHCP leases
//! expire and hand hosts new addresses, devices appear and disappear,
//! certificates get renewed, firmware gets upgraded (and occasionally
//! rolled back), and operators sometimes fix — or reintroduce —
//! configuration deficits. [`EvolvingWorld`] owns a
//! [`Deployment`](crate::Deployment) and applies exactly those event
//! classes once per simulated week, mutating the shared
//! [`netsim::Internet`] in place so a multi-campaign scanner observes
//! the churn the way the paper's scanner did.
//!
//! Everything is a pure function of `(seed, week, roster state)`: each
//! host draws its weekly fate from an RNG seeded by `(seed, week,
//! host id)`, so the same seed replays the same seven months event for
//! event regardless of scanner worker counts or wall-clock timing. The
//! ground truth of every planted event is logged per week
//! ([`WeekChurn`]) for the longitudinal assessment to validate against.
//!
//! Two deliberate scope choices keep the referral topology analyzable:
//! discovery servers (default-port LDS and chained LDS) never *depart*
//! — stale LDS would strand hidden servers behind unreachable referral
//! chains — and arrivals draw from swept (default-port, non-LDS)
//! classes only. Everything may still *move*: when a referenced host is
//! re-addressed, every live FindServers answer naming it is rewritten,
//! modeling servers that re-register with their LDS after a lease
//! change.

use crate::{
    bind_deployment, build_host, pick_free_address, BuildParams, HostClass, HostDeployment,
    Population, PopulationConfig, SharedSecrets, Synthesizer, ACTUAL_KEY_BITS,
};
use netsim::{Cidr, Internet, Ipv4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};
use ua_addrspace::ids;
use ua_crypto::{CertificateBuilder, DistinguishedName, RsaPrivateKey, Thumbprint};
use ua_server::{EndpointConfig, UserAccount};
use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType, Variant};

/// Weekly churn probabilities, applied per host per week.
///
/// The defaults are flavored after the paper's observations: noticeable
/// IP churn week over week (§4.3 matches hosts across address changes
/// by key), slow fleet growth, certificate renewals and software
/// upgrades in the single-digit percent range (§6 found *most* hosts
/// never patched), and rare deficit remediation/regression.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// P(host is re-addressed this week) — DHCP-style reassignment; the
    /// host keeps its certificate, key, and configuration.
    pub ip_move: f64,
    /// P(host goes offline for good). Discovery servers are exempt (a
    /// departed LDS would strand its referral-only hosts unreachably).
    pub departure: f64,
    /// Expected arrivals as a fraction of the living population.
    /// Arrivals draw from swept, non-LDS classes.
    pub arrival: f64,
    /// P(certificate holder rolls its certificate over) — new serial
    /// and validity window, same subject and key, so the thumbprint
    /// changes while the modulus stays.
    pub renewal: f64,
    /// P(`software_version` increases this week).
    pub upgrade: f64,
    /// P(`software_version` decreases this week) — rollbacks happen.
    pub downgrade: f64,
    /// P(a host offering mode `None` drops it and goes secure-only,
    /// disabling anonymous access).
    pub remediation: f64,
    /// P(a secure-only host grows a `None` endpoint plus anonymous
    /// access) — the deficit *regressions* §6 observed.
    pub regression: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ip_move: 0.05,
            departure: 0.02,
            arrival: 0.025,
            renewal: 0.015,
            upgrade: 0.03,
            downgrade: 0.008,
            remediation: 0.012,
            regression: 0.006,
        }
    }
}

impl ChurnConfig {
    /// A frozen world: every rate zero. Weekly campaigns over it must
    /// report zero churn — the longitudinal null experiment.
    pub fn frozen() -> Self {
        ChurnConfig {
            ip_move: 0.0,
            departure: 0.0,
            arrival: 0.0,
            renewal: 0.0,
            upgrade: 0.0,
            downgrade: 0.0,
            remediation: 0.0,
            regression: 0.0,
        }
    }
}

/// One planted ground-truth churn event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new host joined the population.
    Arrived {
        /// Stratum of the arriving host.
        class: HostClass,
    },
    /// The host went offline permanently.
    Departed,
    /// DHCP handed the host a new address; identity (certificate, key,
    /// configuration) unchanged.
    Moved {
        /// The address the host vacated.
        from: Ipv4,
    },
    /// The certificate was rolled over (new thumbprint, same key).
    RenewedCert,
    /// `software_version` increased.
    Upgraded {
        /// Version before the upgrade.
        from: String,
        /// Version after the upgrade.
        to: String,
    },
    /// `software_version` decreased (rollback).
    Downgraded {
        /// Version before the rollback.
        from: String,
        /// Version after the rollback.
        to: String,
    },
    /// Mode-`None` endpoints and anonymous access were removed.
    Remediated,
    /// A mode-`None` endpoint plus anonymous access appeared.
    Regressed,
}

/// The ground-truth log of one week's evolution: every planted event,
/// keyed by stable host id (roster index).
#[derive(Debug, Clone, Default)]
pub struct WeekChurn {
    /// Week index (1-based; week 0 is the initial deployment).
    pub week: u32,
    /// Planted events in deterministic roster order.
    pub events: Vec<(u64, ChurnEvent)>,
}

impl WeekChurn {
    fn count(&self, pred: impl Fn(&ChurnEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Hosts that joined this week.
    pub fn arrivals(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Arrived { .. }))
    }

    /// Hosts that departed this week.
    pub fn departures(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Departed))
    }

    /// Hosts re-addressed this week.
    pub fn moves(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Moved { .. }))
    }

    /// Certificates rolled over this week.
    pub fn renewals(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::RenewedCert))
    }

    /// Software upgrades this week.
    pub fn upgrades(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Upgraded { .. }))
    }

    /// Software rollbacks this week.
    pub fn downgrades(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Downgraded { .. }))
    }

    /// Deficits fixed this week.
    pub fn remediations(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Remediated))
    }

    /// Deficits reintroduced this week.
    pub fn regressions(&self) -> usize {
        self.count(|e| matches!(e, ChurnEvent::Regressed))
    }
}

struct RosterEntry {
    id: u64,
    dep: HostDeployment,
    alive: bool,
}

/// What a scanner campaign *should* observe for one living host: the
/// probe target, the certificate identity, and the software version —
/// the latter only where an anonymous session would expose it (the
/// session probe reads BuildInfo after activating anonymously, so
/// hosts without an anonymous token, and hosts whose session config is
/// broken, never reveal their version). Ground-truth mirrors project
/// these into their observation types; the visibility rule lives here,
/// in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthObservation {
    /// Current address.
    pub address: Ipv4,
    /// Listening port.
    pub port: u16,
    /// Identity of the served certificate, if any.
    pub thumbprint: Option<Thumbprint>,
    /// `software_version` as visible to an anonymous scanner.
    pub software_version: Option<String>,
}

/// A deployed population evolving week over week on a shared
/// [`Internet`].
///
/// ```
/// use netsim::{Internet, VirtualClock};
/// use population::{ChurnConfig, EvolvingWorld, PopulationConfig, StrataMix};
///
/// let net = Internet::new(VirtualClock::default());
/// let cfg = PopulationConfig::new(
///     7,
///     vec!["10.0.0.0/22".parse().unwrap()],
///     StrataMix::paper_like(30),
/// );
/// let mut world = EvolvingWorld::new(&net, &cfg, ChurnConfig::default());
/// let week0 = world.population().len();
/// let churn = world.evolve(1).clone();
/// assert_eq!(
///     world.population().len(),
///     week0 + churn.arrivals() - churn.departures(),
/// );
/// ```
pub struct EvolvingWorld {
    net: Internet,
    seed: u64,
    sweep_port: u16,
    universe: Vec<Cidr>,
    churn: ChurnConfig,
    shared: SharedSecrets,
    hosts: Vec<RosterEntry>,
    used: HashSet<u32>,
    serial: u64,
    arrival_cursor: usize,
    week: u32,
    history: Vec<WeekChurn>,
}

/// Strata weekly arrivals cycle through — swept, non-LDS classes only
/// (see the module docs for why the referral topology stays stable).
const ARRIVAL_CLASSES: [HostClass; 7] = [
    HostClass::WideOpen,
    HostClass::MixedLegacy,
    HostClass::SecureModern,
    HostClass::DeprecatedOnly,
    HostClass::ReusedCert,
    HostClass::BrokenSession,
    HostClass::WeakCert,
];

/// Mixes `(seed, week, host id)` into an independent per-host weekly
/// RNG seed.
fn host_week_seed(seed: u64, week: u32, id: u64) -> u64 {
    seed ^ (week as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ id.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Parses a `major.minor.patch` version string.
fn parse_version(v: &str) -> Option<(u32, u32, u32)> {
    let mut parts = v.split('.').map(|p| p.parse::<u32>());
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(Ok(a)), Some(Ok(b)), Some(Ok(c)), None) => Some((a, b, c)),
        _ => None,
    }
}

impl EvolvingWorld {
    /// Synthesizes the week-0 deployment onto `net` and wraps it in an
    /// evolving world with the given churn model.
    pub fn new(net: &Internet, cfg: &PopulationConfig, churn: ChurnConfig) -> EvolvingWorld {
        let deployment = crate::synthesize_deployment(net, cfg);
        let hosts = deployment
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, dep)| RosterEntry {
                id: i as u64,
                dep,
                alive: true,
            })
            .collect();
        EvolvingWorld {
            net: net.clone(),
            seed: cfg.seed,
            sweep_port: cfg.port,
            universe: deployment.universe,
            churn,
            shared: deployment.shared,
            hosts,
            used: deployment.used,
            serial: deployment.serial,
            arrival_cursor: 0,
            week: 0,
            history: Vec::new(),
        }
    }

    /// The week the world currently sits in (0 = initial deployment).
    pub fn week(&self) -> u32 {
        self.week
    }

    /// The shared Internet the world is deployed on.
    pub fn net(&self) -> &Internet {
        &self.net
    }

    /// Ground truth of the *living* population, in roster order.
    pub fn population(&self) -> Population {
        Population {
            hosts: self
                .hosts
                .iter()
                .filter(|h| h.alive)
                .map(|h| h.dep.truth.clone())
                .collect(),
            universe: self.universe.clone(),
        }
    }

    /// The living hosts' full deployments, in roster order.
    pub fn alive(&self) -> impl Iterator<Item = &HostDeployment> {
        self.hosts.iter().filter(|h| h.alive).map(|h| &h.dep)
    }

    /// Number of living hosts.
    pub fn alive_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.alive).count()
    }

    /// The per-week ground-truth churn logs so far.
    pub fn history(&self) -> &[WeekChurn] {
        &self.history
    }

    /// The scanner-visible truth for every living host, in roster
    /// order — what a full campaign over the current week should
    /// observe (see [`TruthObservation`]).
    pub fn observable_truth(&self) -> Vec<TruthObservation> {
        self.alive()
            .map(|dep| TruthObservation {
                address: dep.truth.address,
                port: dep.truth.port,
                thumbprint: dep
                    .config
                    .certificate
                    .as_ref()
                    .map(|c| Thumbprint(c.thumbprint())),
                software_version: (dep.config.token_types.contains(&UserTokenType::Anonymous)
                    && !dep.config.broken_session_config)
                    .then(|| dep.config.software_version.clone()),
            })
            .collect()
    }

    /// Advances the world by one week of churn. `week` must be the
    /// successor of the current week — the step is a deterministic
    /// function of `(seed, week)` and the roster, so replaying the same
    /// seed replays the same study. Returns the planted ground truth.
    ///
    /// Call *after* the campaign clock reached the new week's epoch:
    /// renewed certificates anchor their validity at the current
    /// virtual time.
    pub fn evolve(&mut self, week: u32) -> &WeekChurn {
        assert_eq!(week, self.week + 1, "evolution proceeds one week at a time");
        self.week = week;
        let now = self.net.clock().now_unix_seconds();
        let mut log = WeekChurn {
            week,
            events: Vec::new(),
        };
        // Hosts whose server material changed and must be rebound, and
        // `://old-address:` → `://new-address:` rewrites for every
        // FindServers answer referencing a moved host. Vacated
        // addresses stay reserved in `used` for the rest of the study,
        // so a rewrite pattern never becomes ambiguous.
        let mut rebind: BTreeSet<usize> = BTreeSet::new();
        let mut moved: Vec<(String, String)> = Vec::new();

        for idx in 0..self.hosts.len() {
            if !self.hosts[idx].alive {
                continue;
            }
            let id = self.hosts[idx].id;
            let mut rng = StdRng::seed_from_u64(host_week_seed(self.seed, week, id));
            let class = self.hosts[idx].dep.truth.class;
            let lds_like = matches!(class, HostClass::DiscoveryServer | HostClass::ChainedLds);

            if !lds_like && rng.gen_bool(self.churn.departure) {
                self.net.remove_host(self.hosts[idx].dep.truth.address);
                self.hosts[idx].alive = false;
                log.events.push((id, ChurnEvent::Departed));
                continue;
            }

            let entry = &mut self.hosts[idx];
            let dep = &mut entry.dep;

            if rng.gen_bool(self.churn.ip_move) {
                let from = dep.truth.address;
                let to = pick_free_address(&mut rng, &self.universe, &mut self.used);
                self.net.remove_host(from);
                dep.truth.address = to;
                let old_pat = format!("://{from}:");
                let new_pat = format!("://{to}:");
                dep.config.endpoint_url = dep.config.endpoint_url.replace(&old_pat, &new_pat);
                moved.push((old_pat, new_pat));
                rebind.insert(idx);
                log.events.push((id, ChurnEvent::Moved { from }));
            }

            if dep.config.certificate.is_some() && rng.gen_bool(self.churn.renewal) {
                self.serial += 1;
                let old = dep.config.certificate.as_ref().expect("just checked");
                let subject = old.tbs.subject.clone();
                let hash = old.signature_hash();
                let key = dep
                    .config
                    .private_key
                    .clone()
                    .expect("certificate hosts carry their key");
                let builder = CertificateBuilder::new(subject)
                    .serial(self.serial)
                    .validity(now - 86_400, now + 3 * 365 * 86_400)
                    .application_uri(&dep.truth.application_uri);
                // CA customers renew through their CA; everyone else
                // re-self-signs. Hash and key are kept, so a weak
                // certificate renews weak — §6 saw exactly that.
                let cert = if class == HostClass::SecureCa {
                    builder.issued_by(
                        hash,
                        DistinguishedName::new("Sim Root CA", "Sim Trust Services"),
                        &self.shared.ca_key,
                        &key.public,
                    )
                } else {
                    builder.self_signed(hash, &key)
                };
                dep.truth.cert_thumbprint = Some(cert.thumbprint());
                dep.config.certificate = Some(cert);
                rebind.insert(idx);
                log.events.push((id, ChurnEvent::RenewedCert));
            }

            if let Some((major, minor, patch)) = parse_version(&dep.config.software_version) {
                let from = dep.config.software_version.clone();
                let to = if rng.gen_bool(self.churn.upgrade) {
                    // Mostly patch bumps, occasionally a minor release.
                    Some(if rng.gen_bool(0.25) {
                        format!("{major}.{}.0", minor + 1)
                    } else {
                        format!("{major}.{minor}.{}", patch + 1)
                    })
                } else if patch > 0 && rng.gen_bool(self.churn.downgrade) {
                    Some(format!("{major}.{minor}.{}", patch - 1))
                } else {
                    None
                };
                if let Some(to) = to {
                    let upgraded = parse_version(&to) > parse_version(&from);
                    dep.config.software_version = to.clone();
                    if let Some(node) = dep
                        .space
                        .get_mut(&ua_types::NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION))
                    {
                        node.value = Some(Variant::String(Some(to.clone())));
                    }
                    rebind.insert(idx);
                    let event = if upgraded {
                        ChurnEvent::Upgraded { from, to }
                    } else {
                        ChurnEvent::Downgraded { from, to }
                    };
                    log.events.push((id, event));
                }
            }

            if !lds_like {
                let has_none = dep
                    .config
                    .endpoints
                    .iter()
                    .any(|e| e.mode == MessageSecurityMode::None);
                if has_none && rng.gen_bool(self.churn.remediation) {
                    dep.config
                        .endpoints
                        .retain(|e| e.mode != MessageSecurityMode::None);
                    if dep.config.endpoints.is_empty() {
                        dep.config.endpoints.push(EndpointConfig::new(
                            MessageSecurityMode::SignAndEncrypt,
                            SecurityPolicy::Basic256Sha256,
                        ));
                    }
                    if dep.config.certificate.is_none() {
                        // Going secure requires an application-instance
                        // certificate the host never had.
                        self.serial += 1;
                        let key = RsaPrivateKey::generate(&mut rng, ACTUAL_KEY_BITS, 2048);
                        let cert = CertificateBuilder::new(DistinguishedName::new(
                            format!("dev-{}", self.serial),
                            dep.truth.vendor,
                        ))
                        .serial(self.serial)
                        .validity(now - 86_400, now + 4 * 365 * 86_400)
                        .application_uri(&dep.truth.application_uri)
                        .self_signed(ua_crypto::HashAlgorithm::Sha256, &key);
                        dep.truth.cert_thumbprint = Some(cert.thumbprint());
                        dep.config.certificate = Some(cert);
                        dep.config.private_key = Some(key);
                    }
                    dep.config
                        .token_types
                        .retain(|t| *t != UserTokenType::Anonymous);
                    if dep.config.token_types.is_empty() {
                        dep.config.token_types.push(UserTokenType::UserName);
                    }
                    if dep.config.users.is_empty() {
                        dep.config.users.push(UserAccount {
                            name: "operator".into(),
                            password: format!("pw-{id}"),
                        });
                    }
                    rebind.insert(idx);
                    log.events.push((id, ChurnEvent::Remediated));
                } else if !has_none && rng.gen_bool(self.churn.regression) {
                    dep.config.endpoints.push(EndpointConfig::none());
                    if !dep.config.token_types.contains(&UserTokenType::Anonymous) {
                        dep.config.token_types.insert(0, UserTokenType::Anonymous);
                    }
                    rebind.insert(idx);
                    log.events.push((id, ChurnEvent::Regressed));
                }
            }
        }

        // Arrivals: expected count is a fraction of the (post-departure)
        // living population, rounded stochastically but deterministically.
        let alive_now = self.alive_count();
        let mut arrivals_rng = StdRng::seed_from_u64(host_week_seed(self.seed, week, u64::MAX));
        let expected = alive_now as f64 * self.churn.arrival;
        let mut n = expected.floor() as usize;
        if expected.fract() > 0.0 && arrivals_rng.gen_bool(expected.fract()) {
            n += 1;
        }
        if n > 0 {
            let mut syn = Synthesizer::resume(
                self.universe.clone(),
                arrivals_rng,
                std::mem::take(&mut self.used),
                self.serial,
            );
            for _ in 0..n {
                let class = ARRIVAL_CLASSES[self.arrival_cursor % ARRIVAL_CLASSES.len()];
                self.arrival_cursor += 1;
                let id = self.hosts.len() as u64;
                let address = syn.pick_address();
                let dep = build_host(
                    &mut syn,
                    &self.shared,
                    BuildParams {
                        class,
                        address,
                        port: self.sweep_port,
                        referenced: Vec::new(),
                        id,
                        seed: self.seed,
                        now,
                    },
                );
                bind_deployment(&self.net, &dep, now);
                log.events.push((id, ChurnEvent::Arrived { class }));
                self.hosts.push(RosterEntry {
                    id,
                    dep,
                    alive: true,
                });
            }
            self.used = syn.used;
            self.serial = syn.serial;
        }

        // Re-registration: every live FindServers answer naming a moved
        // host learns the new address (covers an LDS's own non-canonical
        // self-referrals and dead decoy ports too — they embed the
        // host's address textually).
        if !moved.is_empty() {
            for (idx, entry) in self.hosts.iter_mut().enumerate() {
                if !entry.alive {
                    continue;
                }
                let mut changed = false;
                for url in &mut entry.dep.config.referenced_endpoints {
                    for (old, new) in &moved {
                        if url.contains(old.as_str()) {
                            *url = url.replace(old.as_str(), new);
                            changed = true;
                        }
                    }
                }
                if changed {
                    rebind.insert(idx);
                }
            }
        }

        for idx in rebind {
            if self.hosts[idx].alive {
                bind_deployment(&self.net, &self.hosts[idx].dep, now);
            }
        }

        self.history.push(log);
        self.history.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrataMix;
    use netsim::VirtualClock;

    fn world(seed: u64, churn: ChurnConfig, mix: StrataMix) -> EvolvingWorld {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        let cfg = PopulationConfig::new(seed, vec!["10.0.0.0/20".parse().unwrap()], mix);
        EvolvingWorld::new(&net, &cfg, churn)
    }

    fn full(rate: &str) -> ChurnConfig {
        let mut c = ChurnConfig::frozen();
        match rate {
            "ip_move" => c.ip_move = 1.0,
            "departure" => c.departure = 1.0,
            "arrival" => c.arrival = 1.0,
            "renewal" => c.renewal = 1.0,
            "upgrade" => c.upgrade = 1.0,
            "downgrade" => c.downgrade = 1.0,
            "remediation" => c.remediation = 1.0,
            "regression" => c.regression = 1.0,
            _ => unreachable!(),
        }
        c
    }

    #[test]
    fn frozen_world_never_changes() {
        let mut w = world(3, ChurnConfig::frozen(), StrataMix::paper_like(30));
        let before: Vec<_> = w.alive().map(|d| d.truth.address).collect();
        for week in 1..=4 {
            let churn = w.evolve(week);
            assert!(churn.events.is_empty(), "week {week}: {:?}", churn.events);
        }
        let after: Vec<_> = w.alive().map(|d| d.truth.address).collect();
        assert_eq!(before, after);
        assert_eq!(w.net().host_count(), before.len());
    }

    #[test]
    fn evolution_is_deterministic() {
        let run = || {
            let mut w = world(11, ChurnConfig::default(), StrataMix::paper_like(40));
            let mut events = Vec::new();
            for week in 1..=5 {
                events.extend(w.evolve(week).events.clone());
            }
            let addrs: Vec<_> = w.alive().map(|d| (d.truth.address, d.truth.port)).collect();
            (events, addrs)
        };
        let (events_a, addrs_a) = run();
        let (events_b, addrs_b) = run();
        assert_eq!(events_a, events_b);
        assert_eq!(addrs_a, addrs_b);
        assert!(!events_a.is_empty(), "default churn must actually churn");
    }

    #[test]
    fn moves_keep_identity_and_rewire_referrals() {
        let mix = StrataMix::new()
            .with(HostClass::SecureModern, 4)
            .with(HostClass::DiscoveryServer, 1)
            .with(HostClass::HiddenServer, 2);
        let mut w = world(7, full("ip_move"), mix);
        let before: Vec<_> = w
            .alive()
            .map(|d| (d.truth.address, d.truth.port, d.truth.cert_thumbprint))
            .collect();
        let churn = w.evolve(1);
        assert_eq!(churn.moves(), before.len(), "every host moves at p=1");
        let after: Vec<_> = w
            .alive()
            .map(|d| (d.truth.address, d.truth.port, d.truth.cert_thumbprint))
            .collect();
        for ((a0, p0, t0), (a1, p1, t1)) in before.iter().zip(&after) {
            assert_ne!(a0, a1, "address must change");
            assert_eq!(p0, p1, "port is stable across moves");
            assert_eq!(t0, t1, "certificate identity survives the move");
        }
        // The network followed: new addresses listen, old ones are gone.
        for ((old, _, _), (new, port, _)) in before.iter().zip(&after) {
            assert!(!w.net().host_exists(*old));
            assert!(w.net().has_listener(*new, *port));
        }
        // Referral wiring follows the moves: every hidden server's new
        // URL is announced by some live discovery host.
        let announced: Vec<String> = w
            .alive()
            .flat_map(|d| d.config.referenced_endpoints.iter().cloned())
            .collect();
        for dep in w.alive() {
            if dep.truth.class == HostClass::HiddenServer {
                let url = format!("opc.tcp://{}:{}/", dep.truth.address, dep.truth.port);
                assert!(
                    announced.iter().any(|u| **u == url),
                    "{url} not re-announced after move"
                );
            }
        }
        // No live referral mentions a vacated address.
        for (old, _, _) in &before {
            let pat = format!("://{old}:");
            assert!(
                announced.iter().all(|u| !u.contains(&pat)),
                "stale referral to {old}"
            );
        }
    }

    #[test]
    fn renewal_changes_thumbprint_keeps_address_and_key() {
        let mix = StrataMix::new().with(HostClass::SecureModern, 3);
        let mut w = world(5, full("renewal"), mix);
        let before: Vec<_> = w
            .alive()
            .map(|d| {
                (
                    d.truth.address,
                    d.truth.cert_thumbprint.unwrap(),
                    d.config
                        .certificate
                        .as_ref()
                        .unwrap()
                        .tbs
                        .public_key
                        .n
                        .clone(),
                )
            })
            .collect();
        let now = w.net().clock().now_unix_seconds();
        let churn = w.evolve(1);
        assert_eq!(churn.renewals(), 3);
        for (dep, (addr, old_tp, old_n)) in w.alive().zip(&before) {
            let cert = dep.config.certificate.as_ref().unwrap();
            assert_eq!(dep.truth.address, *addr);
            assert_ne!(dep.truth.cert_thumbprint.unwrap(), *old_tp);
            assert_eq!(&cert.tbs.public_key.n, old_n, "key survives renewal");
            assert!(cert.is_valid_at(now));
            assert_eq!(dep.truth.cert_thumbprint.unwrap(), cert.thumbprint());
        }
    }

    #[test]
    fn expired_certificates_become_valid_on_renewal() {
        let mix = StrataMix::new().with(HostClass::ExpiredCert, 2);
        let mut w = world(9, full("renewal"), mix);
        let now = w.net().clock().now_unix_seconds();
        for dep in w.alive() {
            assert!(!dep.config.certificate.as_ref().unwrap().is_valid_at(now));
        }
        w.evolve(1);
        for dep in w.alive() {
            assert!(dep.config.certificate.as_ref().unwrap().is_valid_at(now));
        }
    }

    #[test]
    fn upgrades_and_downgrades_adjust_version_and_space() {
        let mix = StrataMix::new().with(HostClass::SecureModern, 4);
        let mut w = world(13, full("upgrade"), mix);
        let before: Vec<String> = w
            .alive()
            .map(|d| d.config.software_version.clone())
            .collect();
        let churn = w.evolve(1);
        assert_eq!(churn.upgrades(), 4);
        assert_eq!(churn.downgrades(), 0);
        for (dep, old) in w.alive().zip(&before) {
            let new = &dep.config.software_version;
            assert!(
                parse_version(new) > parse_version(old),
                "{old} -> {new} is not an upgrade"
            );
            // The served BuildInfo node follows the config.
            let node = dep
                .space
                .get(&ua_types::NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION))
                .unwrap();
            assert_eq!(
                node.value,
                Some(Variant::String(Some(new.clone()))),
                "SoftwareVersion node out of sync"
            );
        }
    }

    #[test]
    fn remediation_goes_secure_and_regression_reopens() {
        let mix = StrataMix::new().with(HostClass::WideOpen, 3);
        let mut w = world(17, full("remediation"), mix);
        let churn = w.evolve(1);
        assert_eq!(churn.remediations(), 3);
        for dep in w.alive() {
            assert!(dep
                .config
                .endpoints
                .iter()
                .all(|e| e.mode != MessageSecurityMode::None));
            assert!(!dep.config.token_types.contains(&UserTokenType::Anonymous));
            assert!(dep.config.certificate.is_some(), "secure needs a cert");
            assert!(dep.truth.cert_thumbprint.is_some());
        }
        // Remediated hosts no longer offer None, so a regression pass
        // can reopen them.
        let mut w2 = world(
            17,
            full("remediation"),
            StrataMix::new().with(HostClass::WideOpen, 3),
        );
        w2.evolve(1);
        w2.churn = full("regression");
        let churn = w2.evolve(2);
        assert_eq!(churn.regressions(), 3);
        for dep in w2.alive() {
            assert!(dep
                .config
                .endpoints
                .iter()
                .any(|e| e.mode == MessageSecurityMode::None));
            assert!(dep.config.token_types.contains(&UserTokenType::Anonymous));
        }
    }

    #[test]
    fn departures_and_arrivals_turn_the_roster_over() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 4)
            .with(HostClass::DiscoveryServer, 1);
        let mut w = world(19, full("departure"), mix);
        let churn = w.evolve(1);
        // The LDS is exempt from departure.
        assert_eq!(churn.departures(), 4);
        assert_eq!(w.alive_count(), 1);
        assert_eq!(w.net().host_count(), 1);

        w.churn = full("arrival");
        let churn = w.evolve(2).clone();
        assert_eq!(churn.arrivals(), 1, "one living host, arrival rate 1.0");
        assert_eq!(w.alive_count(), 2);
        // Arrivals are swept-class hosts on the sweep port and listen.
        let arrived = w.alive().last().unwrap();
        assert_eq!(arrived.truth.port, 4840);
        assert!(!arrived.truth.class.referral_only());
        assert!(w.net().has_listener(arrived.truth.address, 4840));
    }

    #[test]
    #[should_panic(expected = "one week at a time")]
    fn weeks_cannot_be_skipped() {
        let mut w = world(1, ChurnConfig::frozen(), StrataMix::paper_like(30));
        w.evolve(2);
    }
}
