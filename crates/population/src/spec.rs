//! The pure world specification behind lazy materialization.
//!
//! A deployed population is entirely a function of
//! `(seed, universe, mix, port)`. This module makes that function
//! *random access*: [`WorldSpec`] answers "what class/port/address does
//! host `id` have?" and — crucially — the inverse "which host, if any,
//! sits at this address?" in O(1), without ever allocating per-address
//! or per-host state for the whole universe.
//!
//! The address layout is a seeded Feistel permutation over the
//! universe's distinct-address index space ([`AddrPerm`]): host `id`
//! lives at the `perm(id)`-th address of the canonicalized universe,
//! and an address occupancy query decrypts the flat index back to a
//! candidate id. Both the eager builder ([`crate::synthesize_deployment`])
//! and the lazy world derive addresses from the same permutation, so
//! the two paths are byte-identical by construction.
//!
//! Referral wiring is derived per host by inverting the global
//! round-robin plan of the pre-lazy `plan_referrals`: a discovery
//! server of rank `d` can list its chained/hidden charges from
//! class-rank arithmetic alone ([`WorldSpec::ref_specs`]), so no
//! global address vectors are needed.

use crate::{HostClass, PopulationConfig};
use netsim::{Cidr, Ipv4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer: a cheap, well-mixed u64 → u64 bijection.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-host material seed: every RNG-derived field of host `id`
/// (vendor, keys, certificates, address space, RTT) draws from a
/// stream seeded by this — independent of synthesis order, so eager
/// and lazy materialization produce identical hosts.
pub(crate) fn host_material_seed(seed: u64, id: u64) -> u64 {
    mix64(seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Salt for the discovery servers' random same-port referral picks.
const REFS_SALT: u64 = 0x5265_6653;

/// The universe blocks that are not nested inside another block — the
/// canonical disjoint set whose size sum is the number of *distinct*
/// addresses. (CIDR blocks either nest or are disjoint.)
pub(crate) fn canonical_blocks(universe: &[Cidr]) -> Vec<Cidr> {
    universe
        .iter()
        .enumerate()
        .filter(|(i, block)| {
            !universe.iter().enumerate().any(|(j, outer)| {
                *i != j
                    && outer.contains(block.base)
                    && (outer.prefix_len < block.prefix_len
                        || (outer.prefix_len == block.prefix_len && j < *i))
            })
        })
        .map(|(_, block)| *block)
        .collect()
}

/// A seeded permutation of `[0, size)` with O(1) forward and inverse
/// evaluation: a balanced Feistel network over the next even power of
/// two, cycle-walked back into the domain. Used to scatter host ids
/// over the universe's distinct addresses injectively — `forward` is
/// the allocator, `inverse` the occupancy predicate.
pub(crate) struct AddrPerm {
    size: u64,
    half_bits: u32,
    keys: [u64; 6],
}

impl AddrPerm {
    pub(crate) fn new(seed: u64, size: u64) -> AddrPerm {
        // ceil(log2(size)) rounded up to an even bit count (>= 2) so
        // the Feistel halves balance; size 0/1 degenerate gracefully.
        let bits = if size <= 2 {
            2
        } else {
            let b = u64::BITS - (size - 1).leading_zeros();
            b + (b & 1)
        };
        let mut keys = [0u64; 6];
        for (round, key) in keys.iter_mut().enumerate() {
            *key = mix64(seed ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        AddrPerm {
            size,
            half_bits: bits / 2,
            keys,
        }
    }

    fn encrypt(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (x >> self.half_bits, x & mask);
        for &k in &self.keys {
            let f = mix64(r ^ k) & mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }

    fn decrypt(&self, y: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (y >> self.half_bits, y & mask);
        for &k in self.keys.iter().rev() {
            let f = mix64(l ^ k) & mask;
            (l, r) = (r ^ f, l);
        }
        (l << self.half_bits) | r
    }

    /// Where slot `i` lands. Cycle-walking: keep encrypting until the
    /// value falls back into `[0, size)` — the Feistel is a bijection
    /// on the padded power-of-two domain, so this terminates in O(1)
    /// expected steps (the padding is < 4x the domain).
    pub(crate) fn forward(&self, i: u64) -> u64 {
        debug_assert!(i < self.size);
        let mut x = i;
        loop {
            x = self.encrypt(x);
            if x < self.size {
                return x;
            }
        }
    }

    /// The slot that lands at `s` (inverse of [`AddrPerm::forward`]).
    pub(crate) fn inverse(&self, s: u64) -> u64 {
        debug_assert!(s < self.size);
        let mut x = s;
        loop {
            x = self.decrypt(x);
            if x < self.size {
                return x;
            }
        }
    }
}

/// A referral a discovery host announces, in symbolic form. Rendered
/// to URLs only when a host materializes (or re-registers after a
/// referenced host moved), always from *current* addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RefSpec {
    /// A real deployed host, by stable id.
    Host(u64),
    /// The announcing LDS itself, spelled non-canonically
    /// (`OPC.TCP://addr:port`, no trailing slash).
    SelfNonCanonical,
    /// A dead port on the announcing LDS (stale registration).
    DeadPort,
    /// An internal DNS name the scanner cannot resolve.
    Unresolvable,
}

/// Pure random-access view of the week-0 world: classes, ports,
/// addresses, and referral wiring for every host id, derived from the
/// population config alone. Everything is O(1) or O(#strata) per
/// query; nothing is proportional to the universe size.
pub(crate) struct WorldSpec {
    pub(crate) seed: u64,
    pub(crate) sweep_port: u16,
    /// Canonical disjoint universe blocks, declaration order.
    blocks: Vec<Cidr>,
    /// Flat-index start of each canonical block (prefix sums).
    block_starts: Vec<u64>,
    /// Number of distinct addresses in the universe.
    distinct: u64,
    perm: AddrPerm,
    /// `(class, count)` mix segments in declaration order — host ids
    /// are roster indices into the concatenation.
    segments: Vec<(HostClass, u64)>,
    /// Roster index where each segment starts.
    seg_starts: Vec<u64>,
    total: u64,
}

impl WorldSpec {
    pub(crate) fn new(cfg: &PopulationConfig) -> WorldSpec {
        let blocks = canonical_blocks(&cfg.universe);
        let mut block_starts = Vec::with_capacity(blocks.len());
        let mut distinct = 0u64;
        for block in &blocks {
            block_starts.push(distinct);
            distinct += block.size();
        }
        let mut segments = Vec::new();
        let mut seg_starts = Vec::new();
        let mut total = 0u64;
        for &(class, n) in &cfg.mix.counts {
            segments.push((class, n as u64));
            seg_starts.push(total);
            total += n as u64;
        }
        assert!(total <= distinct, "universe too small for population");
        WorldSpec {
            seed: cfg.seed,
            sweep_port: cfg.port,
            blocks,
            block_starts,
            distinct,
            perm: AddrPerm::new(mix64(cfg.seed ^ 0x4144_4452), distinct.max(1)),
            segments,
            seg_starts,
            total,
        }
    }

    /// Total host count.
    pub(crate) fn len(&self) -> u64 {
        self.total
    }

    /// Configuration stratum of host `id`.
    pub(crate) fn class_of(&self, id: u64) -> HostClass {
        debug_assert!(id < self.total);
        let seg = match self.seg_starts.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // Zero-count segments share a start with their successor; walk
        // forward to the segment that actually contains `id`.
        for s in seg..self.segments.len() {
            if id >= self.seg_starts[s] && id < self.seg_starts[s] + self.segments[s].1 {
                return self.segments[s].0;
            }
        }
        unreachable!("id {id} out of roster range");
    }

    /// Listening port of host `id` (non-default for referral-only
    /// classes, same arithmetic as the eager builder used).
    pub(crate) fn port_of(&self, id: u64) -> u16 {
        match self.class_of(id) {
            HostClass::HiddenServer => self.sweep_port + 1 + (id % 7) as u16,
            HostClass::ChainedLds => self.sweep_port + 8 + (id % 3) as u16,
            _ => self.sweep_port,
        }
    }

    fn slot_to_addr(&self, slot: u64) -> Ipv4 {
        let b = match self.block_starts.binary_search(&slot) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Ipv4(self.blocks[b].base.0 + (slot - self.block_starts[b]) as u32)
    }

    fn addr_to_slot(&self, addr: Ipv4) -> Option<u64> {
        for (b, block) in self.blocks.iter().enumerate() {
            if block.contains(addr) {
                return Some(self.block_starts[b] + (addr.0 - block.base.0) as u64);
            }
        }
        None
    }

    /// Week-0 address of host `id`.
    pub(crate) fn address_of(&self, id: u64) -> Ipv4 {
        self.slot_to_addr(self.perm.forward(id))
    }

    /// The host deployed at `addr` at week 0, if any — the O(1)
    /// occupancy predicate (inverse of [`WorldSpec::address_of`]).
    pub(crate) fn host_at(&self, addr: Ipv4) -> Option<u64> {
        let slot = self.addr_to_slot(addr)?;
        if slot >= self.distinct {
            return None;
        }
        let id = self.perm.inverse(slot);
        (id < self.total).then_some(id)
    }

    /// Number of hosts of `class`.
    pub(crate) fn count_of(&self, class: HostClass) -> u64 {
        self.segments
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, n)| n)
            .sum()
    }

    /// Roster id of the `k`-th host of `class` (ascending roster order).
    fn member(&self, class: HostClass, k: u64) -> u64 {
        let mut remaining = k;
        for (s, &(c, n)) in self.segments.iter().enumerate() {
            if c == class {
                if remaining < n {
                    return self.seg_starts[s] + remaining;
                }
                remaining -= n;
            }
        }
        unreachable!("rank {k} out of range for {class:?}");
    }

    /// Rank of `id` among hosts of its own class.
    fn rank_in_class(&self, id: u64) -> u64 {
        let class = self.class_of(id);
        let mut rank = 0;
        for (s, &(c, n)) in self.segments.iter().enumerate() {
            if c != class {
                continue;
            }
            if id >= self.seg_starts[s] && id < self.seg_starts[s] + n {
                return rank + (id - self.seg_starts[s]);
            }
            rank += n;
        }
        unreachable!("id {id} not in its own class");
    }

    /// Number of referral-candidate hosts (swept, non-LDS classes).
    fn candidate_count(&self) -> u64 {
        self.segments
            .iter()
            .filter(|(c, _)| {
                !matches!(
                    c,
                    HostClass::DiscoveryServer | HostClass::HiddenServer | HostClass::ChainedLds
                )
            })
            .map(|(_, n)| n)
            .sum()
    }

    /// Roster id of the `k`-th referral candidate.
    fn candidate(&self, k: u64) -> u64 {
        let mut remaining = k;
        for (s, &(c, n)) in self.segments.iter().enumerate() {
            if matches!(
                c,
                HostClass::DiscoveryServer | HostClass::HiddenServer | HostClass::ChainedLds
            ) {
                continue;
            }
            if remaining < n {
                return self.seg_starts[s] + remaining;
            }
            remaining -= n;
        }
        unreachable!("candidate rank {k} out of range");
    }

    /// The referrals host `id` announces, derived per host by
    /// inverting the global round-robin plan:
    ///
    /// * discovery rank `d` lists chained LDS with `c % |D| == d`
    ///   (ascending), then hidden servers routed to it, then its
    ///   self/dead/unresolvable decoys — preceded by up to three
    ///   random same-port picks from a per-host salted stream;
    /// * chained rank `c` lists its referrer back (the A→B→A loop),
    ///   the next chained LDS in the cycle, and its odd-rank hidden
    ///   charges;
    /// * without any default-port discovery server there is no wiring
    ///   at all (the referral island would be undiscoverable).
    pub(crate) fn ref_specs(&self, id: u64) -> Vec<RefSpec> {
        let d_count = self.count_of(HostClass::DiscoveryServer);
        match self.class_of(id) {
            HostClass::DiscoveryServer => {
                let mut refs = Vec::new();
                let cand = self.candidate_count();
                if cand > 0 {
                    let mut rng =
                        StdRng::seed_from_u64(host_material_seed(self.seed, id) ^ REFS_SALT);
                    for _ in 0..3.min(cand) {
                        let pick = self.candidate(rng.gen_range(0..cand));
                        if !refs.contains(&RefSpec::Host(pick)) {
                            refs.push(RefSpec::Host(pick));
                        }
                    }
                }
                let d = self.rank_in_class(id);
                let c_count = self.count_of(HostClass::ChainedLds);
                for c in 0..c_count {
                    if c % d_count == d {
                        refs.push(RefSpec::Host(self.member(HostClass::ChainedLds, c)));
                    }
                }
                for h in 0..self.count_of(HostClass::HiddenServer) {
                    let via_chained = c_count > 0 && h % 2 == 1;
                    if !via_chained && h % d_count == d {
                        refs.push(RefSpec::Host(self.member(HostClass::HiddenServer, h)));
                    }
                }
                refs.push(RefSpec::SelfNonCanonical);
                refs.push(RefSpec::DeadPort);
                refs.push(RefSpec::Unresolvable);
                refs
            }
            HostClass::ChainedLds if d_count > 0 => {
                let c = self.rank_in_class(id);
                let c_count = self.count_of(HostClass::ChainedLds);
                let mut refs = vec![RefSpec::Host(
                    self.member(HostClass::DiscoveryServer, c % d_count),
                )];
                if c_count > 1 {
                    refs.push(RefSpec::Host(
                        self.member(HostClass::ChainedLds, (c + 1) % c_count),
                    ));
                }
                for h in 0..self.count_of(HostClass::HiddenServer) {
                    if h % 2 == 1 && (h / 2) % c_count == c {
                        refs.push(RefSpec::Host(self.member(HostClass::HiddenServer, h)));
                    }
                }
                refs
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrataMix;
    use std::collections::HashSet;

    #[test]
    fn perm_is_a_bijection_with_inverse() {
        for size in [1u64, 2, 3, 7, 8, 255, 256, 1000] {
            let perm = AddrPerm::new(0xFEED ^ size, size);
            let mut seen = HashSet::new();
            for i in 0..size {
                let s = perm.forward(i);
                assert!(s < size);
                assert!(seen.insert(s), "size {size}: slot {s} hit twice");
                assert_eq!(perm.inverse(s), i, "size {size}: inverse broken at {i}");
            }
        }
    }

    #[test]
    fn spec_addresses_round_trip_and_stay_disjoint() {
        let cfg = PopulationConfig::new(
            42,
            vec![
                "10.0.0.0/24".parse().unwrap(),
                "192.0.2.0/28".parse().unwrap(),
            ],
            StrataMix::paper_like(40),
        );
        let spec = WorldSpec::new(&cfg);
        let mut addrs = HashSet::new();
        for id in 0..spec.len() {
            let addr = spec.address_of(id);
            assert!(
                cfg.universe.iter().any(|b| b.contains(addr)),
                "{addr} outside universe"
            );
            assert!(addrs.insert(addr), "{addr} assigned twice");
            assert_eq!(spec.host_at(addr), Some(id));
        }
        // Unoccupied addresses answer None.
        let mut empties = 0;
        for last in 0..=255u8 {
            let addr = Ipv4::new(10, 0, 0, last);
            if !addrs.contains(&addr) && spec.host_at(addr).is_none() {
                empties += 1;
            }
        }
        assert!(empties > 0, "no unoccupied address answered None");
        assert!(spec.host_at(Ipv4::new(203, 0, 113, 1)).is_none());
    }

    #[test]
    fn class_and_rank_arithmetic_match_expansion() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 3)
            .with(HostClass::SecureModern, 2)
            .with(HostClass::WideOpen, 1)
            .with(HostClass::DiscoveryServer, 2);
        let cfg = PopulationConfig::new(7, vec!["10.0.0.0/24".parse().unwrap()], mix.clone());
        let spec = WorldSpec::new(&cfg);
        let expanded = mix.expand();
        assert_eq!(spec.len(), expanded.len() as u64);
        for (id, class) in expanded.iter().enumerate() {
            assert_eq!(spec.class_of(id as u64), *class, "class of {id}");
        }
        // Split-segment ranks: the 4th WideOpen is roster index 5.
        assert_eq!(spec.rank_in_class(5), 3);
        assert_eq!(spec.member(HostClass::WideOpen, 3), 5);
        assert_eq!(spec.count_of(HostClass::WideOpen), 4);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn overfull_spec_panics() {
        let cfg = PopulationConfig::new(
            1,
            vec!["10.0.0.0/30".parse().unwrap()],
            StrataMix::new().with(HostClass::WideOpen, 5),
        );
        WorldSpec::new(&cfg);
    }
}
