//! Middlebox strata: deterministic per-host fault profiles with ground
//! truth.
//!
//! The paper's sweep crosses a hostile Internet — lossy paths, hosts
//! that only answer after a few SYNs, tarpits, and scan-detecting
//! firewalls that blocklist the prober for minutes or for the whole
//! sweep. [`MiddleboxPlan`] lays that hostility over a synthesized
//! [`Population`]: every host is assigned a [`FaultStratum`] and a
//! concrete [`netsim::NetProfile`] as a pure function of
//! `(campaign seed, address)`, firewalled ranges are drawn per /24 so a
//! whole prefix shares one middlebox, and — because
//! [`netsim::NetProfile::terminal_fate`] replays the exact fate
//! sequence a retrying scanner will see — the plan doubles as *checkable
//! ground truth*: it predicts which hosts a given retry budget recovers
//! and how the rest must be classified.
//!
//! Install the plan with [`netsim::Internet::set_profiles`]; it never
//! references scanner types, so the dependency arrow stays
//! population → netsim.

use crate::Population;
use netsim::{ConnectFate, FirewallProfile, Ipv4, NetProfile, ProfileProvider, TarpitProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// RNG-stream salts ("FAULT", "FW/24"): per-host and per-prefix draws
/// must not correlate with the deployment streams sharing the seed.
const HOST_FAULT_SALT: u64 = 0x0046_4155_4c54;
const PREFIX_FAULT_SALT: u64 = 0x0046_572f_3234;

/// SplitMix64 finalizer — decorrelates structured seed keys.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which middlebox stratum a host landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultStratum {
    /// No middlebox: first SYN answers, as before this layer existed.
    Polite,
    /// Lossy path: each SYN drops with an independent seeded coin.
    Lossy,
    /// Drops its first 1–5 SYNs, then behaves (NAT table warm-up,
    /// overloaded embedded stacks). Hosts at the deep end exceed a
    /// 4-attempt retry budget and are ground-truth unrecoverable.
    Flaky,
    /// Accept-then-stall tarpit (half silent, half byte-dribbling).
    Tarpit,
    /// Rate-limiting firewall over the whole /24: eats the first 1–2
    /// SYNs per host with a penalty wait, then relents.
    FirewalledTemp,
    /// Scan-detecting firewall over the whole /24 that blocklists the
    /// scanner sweep-permanently: unrecoverable at any retry budget.
    FirewalledPerm,
}

impl FaultStratum {
    /// Every stratum, report order.
    pub const ALL: [FaultStratum; 6] = [
        FaultStratum::Polite,
        FaultStratum::Lossy,
        FaultStratum::Flaky,
        FaultStratum::Tarpit,
        FaultStratum::FirewalledTemp,
        FaultStratum::FirewalledPerm,
    ];

    /// Short stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultStratum::Polite => "polite",
            FaultStratum::Lossy => "lossy",
            FaultStratum::Flaky => "flaky",
            FaultStratum::Tarpit => "tarpit",
            FaultStratum::FirewalledTemp => "firewalled_temp",
            FaultStratum::FirewalledPerm => "firewalled_perm",
        }
    }
}

/// Stratum mix and fault intensities for a [`MiddleboxPlan`].
///
/// Prefix permilles are drawn once per /24 (all hosts in a designated
/// prefix share the firewall); host permilles are drawn per host within
/// non-firewalled prefixes, in the order lossy → flaky → tarpit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiddleboxConfig {
    /// Permille of /24 prefixes behind a temporary rate limiter.
    pub firewalled_temp_prefix_permille: u16,
    /// Permille of /24 prefixes that blocklist the scanner permanently.
    pub firewalled_perm_prefix_permille: u16,
    /// Permille of (non-firewalled) hosts on lossy paths.
    pub lossy_permille: u16,
    /// Permille of hosts that drop their first few SYNs.
    pub flaky_permille: u16,
    /// Permille of hosts that are tarpits.
    pub tarpit_permille: u16,
    /// Per-SYN loss probability (permille) for lossy hosts.
    pub syn_loss_permille: u16,
    /// Stall burned per exchange by tarpit hosts (µs). Must exceed the
    /// scanner's stage budget for dribbling tarpits to be classified.
    pub tarpit_stall_micros: u64,
    /// Penalty wait per eaten SYN at firewalled prefixes (µs).
    pub firewall_penalty_micros: u64,
}

impl Default for MiddleboxConfig {
    /// All-polite: the plan assigns every host [`FaultStratum::Polite`].
    fn default() -> Self {
        MiddleboxConfig {
            firewalled_temp_prefix_permille: 0,
            firewalled_perm_prefix_permille: 0,
            lossy_permille: 0,
            flaky_permille: 0,
            tarpit_permille: 0,
            syn_loss_permille: 350,
            tarpit_stall_micros: 30_000_000,
            firewall_penalty_micros: 2_000_000,
        }
    }
}

impl MiddleboxConfig {
    /// The hostile-sweep preset: every stratum populated hard enough
    /// that a polite single-attempt scanner visibly undercounts.
    pub fn hostile() -> Self {
        MiddleboxConfig {
            firewalled_temp_prefix_permille: 150,
            firewalled_perm_prefix_permille: 80,
            lossy_permille: 180,
            flaky_permille: 180,
            tarpit_permille: 120,
            ..MiddleboxConfig::default()
        }
    }
}

/// One host's planted hostility: the stratum it landed in and the
/// concrete profile the network will enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFault {
    /// The host's address at planning time.
    pub address: Ipv4,
    /// Assigned stratum.
    pub stratum: FaultStratum,
    /// The enforced network profile (polite for
    /// [`FaultStratum::Polite`]).
    pub profile: NetProfile,
}

/// The planted middlebox layout over one population: ground truth for
/// hostile sweeps, and the [`ProfileProvider`] that enforces it.
#[derive(Debug, Clone, Default)]
pub struct MiddleboxPlan {
    faults: BTreeMap<u32, HostFault>,
}

impl MiddleboxPlan {
    /// Plans hostility over `population`, deterministically from
    /// `seed`. The same `(population, config, seed)` always yields the
    /// same plan — worker counts, engines, and probe order never enter.
    pub fn plan(population: &Population, config: &MiddleboxConfig, seed: u64) -> Self {
        let mut faults = BTreeMap::new();
        for host in &population.hosts {
            let fault = plan_host(host.address, config, seed);
            faults.insert(host.address.0, fault);
        }
        MiddleboxPlan { faults }
    }

    /// The planted fault for `addr` (None for addresses outside the
    /// planned population — the provider treats them as polite).
    pub fn fault_of(&self, addr: Ipv4) -> Option<&HostFault> {
        self.faults.get(&addr.0)
    }

    /// All planned hosts, ascending by address.
    pub fn hosts(&self) -> impl Iterator<Item = &HostFault> {
        self.faults.values()
    }

    /// Hosts assigned to `stratum`.
    pub fn stratum_count(&self, stratum: FaultStratum) -> usize {
        self.faults
            .values()
            .filter(|f| f.stratum == stratum)
            .count()
    }

    /// Ground-truth replay: true when a scanner granting `max_attempts`
    /// connects recovers this address (its profile delivers a usable
    /// stream within the budget). Unplanned addresses are recoverable
    /// trivially.
    pub fn recoverable(&self, addr: Ipv4, max_attempts: u32) -> bool {
        self.fault_of(addr)
            .is_none_or(|f| f.profile.first_delivered_attempt(max_attempts).is_some())
    }

    /// Ground-truth replay of the terminal [`ConnectFate`] a retrying
    /// scanner ends on for `addr` — the value a hostile sweep's
    /// `HostOutcome` classification is checked against.
    pub fn terminal_fate(&self, addr: Ipv4, max_attempts: u32) -> ConnectFate {
        self.fault_of(addr).map_or(ConnectFate::Deliver, |f| {
            f.profile.terminal_fate(max_attempts)
        })
    }
}

impl ProfileProvider for MiddleboxPlan {
    fn profile_of(&self, addr: Ipv4) -> NetProfile {
        self.faults
            .get(&addr.0)
            .map_or_else(NetProfile::polite, |f| f.profile)
    }
}

/// Plans one host: /24 firewall designation first (shared across the
/// prefix), then the per-host stratum draw.
fn plan_host(addr: Ipv4, config: &MiddleboxConfig, seed: u64) -> HostFault {
    let fault_seed = mix64(seed ^ HOST_FAULT_SALT ^ u64::from(addr.0));
    // The prefix stream is keyed on the /24 alone, so every host in a
    // designated prefix sees the identical firewall (same strikes, same
    // penalty) — one middlebox, not per-host coincidences.
    let mut prefix_rng =
        StdRng::seed_from_u64(mix64(seed ^ PREFIX_FAULT_SALT ^ u64::from(addr.0 >> 8)));
    let prefix_draw: u32 = prefix_rng.gen_range(0..1000);
    if prefix_draw < u32::from(config.firewalled_perm_prefix_permille) {
        return HostFault {
            address: addr,
            stratum: FaultStratum::FirewalledPerm,
            profile: NetProfile {
                fault_seed,
                firewall: Some(FirewallProfile::permanent(config.firewall_penalty_micros)),
                ..NetProfile::polite()
            },
        };
    }
    if prefix_draw
        < u32::from(config.firewalled_perm_prefix_permille)
            + u32::from(config.firewalled_temp_prefix_permille)
    {
        let strikes = prefix_rng.gen_range(1..3_u32);
        return HostFault {
            address: addr,
            stratum: FaultStratum::FirewalledTemp,
            profile: NetProfile {
                fault_seed,
                firewall: Some(FirewallProfile {
                    strikes,
                    penalty_micros: config.firewall_penalty_micros,
                }),
                ..NetProfile::polite()
            },
        };
    }

    let mut host_rng = StdRng::seed_from_u64(mix64(fault_seed ^ 0xa5));
    let host_draw: u32 = host_rng.gen_range(0..1000);
    let lossy = u32::from(config.lossy_permille);
    let flaky = lossy + u32::from(config.flaky_permille);
    let tarpit = flaky + u32::from(config.tarpit_permille);
    if host_draw < lossy {
        // Mid-stream loss rides along: the stream may die after a few
        // exchanges (degrading record completeness), but only after the
        // handshake — reachability ground truth stays crisp.
        HostFault {
            address: addr,
            stratum: FaultStratum::Lossy,
            profile: NetProfile {
                fault_seed,
                syn_loss_permille: config.syn_loss_permille,
                cut_after_exchanges: host_rng.gen_range(2..5_u32),
                ..NetProfile::polite()
            },
        }
    } else if host_draw < flaky {
        HostFault {
            address: addr,
            stratum: FaultStratum::Flaky,
            profile: NetProfile {
                fault_seed,
                flaky_connects: host_rng.gen_range(1..6_u32),
                ..NetProfile::polite()
            },
        }
    } else if host_draw < tarpit {
        HostFault {
            address: addr,
            stratum: FaultStratum::Tarpit,
            profile: NetProfile {
                fault_seed,
                tarpit: Some(TarpitProfile {
                    stall_micros: config.tarpit_stall_micros,
                    dribble_bytes: if host_rng.gen_bool(0.5) { 4 } else { 0 },
                }),
                ..NetProfile::polite()
            },
        }
    } else {
        HostFault {
            address: addr,
            stratum: FaultStratum::Polite,
            profile: NetProfile {
                fault_seed,
                ..NetProfile::polite()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, PopulationConfig, StrataMix};
    use netsim::{Internet, VirtualClock};

    fn small_population() -> Population {
        let net = Internet::new(VirtualClock::default());
        let cfg = PopulationConfig::new(
            77,
            vec!["10.50.0.0/22".parse().unwrap()],
            StrataMix::paper_like(60),
        );
        synthesize(&net, &cfg)
    }

    #[test]
    fn plan_is_deterministic_and_covers_population() {
        let pop = small_population();
        let cfg = MiddleboxConfig::hostile();
        let a = MiddleboxPlan::plan(&pop, &cfg, 2020);
        let b = MiddleboxPlan::plan(&pop, &cfg, 2020);
        assert_eq!(a.hosts().count(), pop.len());
        for (x, y) in a.hosts().zip(b.hosts()) {
            assert_eq!(x, y);
        }
        // A different seed rearranges strata (overwhelmingly likely for
        // 60 hosts; equality would mean the seed never entered).
        let c = MiddleboxPlan::plan(&pop, &cfg, 2021);
        assert!(a.hosts().zip(c.hosts()).any(|(x, y)| x != y));
    }

    #[test]
    fn default_config_is_all_polite() {
        let pop = small_population();
        let plan = MiddleboxPlan::plan(&pop, &MiddleboxConfig::default(), 2020);
        assert_eq!(plan.stratum_count(FaultStratum::Polite), pop.len());
        for host in plan.hosts() {
            assert!(host.profile.is_polite());
            assert!(plan.recoverable(host.address, 1));
        }
    }

    #[test]
    fn firewalled_prefixes_share_one_middlebox() {
        let pop = small_population();
        let plan = MiddleboxPlan::plan(&pop, &MiddleboxConfig::hostile(), 2020);
        let mut by_prefix: BTreeMap<u32, Vec<&HostFault>> = BTreeMap::new();
        for host in plan.hosts() {
            by_prefix.entry(host.address.0 >> 8).or_default().push(host);
        }
        for hosts in by_prefix.values() {
            let firewalled = hosts
                .iter()
                .filter(|h| {
                    matches!(
                        h.stratum,
                        FaultStratum::FirewalledTemp | FaultStratum::FirewalledPerm
                    )
                })
                .count();
            // All-or-nothing per /24, and one shared profile.
            assert!(firewalled == 0 || firewalled == hosts.len());
            if firewalled > 0 {
                let fw = hosts[0].profile.firewall;
                assert!(hosts.iter().all(|h| h.profile.firewall == fw));
            }
        }
    }

    #[test]
    fn ground_truth_replay_matches_strata() {
        let pop = small_population();
        let plan = MiddleboxPlan::plan(&pop, &MiddleboxConfig::hostile(), 2020);
        let budget = 4;
        for host in plan.hosts() {
            match host.stratum {
                FaultStratum::Polite => {
                    assert!(plan.recoverable(host.address, budget));
                    assert_eq!(
                        plan.terminal_fate(host.address, budget),
                        ConnectFate::Deliver
                    );
                }
                // Flaky hosts recover iff their drop count fits the
                // budget; the deep end (4–5 drops) times out.
                FaultStratum::Flaky => {
                    let drops = host.profile.flaky_connects;
                    assert_eq!(plan.recoverable(host.address, budget), drops < budget);
                    let fate = plan.terminal_fate(host.address, budget);
                    if drops < budget {
                        assert_eq!(fate, ConnectFate::Deliver);
                    } else {
                        assert_eq!(fate, ConnectFate::SynLost);
                    }
                }
                // Tarpits and permanent firewalls never recover.
                FaultStratum::Tarpit => {
                    assert!(!plan.recoverable(host.address, budget));
                    assert!(matches!(
                        plan.terminal_fate(host.address, budget),
                        ConnectFate::Tarpit(_)
                    ));
                }
                FaultStratum::FirewalledPerm => {
                    assert!(!plan.recoverable(host.address, budget));
                    assert!(matches!(
                        plan.terminal_fate(host.address, budget),
                        ConnectFate::Throttled { .. }
                    ));
                }
                // Temporary firewalls (1–2 strikes) recover within 4.
                FaultStratum::FirewalledTemp => {
                    assert!(plan.recoverable(host.address, budget));
                }
                // Lossy hosts recover iff the replayed coin says so —
                // both outcomes are legal; the fate must be consistent.
                FaultStratum::Lossy => {
                    let fate = plan.terminal_fate(host.address, budget);
                    assert_eq!(
                        plan.recoverable(host.address, budget),
                        fate == ConnectFate::Deliver
                    );
                }
            }
        }
        // The hostile preset actually plants hostility.
        assert!(plan.stratum_count(FaultStratum::Polite) < pop.len());
    }
}
