//! Multi-protocol strata: TLS-wrapped deployments with ground truth.
//!
//! "Missed Opportunities" (Dahlmanns et al., 2022) extended the OPC UA
//! census to TLS-fronted industrial protocols and found the wrapper
//! often *adds nothing*: servers behind TLS still grant anonymous
//! access, or present certificates that expired long ago.
//! [`MultiProtoPlan`] deploys exactly those strata on the `uat-tls`
//! port next to an existing OPC UA population — each host a pure
//! function of `(seed, index)` — and keeps the per-class counts as
//! checkable ground truth for the `uat-tls` deficit columns of the
//! assessment.
//!
//! Vendor-fingerprint ground truth needs no extra planting: every
//! synthesized host (OPC UA and TLS alike) carries a vendor from the
//! shared quirk table (`ua_proto::fingerprint`), and `ua-server`
//! answers bad-version hellos with that vendor's taxonomy error. The
//! oracles here ([`MultiProtoPlan::vendor_counts`],
//! [`population_vendor_counts`]) say what a fingerprinting scan must
//! recover.

use crate::{pick_free_address, Population, VENDORS};
use netsim::{Cidr, Internet, Ipv4, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
// ua-lint: allow(unordered-iteration) -- address reservation membership only, never iterated
use std::collections::HashSet;
use std::sync::Arc;
use ua_addrspace::{NodeAccess, SpaceBuilder};
use ua_crypto::{CertificateBuilder, DistinguishedName, HashAlgorithm, RsaPrivateKey};
use ua_server::{
    EndpointConfig, ServerConfig, ServerCore, TlsWrapService, UaServerService, UserAccount,
};
use ua_types::{MessageSecurityMode, SecurityPolicy, UserTokenType, Variant};

/// RNG-stream salt ("TLS") — decorrelates TLS-host draws from the OPC
/// UA population streams sharing the seed.
const TLS_HOST_SALT: u64 = 0x0054_4c53;

/// The TLS-wrapper configuration strata, one per deployed host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TlsClass {
    /// The wrapper done right: fresh certificate, inner server secure
    /// (username auth only) — no TLS-specific deficit.
    Secure,
    /// Fresh wrapper certificate over a wide-open inner server: the
    /// "TLS but anonymous" missed opportunity.
    AnonymousInner,
    /// Secure inner server behind a wrapper certificate whose validity
    /// window ended months before the scan.
    ExpiredCert,
}

impl TlsClass {
    /// Every class, report order.
    pub const ALL: [TlsClass; 3] = [
        TlsClass::Secure,
        TlsClass::AnonymousInner,
        TlsClass::ExpiredCert,
    ];

    /// Short stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            TlsClass::Secure => "tls_secure",
            TlsClass::AnonymousInner => "tls_anonymous_inner",
            TlsClass::ExpiredCert => "tls_expired_cert",
        }
    }
}

/// Class counts and the listening port for a [`MultiProtoPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiProtoConfig {
    /// Port the TLS-wrapped servers listen on.
    pub tls_port: u16,
    /// Hosts doing the wrapper right.
    pub secure: usize,
    /// Hosts with an anonymous inner server behind valid TLS.
    pub anonymous_inner: usize,
    /// Hosts serving an expired wrapper certificate.
    pub expired_cert: usize,
}

impl Default for MultiProtoConfig {
    /// Empty plan on the conventional `uat-tls` port.
    fn default() -> Self {
        MultiProtoConfig {
            tls_port: 4843,
            secure: 0,
            anonymous_inner: 0,
            expired_cert: 0,
        }
    }
}

impl MultiProtoConfig {
    /// A small mix with every stratum represented — the example and
    /// conformance-harness preset.
    pub fn sample() -> Self {
        MultiProtoConfig {
            secure: 4,
            anonymous_inner: 3,
            expired_cert: 2,
            ..MultiProtoConfig::default()
        }
    }

    /// Total host count.
    pub fn total(&self) -> usize {
        self.secure + self.anonymous_inner + self.expired_cert
    }
}

/// Ground truth for one deployed TLS-wrapped host.
#[derive(Debug, Clone)]
pub struct TlsHostTruth {
    /// Deployed address.
    pub address: Ipv4,
    /// The `uat-tls` port the wrapper listens on.
    pub port: u16,
    /// Configuration stratum.
    pub class: TlsClass,
    /// Synthetic vendor (from the shared quirk table — the vendor a
    /// fingerprinting scan must recover for this host).
    pub vendor: &'static str,
}

/// The deployed TLS strata with their ground truth.
#[derive(Debug, Clone, Default)]
pub struct MultiProtoPlan {
    /// Per-host ground truth, in deployment order.
    pub hosts: Vec<TlsHostTruth>,
}

impl MultiProtoPlan {
    /// Deploys `config` onto `net`, placing hosts into `universe` at
    /// addresses not already occupied. Deterministic: the same
    /// `(universe, config, seed)` — over the same pre-existing host set
    /// — always yields the same plan.
    pub fn deploy(
        net: &Internet,
        universe: &[Cidr],
        config: &MultiProtoConfig,
        seed: u64,
    ) -> MultiProtoPlan {
        let now = net.clock().now_unix_seconds();
        // ua-lint: allow(unordered-iteration) -- membership-only reservation set, never iterated
        let mut used: HashSet<u32> = net.host_addresses().iter().map(|a| a.0).collect();
        let mut rng = StdRng::seed_from_u64(crate::spec::mix64(seed ^ TLS_HOST_SALT));
        let mut hosts = Vec::with_capacity(config.total());
        let roster = TlsClass::ALL
            .into_iter()
            .flat_map(|class| {
                let n = match class {
                    TlsClass::Secure => config.secure,
                    TlsClass::AnonymousInner => config.anonymous_inner,
                    TlsClass::ExpiredCert => config.expired_cert,
                };
                std::iter::repeat_n(class, n)
            })
            .enumerate();
        for (idx, class) in roster {
            let address = pick_free_address(&mut rng, universe, &mut used);
            let truth = deploy_host(net, address, config.tls_port, class, idx, seed, now);
            hosts.push(truth);
        }
        MultiProtoPlan { hosts }
    }

    /// Number of deployed hosts of `class`.
    pub fn count(&self, class: TlsClass) -> usize {
        self.hosts.iter().filter(|h| h.class == class).count()
    }

    /// Oracle: hosts the "TLS but anonymous" deficit must flag.
    pub fn expected_tls_anonymous(&self) -> usize {
        self.count(TlsClass::AnonymousInner)
    }

    /// Oracle: hosts the "TLS cert expired" deficit must flag.
    pub fn expected_tls_expired(&self) -> usize {
        self.count(TlsClass::ExpiredCert)
    }

    /// Oracle: the vendor breakdown a fingerprinting `uat-tls` scan of
    /// this plan must recover.
    pub fn vendor_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for h in &self.hosts {
            *counts.entry(h.vendor).or_default() += 1;
        }
        counts
    }
}

/// Oracle for the sweep-port population: the vendor breakdown a
/// fingerprinting OPC UA scan must recover over `population`'s
/// *sweep-visible* hosts (referral-only classes are fingerprinted too
/// once referrals surface them; pass the full roster for that check).
pub fn population_vendor_counts(population: &Population) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for h in &population.hosts {
        *counts.entry(h.vendor).or_default() += 1;
    }
    counts
}

/// Builds and binds one TLS-wrapped host; returns its ground truth.
fn deploy_host(
    net: &Internet,
    address: Ipv4,
    port: u16,
    class: TlsClass,
    idx: usize,
    seed: u64,
    now: i64,
) -> TlsHostTruth {
    let mut rng =
        StdRng::seed_from_u64(crate::spec::mix64(seed ^ TLS_HOST_SALT ^ 0xA0 ^ idx as u64));
    let (vendor, uri_prefix) = VENDORS[idx % VENDORS.len()];
    let uri = format!("{uri_prefix}:tls:{idx:06}");
    let url = format!("opc.tcp://{address}:{port}/");

    // Inner server: wide open for the anonymous stratum, secure
    // (username auth, Basic256Sha256) otherwise.
    let key = RsaPrivateKey::generate(&mut rng, crate::ACTUAL_KEY_BITS, 2048);
    let inner_cert = CertificateBuilder::new(DistinguishedName::new(format!("tls-{idx}"), vendor))
        .serial(500_000 + idx as u64)
        .validity(now - 365 * 86_400, now + 2 * 365 * 86_400)
        .application_uri(&uri)
        .self_signed(HashAlgorithm::Sha256, &key);
    let config = if class == TlsClass::AnonymousInner {
        let mut c = ServerConfig::wide_open(uri.clone(), url);
        c.application_name = format!("{vendor} OPC UA Server");
        c
    } else {
        ServerConfig {
            application_uri: uri.clone(),
            application_name: format!("{vendor} OPC UA Server"),
            endpoint_url: url,
            endpoints: vec![EndpointConfig::new(
                MessageSecurityMode::SignAndEncrypt,
                SecurityPolicy::Basic256Sha256,
            )],
            token_types: vec![UserTokenType::UserName],
            certificate: Some(inner_cert.clone()),
            private_key: Some(key.clone()),
            users: vec![UserAccount {
                name: "operator".into(),
                password: format!("pw-tls-{idx}"),
            }],
            reject_foreign_certs: false,
            broken_session_config: false,
            is_discovery_server: false,
            referenced_endpoints: Vec::new(),
            software_version: "1.0.0".into(),
            max_references_per_browse: 64,
        }
    };

    // Wrapper certificate: fresh by default; the expired stratum fronts
    // the (still fresh) inner server with a certificate whose window
    // closed months ago — the stale-proxy-cert deployment.
    let wrapper_der = match class {
        TlsClass::ExpiredCert => {
            let expired =
                CertificateBuilder::new(DistinguishedName::new(format!("tls-fe-{idx}"), vendor))
                    .serial(600_000 + idx as u64)
                    .validity(now - 3 * 365 * 86_400, now - 120 * 86_400)
                    .application_uri(&uri)
                    .self_signed(HashAlgorithm::Sha256, &key);
            expired.to_der()
        }
        _ => inner_cert.to_der(),
    };

    let mut b = SpaceBuilder::new(&[uri.as_str()], "1.0");
    let folder = b.folder(None, "Line");
    b.variable(
        &folder,
        "rConveyorSpeed",
        Variant::Double(rng.gen_range(0.0..50.0)),
        NodeAccess::read_only(),
    );
    let core = ServerCore::new(config, b.finish(), seed ^ 0x7157 ^ idx as u64);
    core.set_time(now);
    let inner = UaServerService::new(core, seed ^ 0x7153 ^ idx as u64);
    let service: Arc<dyn Service> = Arc::new(TlsWrapService::with_certificate(
        Arc::new(inner),
        Some(wrapper_der),
    ));
    net.install_host(
        address,
        rng.gen_range(2_000..120_000u32),
        vec![(port, service)],
    );

    TlsHostTruth {
        address,
        port,
        class,
        vendor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, HostClass, PopulationConfig, StrataMix};
    use netsim::VirtualClock;

    fn test_net() -> Internet {
        Internet::new(VirtualClock::starting_at(1_581_206_400))
    }

    fn universe() -> Vec<Cidr> {
        vec!["10.60.0.0/22".parse().unwrap()]
    }

    #[test]
    fn deploy_is_deterministic_and_disjoint_from_population() {
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 5)
            .with(HostClass::SecureModern, 3);
        let cfg = PopulationConfig::new(21, universe(), mix);
        let net_a = test_net();
        let pop_a = synthesize(&net_a, &cfg);
        let plan_a = MultiProtoPlan::deploy(&net_a, &universe(), &MultiProtoConfig::sample(), 21);
        let net_b = test_net();
        let _ = synthesize(&net_b, &cfg);
        let plan_b = MultiProtoPlan::deploy(&net_b, &universe(), &MultiProtoConfig::sample(), 21);

        assert_eq!(plan_a.hosts.len(), MultiProtoConfig::sample().total());
        for (a, b) in plan_a.hosts.iter().zip(&plan_b.hosts) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.class, b.class);
            assert_eq!(a.vendor, b.vendor);
        }
        // TLS hosts never collide with the OPC UA population.
        for h in &plan_a.hosts {
            assert!(pop_a.host(h.address).is_none());
            assert!(net_a.has_listener(h.address, 4843));
            assert!(!net_a.has_listener(h.address, 4840));
        }
    }

    #[test]
    fn oracles_count_the_planted_strata() {
        let net = test_net();
        let plan = MultiProtoPlan::deploy(&net, &universe(), &MultiProtoConfig::sample(), 3);
        assert_eq!(plan.count(TlsClass::Secure), 4);
        assert_eq!(plan.expected_tls_anonymous(), 3);
        assert_eq!(plan.expected_tls_expired(), 2);
        let vendors = plan.vendor_counts();
        assert_eq!(vendors.values().sum::<usize>(), 9);
        // Every planted vendor is in the shared quirk table.
        for vendor in vendors.keys() {
            assert!(ua_proto::fingerprint::quirk_for_vendor(vendor).is_some());
        }
    }

    #[test]
    fn population_vendor_oracle_sums_to_roster() {
        let net = test_net();
        let cfg = PopulationConfig::new(5, universe(), StrataMix::paper_like(30));
        let pop = synthesize(&net, &cfg);
        let counts = population_vendor_counts(&pop);
        assert_eq!(counts.values().sum::<usize>(), pop.len());
        for vendor in counts.keys() {
            assert!(ua_proto::fingerprint::quirk_for_vendor(vendor).is_some());
        }
    }
}
