//! The unified world engine: host *fates* evolve cheaply every week,
//! host *material* (keys, certificates, address spaces, server cores)
//! materializes only on first probe contact.
//!
//! [`WorldCore`] holds one [`HostFate`] per roster id — a few dozen
//! bytes of class/address/liveness/event-log state — plus a memo of
//! fully built [`HostDeployment`]s. The eager path materializes every
//! fate up front (exactly the pre-lazy behavior); the lazy path
//! registers a [`netsim::HostResolver`] so the sweep answers occupancy
//! from the seeded predicate ([`crate::spec::WorldSpec`] week 0, an
//! overlay map for churned addresses afterwards) and hosts are built
//! the moment a connection first reaches them. Because every
//! RNG-derived field is a pure function of `(seed, host id, week)`,
//! both paths produce byte-identical worlds — the equivalence tests in
//! the scanner crate diff full record streams to prove it.
//!
//! Weekly churn splits the same way: *decisions* (who departs, moves,
//! renews, upgrades, remediates) are drawn per `(seed, week, id,
//! event-kind)` and recorded as [`MaterialEvent`]s on the fate;
//! *application* of an event runs immediately for materialized hosts
//! and is replayed — through the same `apply_event` — when a host
//! materializes later. Per-week cost is O(population), independent of
//! the universe size.

use crate::evolution::{host_week_seed, parse_version, ChurnConfig, ChurnEvent, WeekChurn};
use crate::spec::{mix64, RefSpec, WorldSpec};
use crate::{
    bind_deployment, build_host, initial_version, pick_free_address, setup_registry, BuildParams,
    HostClass, HostDeployment, Population, PopulationConfig, SharedSecrets, Synthesizer,
    ACTUAL_KEY_BITS,
};
use netsim::{Cidr, HostResolver, Internet, Ipv4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
// ua-lint: allow(unordered-iteration) -- maps/sets here are key-lookup only; every iterated collection is a Vec or BTreeSet
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, RwLock, Weak};
use ua_addrspace::ids;
use ua_crypto::{CertificateBuilder, DistinguishedName, HashAlgorithm, RsaPrivateKey};
use ua_server::{EndpointConfig, UserAccount};
use ua_types::{MessageSecurityMode, NodeId, SecurityPolicy, UserTokenType, Variant};

/// Per-event-kind RNG salts: each weekly decision draws from its own
/// stream so lazy replay never has to skip draws another decision
/// consumed.
const SALT_DEPART: u64 = 0x4445_5054;
const SALT_MOVE: u64 = 0x4D4F_5645;
const SALT_RENEW: u64 = 0x524E_5557;
const SALT_VERSION: u64 = 0x5645_5253;
const SALT_FIX: u64 = 0x4649_5821;
const SALT_REMED_KEY: u64 = 0x524B_4559;

fn event_rng(seed: u64, week: u32, id: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(host_week_seed(seed, week, id) ^ salt))
}

/// Certificate-serial slots inside a host's per-week serial window
/// (see [`serial_for`]).
const SLOT_RENEWAL: u64 = 0;
const SLOT_REMED: u64 = 1;

/// Certificate serial for a weekly event: host `id` owns the disjoint
/// serial space `[(id+1)e6, (id+2)e6)`; synthesis consumes the first
/// few, week `w` events use `base + 8w + slot`. Order-independent and
/// collision-free by construction.
fn serial_for(id: u64, week: u32, slot: u64) -> u64 {
    (id + 1) * 1_000_000 + (week as u64) * 8 + slot
}

/// True if synthesis gives this class an application-instance
/// certificate (mirrors `build_host` exactly).
fn class_has_certificate(class: HostClass) -> bool {
    !matches!(
        class,
        HostClass::WideOpen
            | HostClass::BrokenSession
            | HostClass::DiscoveryServer
            | HostClass::ChainedLds
    )
}

/// True if synthesis gives this class a mode-`None` endpoint (mirrors
/// `build_host` exactly).
fn class_offers_none(class: HostClass) -> bool {
    matches!(
        class,
        HostClass::WideOpen
            | HostClass::MixedLegacy
            | HostClass::BrokenSession
            | HostClass::DiscoveryServer
            | HostClass::ChainedLds
            | HostClass::HiddenServer
    )
}

/// RSA key generations `build_host` performs for this class.
fn class_keygens(class: HostClass) -> u64 {
    match class {
        HostClass::WideOpen
        | HostClass::ReusedCert
        | HostClass::BrokenSession
        | HostClass::DiscoveryServer
        | HostClass::ChainedLds => 0,
        _ => 1,
    }
}

/// Materialization telemetry: how much of the world a campaign
/// actually touched. In a lazy world `hosts_materialized` tracks
/// responsive hosts, never the universe size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializationStats {
    /// Hosts built and bound so far (first probe contacts).
    pub hosts_materialized: u64,
    /// RSA key generations performed (the dominant build cost).
    pub keygen_count: u64,
    /// Rough bytes resident in materialized host material right now.
    pub bytes_resident_estimate: u64,
    /// High-water mark of `bytes_resident_estimate`.
    pub peak_bytes_resident_estimate: u64,
}

/// Rough per-host residency: certificate DER, referral strings, and a
/// per-node constant for the served address space.
fn estimate_resident_bytes(dep: &HostDeployment) -> u64 {
    let cert = dep
        .config
        .certificate
        .as_ref()
        .map(|c| c.to_der().len() as u64)
        .unwrap_or(0);
    let refs: u64 = dep
        .config
        .referenced_endpoints
        .iter()
        .map(|u| u.len() as u64)
        .sum();
    512 + cert
        + refs
        + 96 * (dep.truth.variables + dep.truth.methods) as u64
        + if dep.config.private_key.is_some() {
            192
        } else {
            0
        }
}

/// What the overlay map says about an address the base permutation
/// no longer describes (churned addresses only).
#[derive(Debug, Clone, Copy)]
enum Occupancy {
    Occupied(u64),
    Vacated,
}

/// A weekly event that changes a host's *material* and must be
/// replayed when the host materializes after the fact.
#[derive(Debug, Clone)]
enum MaterialEvent {
    Moved { from: Ipv4, to: Ipv4 },
    Renewed { week: u32 },
    SetVersion { to: String },
    Remediated { week: u32, minted_cert: bool },
    Regressed,
}

/// The cheap per-host state the engine keeps for *every* host, built
/// or not: O(events) memory, no crypto material.
#[derive(Debug, Clone)]
struct HostFate {
    class: HostClass,
    /// Address at deployment (what `build_host` sees; moves replay on
    /// top).
    initial_address: Ipv4,
    /// Current address.
    address: Ipv4,
    port: u16,
    alive: bool,
    /// Current software version (decisions need it; material replay
    /// re-derives it from events).
    version: String,
    has_cert: bool,
    has_none: bool,
    deploy_week: u32,
    /// Week whose epoch the bound server core's clock carries — the
    /// last week the host was (re)bound in the eager path.
    last_rebind_week: u32,
    refs: Vec<RefSpec>,
    events: Vec<MaterialEvent>,
}

struct CoreState {
    fates: Vec<HostFate>,
    /// Materialized hosts by id (the memo behind the resolver).
    // ua-lint: allow(unordered-iteration) -- keyed memo: accessed by id lookup, never iterated
    deps: HashMap<u64, HostDeployment>,
    /// Address overrides on top of the week-0 permutation: only
    /// churned addresses appear here, so lookup stays O(1) with
    /// O(churn) memory.
    // ua-lint: allow(unordered-iteration) -- O(1) occupancy lookup by address, never iterated
    overlay: HashMap<u32, Occupancy>,
    /// Every address ever allocated (moves/arrivals must not recycle).
    // ua-lint: allow(unordered-iteration) -- membership checks only, never iterated
    used: HashSet<u32>,
    /// Epoch of each week seen so far (`week_nows[0]` = deployment).
    week_nows: Vec<i64>,
    arrival_cursor: usize,
    stats: MaterializationStats,
}

/// The engine shared by eager and lazy worlds. See the module docs.
pub(crate) struct WorldCore {
    net: Internet,
    seed: u64,
    sweep_port: u16,
    universe: Vec<Cidr>,
    spec: WorldSpec,
    shared: SharedSecrets,
    lazy: bool,
    state: RwLock<CoreState>,
}

impl WorldCore {
    pub(crate) fn new(net: &Internet, cfg: &PopulationConfig, lazy: bool) -> Arc<WorldCore> {
        let now = net.clock().now_unix_seconds();
        setup_registry(net, cfg);
        let spec = WorldSpec::new(cfg);
        let shared = SharedSecrets::generate(&mut Synthesizer::for_shared(cfg.seed), now);
        let mut fates = Vec::with_capacity(spec.len() as usize);
        // ua-lint: allow(unordered-iteration) -- membership checks only, never iterated
        let mut used = HashSet::new();
        for id in 0..spec.len() {
            let class = spec.class_of(id);
            let address = spec.address_of(id);
            used.insert(address.0);
            fates.push(HostFate {
                class,
                initial_address: address,
                address,
                port: spec.port_of(id),
                alive: true,
                version: initial_version(cfg.seed, id),
                has_cert: class_has_certificate(class),
                has_none: class_offers_none(class),
                deploy_week: 0,
                last_rebind_week: 0,
                refs: spec.ref_specs(id),
                events: Vec::new(),
            });
        }
        let core = Arc::new(WorldCore {
            net: net.clone(),
            seed: cfg.seed,
            sweep_port: cfg.port,
            universe: cfg.universe.clone(),
            spec,
            shared,
            lazy,
            state: RwLock::new(CoreState {
                fates,
                // ua-lint: allow(unordered-iteration) -- lookup-only map (see field docs)
                deps: HashMap::new(),
                // ua-lint: allow(unordered-iteration) -- lookup-only map (see field docs)
                overlay: HashMap::new(),
                used,
                week_nows: vec![now],
                arrival_cursor: 0,
                stats: MaterializationStats::default(),
            }),
        });
        if lazy {
            net.set_resolver(Arc::new(WorldResolver {
                core: Arc::downgrade(&core),
            }));
        } else {
            core.materialize_alive();
        }
        core
    }

    pub(crate) fn net(&self) -> &Internet {
        &self.net
    }

    /// Lock-poisoning policy, centralized: a poisoned state lock means
    /// a probe worker panicked mid-materialization and the world memo
    /// may be half-updated — propagating the panic is the only honest
    /// answer.
    fn state_read(&self) -> std::sync::RwLockReadGuard<'_, CoreState> {
        // ua-lint: allow(panic-hygiene) -- poisoned world state: a worker panicked; propagate it
        self.state.read().unwrap()
    }

    fn state_write(&self) -> std::sync::RwLockWriteGuard<'_, CoreState> {
        // ua-lint: allow(panic-hygiene) -- poisoned world state: a worker panicked; propagate it
        self.state.write().unwrap()
    }

    pub(crate) fn stats(&self) -> MaterializationStats {
        self.state_read().stats
    }

    pub(crate) fn roster_len(&self) -> usize {
        self.state_read().fates.len()
    }

    pub(crate) fn alive_count(&self) -> usize {
        let st = self.state_read();
        st.fates.iter().filter(|f| f.alive).count()
    }

    /// The host currently occupying `addr`, if any — overlay first,
    /// then the week-0 permutation. O(1), no allocation.
    fn lookup(&self, addr: Ipv4) -> Option<u64> {
        let st = self.state_read();
        match st.overlay.get(&addr.0) {
            Some(Occupancy::Occupied(id)) => Some(*id),
            Some(Occupancy::Vacated) => None,
            None => {
                let id = self.spec.host_at(addr)?;
                st.fates[id as usize].alive.then_some(id)
            }
        }
    }

    /// Ensures host `id` is built and bound. Builds run outside the
    /// state lock (they are pure, so a racing double-build is just
    /// discarded); bind + memo insert happen atomically under it.
    pub(crate) fn materialize(&self, id: u64) {
        if self.state_read().deps.contains_key(&id) {
            return;
        }
        let (dep, keygens) = self.build_current(id);
        let mut st = self.state_write();
        if st.deps.contains_key(&id) {
            return;
        }
        let bind_now = st.week_nows[st.fates[id as usize].last_rebind_week as usize];
        let bytes = estimate_resident_bytes(&dep);
        st.stats.hosts_materialized += 1;
        st.stats.keygen_count += keygens;
        st.stats.bytes_resident_estimate += bytes;
        st.stats.peak_bytes_resident_estimate = st
            .stats
            .peak_bytes_resident_estimate
            .max(st.stats.bytes_resident_estimate);
        bind_deployment(&self.net, &dep, bind_now);
        st.deps.insert(id, dep);
    }

    /// Builds host `id` in its *current* state: `build_host` at the
    /// deployment address/epoch, then every recorded event replayed in
    /// order. Returns the deployment and the keygens performed.
    fn build_current(&self, id: u64) -> (HostDeployment, u64) {
        let (fate, referenced, week_nows) = {
            let st = self.state_read();
            (
                st.fates[id as usize].clone(),
                self.render_refs(&st, id),
                st.week_nows.clone(),
            )
        };
        let mut syn = Synthesizer::for_host(self.seed, id);
        let mut dep = build_host(
            &mut syn,
            &self.shared,
            BuildParams {
                class: fate.class,
                address: fate.initial_address,
                port: fate.port,
                referenced,
                id,
                seed: self.seed,
                now: week_nows[fate.deploy_week as usize],
            },
        );
        let mut keygens = class_keygens(fate.class);
        for ev in &fate.events {
            keygens += apply_event(&mut dep, ev, id, &week_nows, &self.shared, self.seed);
        }
        (dep, keygens)
    }

    /// Renders a host's symbolic referrals to URLs from *current*
    /// addresses — identical to the eager path's rewrite-on-move end
    /// state, since vacated addresses are never recycled.
    fn render_refs(&self, st: &CoreState, id: u64) -> Vec<String> {
        let fate = &st.fates[id as usize];
        fate.refs
            .iter()
            .map(|r| match r {
                RefSpec::Host(j) => {
                    let f = &st.fates[*j as usize];
                    format!("opc.tcp://{}:{}/", f.address, f.port)
                }
                RefSpec::SelfNonCanonical => format!("OPC.TCP://{}:{}", fate.address, fate.port),
                RefSpec::DeadPort => {
                    format!("opc.tcp://{}:{}/", fate.address, self.sweep_port + 90)
                }
                RefSpec::Unresolvable => {
                    format!("opc.tcp://plant-lds-{id}.internal:{}/", self.sweep_port)
                }
            })
            .collect()
    }

    /// Materializes every living host (ground-truth APIs need the full
    /// fleet; in a lazy world call this only when you mean to pay for
    /// it).
    pub(crate) fn materialize_alive(&self) {
        let pending: Vec<u64> = {
            let st = self.state_read();
            (0..st.fates.len() as u64)
                .filter(|id| st.fates[*id as usize].alive && !st.deps.contains_key(id))
                .collect()
        };
        for id in pending {
            self.materialize(id);
        }
    }

    /// Current deployments of every living host, roster order.
    /// Materializes the fleet first.
    pub(crate) fn alive_deps(&self) -> Vec<HostDeployment> {
        self.materialize_alive();
        let st = self.state_read();
        (0..st.fates.len() as u64)
            .filter(|id| st.fates[*id as usize].alive)
            .map(|id| st.deps[&id].clone())
            .collect()
    }

    pub(crate) fn population(&self) -> Population {
        Population {
            hosts: self.alive_deps().iter().map(|d| d.truth.clone()).collect(),
            universe: self.universe.clone(),
        }
    }

    /// One week of churn: decisions from per-event salted RNGs, fates
    /// updated for everyone, material applied live for materialized
    /// hosts and logged for replay otherwise.
    pub(crate) fn evolve_week(&self, week: u32, churn: &ChurnConfig) -> WeekChurn {
        let now = self.net.clock().now_unix_seconds();
        let mut st = self.state_write();
        debug_assert_eq!(st.week_nows.len() as u32, week, "weeks must be consecutive");
        st.week_nows.push(now);
        let week_nows = st.week_nows.clone();
        let mut log = WeekChurn {
            week,
            events: Vec::new(),
        };
        let mut rebind: BTreeSet<u64> = BTreeSet::new();
        // ua-lint: allow(unordered-iteration) -- membership checks only, never iterated
        let mut moved_ids: HashSet<u64> = HashSet::new();

        for idx in 0..st.fates.len() {
            if !st.fates[idx].alive {
                continue;
            }
            let id = idx as u64;
            let class = st.fates[idx].class;
            let lds_like = matches!(class, HostClass::DiscoveryServer | HostClass::ChainedLds);

            if !lds_like && event_rng(self.seed, week, id, SALT_DEPART).gen_bool(churn.departure) {
                let addr = st.fates[idx].address;
                st.overlay.insert(addr.0, Occupancy::Vacated);
                st.fates[idx].alive = false;
                if let Some(dep) = st.deps.remove(&id) {
                    self.net.remove_host(addr);
                    st.stats.bytes_resident_estimate = st
                        .stats
                        .bytes_resident_estimate
                        .saturating_sub(estimate_resident_bytes(&dep));
                }
                log.events.push((id, ChurnEvent::Departed));
                continue;
            }

            let mut mrng = event_rng(self.seed, week, id, SALT_MOVE);
            if mrng.gen_bool(churn.ip_move) {
                let from = st.fates[idx].address;
                let to = pick_free_address(&mut mrng, &self.universe, &mut st.used);
                st.overlay.insert(from.0, Occupancy::Vacated);
                st.overlay.insert(to.0, Occupancy::Occupied(id));
                st.fates[idx].address = to;
                st.fates[idx].last_rebind_week = week;
                let ev = MaterialEvent::Moved { from, to };
                if let Some(dep) = st.deps.get_mut(&id) {
                    self.net.remove_host(from);
                    apply_event(dep, &ev, id, &week_nows, &self.shared, self.seed);
                    rebind.insert(id);
                }
                st.fates[idx].events.push(ev);
                moved_ids.insert(id);
                log.events.push((id, ChurnEvent::Moved { from }));
            }

            if st.fates[idx].has_cert
                && event_rng(self.seed, week, id, SALT_RENEW).gen_bool(churn.renewal)
            {
                let ev = MaterialEvent::Renewed { week };
                st.fates[idx].last_rebind_week = week;
                if let Some(dep) = st.deps.get_mut(&id) {
                    apply_event(dep, &ev, id, &week_nows, &self.shared, self.seed);
                    rebind.insert(id);
                }
                st.fates[idx].events.push(ev);
                log.events.push((id, ChurnEvent::RenewedCert));
            }

            if let Some((major, minor, patch)) = parse_version(&st.fates[idx].version) {
                let mut vrng = event_rng(self.seed, week, id, SALT_VERSION);
                let to = if vrng.gen_bool(churn.upgrade) {
                    // Mostly patch bumps, occasionally a minor release.
                    Some(if vrng.gen_bool(0.25) {
                        format!("{major}.{}.0", minor + 1)
                    } else {
                        format!("{major}.{minor}.{}", patch + 1)
                    })
                } else if patch > 0 && vrng.gen_bool(churn.downgrade) {
                    Some(format!("{major}.{minor}.{}", patch - 1))
                } else {
                    None
                };
                if let Some(to) = to {
                    let from = st.fates[idx].version.clone();
                    let upgraded = parse_version(&to) > parse_version(&from);
                    st.fates[idx].version = to.clone();
                    st.fates[idx].last_rebind_week = week;
                    let ev = MaterialEvent::SetVersion { to: to.clone() };
                    if let Some(dep) = st.deps.get_mut(&id) {
                        apply_event(dep, &ev, id, &week_nows, &self.shared, self.seed);
                        rebind.insert(id);
                    }
                    st.fates[idx].events.push(ev);
                    let event = if upgraded {
                        ChurnEvent::Upgraded { from, to }
                    } else {
                        ChurnEvent::Downgraded { from, to }
                    };
                    log.events.push((id, event));
                }
            }

            if !lds_like {
                let mut frng = event_rng(self.seed, week, id, SALT_FIX);
                if st.fates[idx].has_none && frng.gen_bool(churn.remediation) {
                    let minted_cert = !st.fates[idx].has_cert;
                    st.fates[idx].has_none = false;
                    st.fates[idx].has_cert = true;
                    st.fates[idx].last_rebind_week = week;
                    let ev = MaterialEvent::Remediated { week, minted_cert };
                    if let Some(dep) = st.deps.get_mut(&id) {
                        let minted = apply_event(dep, &ev, id, &week_nows, &self.shared, self.seed);
                        st.stats.keygen_count += minted;
                        rebind.insert(id);
                    }
                    st.fates[idx].events.push(ev);
                    log.events.push((id, ChurnEvent::Remediated));
                } else if !st.fates[idx].has_none && frng.gen_bool(churn.regression) {
                    st.fates[idx].has_none = true;
                    st.fates[idx].last_rebind_week = week;
                    let ev = MaterialEvent::Regressed;
                    if let Some(dep) = st.deps.get_mut(&id) {
                        apply_event(dep, &ev, id, &week_nows, &self.shared, self.seed);
                        rebind.insert(id);
                    }
                    st.fates[idx].events.push(ev);
                    log.events.push((id, ChurnEvent::Regressed));
                }
            }
        }

        // Arrivals: expected count is a fraction of the (post-departure)
        // living population, rounded stochastically but deterministically.
        let alive_now = st.fates.iter().filter(|f| f.alive).count();
        let mut arrivals_rng = StdRng::seed_from_u64(host_week_seed(self.seed, week, u64::MAX));
        let expected = alive_now as f64 * churn.arrival;
        let mut n = expected.floor() as usize;
        if expected.fract() > 0.0 && arrivals_rng.gen_bool(expected.fract()) {
            n += 1;
        }
        let mut arrived: Vec<u64> = Vec::new();
        for _ in 0..n {
            let class = crate::evolution::ARRIVAL_CLASSES
                [st.arrival_cursor % crate::evolution::ARRIVAL_CLASSES.len()];
            st.arrival_cursor += 1;
            let id = st.fates.len() as u64;
            let address = pick_free_address(&mut arrivals_rng, &self.universe, &mut st.used);
            st.overlay.insert(address.0, Occupancy::Occupied(id));
            st.fates.push(HostFate {
                class,
                initial_address: address,
                address,
                port: self.sweep_port,
                alive: true,
                version: initial_version(self.seed, id),
                has_cert: class_has_certificate(class),
                has_none: class_offers_none(class),
                deploy_week: week,
                last_rebind_week: week,
                refs: Vec::new(),
                events: Vec::new(),
            });
            arrived.push(id);
            log.events.push((id, ChurnEvent::Arrived { class }));
        }

        // Re-registration: every live FindServers answer naming a moved
        // host re-renders from current addresses (covers an LDS's own
        // non-canonical self-referral and dead decoy port too — they
        // embed the host's address textually).
        if !moved_ids.is_empty() {
            for idx in 0..st.fates.len() {
                let id = idx as u64;
                if !st.fates[idx].alive || st.fates[idx].refs.is_empty() {
                    continue;
                }
                let own_moved = moved_ids.contains(&id);
                let mentions = st.fates[idx].refs.iter().any(|r| match r {
                    RefSpec::Host(j) => moved_ids.contains(j),
                    RefSpec::SelfNonCanonical | RefSpec::DeadPort => own_moved,
                    RefSpec::Unresolvable => false,
                });
                if mentions {
                    st.fates[idx].last_rebind_week = week;
                    let urls = st.deps.contains_key(&id).then(|| self.render_refs(&st, id));
                    if let (Some(urls), Some(dep)) = (urls, st.deps.get_mut(&id)) {
                        dep.config.referenced_endpoints = urls;
                        rebind.insert(id);
                    }
                }
            }
        }

        for id in rebind {
            if st.fates[id as usize].alive {
                if let Some(dep) = st.deps.get(&id) {
                    bind_deployment(&self.net, dep, now);
                }
            }
        }
        drop(st);

        // Eager worlds bind arrivals immediately; lazy worlds leave
        // them to first probe contact.
        if !self.lazy {
            for id in arrived {
                self.materialize(id);
            }
        }
        log
    }
}

/// Applies one material event to a built deployment. Shared verbatim
/// by the live path (eager worlds, already-materialized lazy hosts)
/// and lazy replay — the byte-identity of the two paths rests on this
/// being the only implementation. Returns keygens performed.
fn apply_event(
    dep: &mut HostDeployment,
    ev: &MaterialEvent,
    id: u64,
    week_nows: &[i64],
    shared: &SharedSecrets,
    seed: u64,
) -> u64 {
    match ev {
        MaterialEvent::Moved { from, to, .. } => {
            dep.truth.address = *to;
            let old_pat = format!("://{from}:");
            let new_pat = format!("://{to}:");
            dep.config.endpoint_url = dep.config.endpoint_url.replace(&old_pat, &new_pat);
            0
        }
        MaterialEvent::Renewed { week } => {
            let now = week_nows[*week as usize];
            let old = dep
                .config
                .certificate
                .as_ref()
                // ua-lint: allow(panic-hygiene) -- renewal events are only recorded for cert-bearing fates
                .expect("renewal requires a certificate");
            let subject = old.tbs.subject.clone();
            let hash = old.signature_hash();
            let key = dep
                .config
                .private_key
                .clone()
                // ua-lint: allow(panic-hygiene) -- build_host always pairs a certificate with its key
                .expect("certificate hosts carry their key");
            let builder = CertificateBuilder::new(subject)
                .serial(serial_for(id, *week, SLOT_RENEWAL))
                .validity(now - 86_400, now + 3 * 365 * 86_400)
                .application_uri(&dep.truth.application_uri);
            // CA customers renew through their CA; everyone else
            // re-self-signs. Hash and key are kept, so a weak
            // certificate renews weak — §6 saw exactly that.
            let cert = if dep.truth.class == HostClass::SecureCa {
                builder.issued_by(
                    hash,
                    DistinguishedName::new("Sim Root CA", "Sim Trust Services"),
                    &shared.ca_key,
                    &key.public,
                )
            } else {
                builder.self_signed(hash, &key)
            };
            dep.truth.cert_thumbprint = Some(cert.thumbprint());
            dep.config.certificate = Some(cert);
            0
        }
        MaterialEvent::SetVersion { to, .. } => {
            dep.config.software_version = to.clone();
            if let Some(node) = dep
                .space
                .get_mut(&NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION))
            {
                node.value = Some(Variant::String(Some(to.clone())));
            }
            0
        }
        MaterialEvent::Remediated { week, minted_cert } => {
            let now = week_nows[*week as usize];
            dep.config
                .endpoints
                .retain(|e| e.mode != MessageSecurityMode::None);
            if dep.config.endpoints.is_empty() {
                dep.config.endpoints.push(EndpointConfig::new(
                    MessageSecurityMode::SignAndEncrypt,
                    SecurityPolicy::Basic256Sha256,
                ));
            }
            if *minted_cert {
                // Going secure requires an application-instance
                // certificate the host never had.
                let mut rng = event_rng(seed, *week, id, SALT_REMED_KEY);
                let key = RsaPrivateKey::generate(&mut rng, ACTUAL_KEY_BITS, 2048);
                let serial = serial_for(id, *week, SLOT_REMED);
                let cert = CertificateBuilder::new(DistinguishedName::new(
                    format!("dev-{serial}"),
                    dep.truth.vendor,
                ))
                .serial(serial)
                .validity(now - 86_400, now + 4 * 365 * 86_400)
                .application_uri(&dep.truth.application_uri)
                .self_signed(HashAlgorithm::Sha256, &key);
                dep.truth.cert_thumbprint = Some(cert.thumbprint());
                dep.config.certificate = Some(cert);
                dep.config.private_key = Some(key);
            }
            dep.config
                .token_types
                .retain(|t| *t != UserTokenType::Anonymous);
            if dep.config.token_types.is_empty() {
                dep.config.token_types.push(UserTokenType::UserName);
            }
            if dep.config.users.is_empty() {
                dep.config.users.push(UserAccount {
                    name: "operator".into(),
                    password: format!("pw-{id}"),
                });
            }
            u64::from(*minted_cert)
        }
        MaterialEvent::Regressed => {
            dep.config.endpoints.push(EndpointConfig::none());
            if !dep.config.token_types.contains(&UserTokenType::Anonymous) {
                dep.config.token_types.insert(0, UserTokenType::Anonymous);
            }
            0
        }
    }
}

/// The [`HostResolver`] a lazy [`WorldCore`] installs on its Internet.
/// Holds the core weakly: when the world is dropped, the resolver
/// answers "nothing there" instead of leaking the engine.
struct WorldResolver {
    core: Weak<WorldCore>,
}

impl HostResolver for WorldResolver {
    fn host_exists(&self, addr: Ipv4) -> bool {
        self.core
            .upgrade()
            .is_some_and(|core| core.lookup(addr).is_some())
    }

    fn has_listener(&self, addr: Ipv4, port: u16) -> bool {
        self.core.upgrade().is_some_and(|core| {
            core.lookup(addr)
                .is_some_and(|id| core.state_read().fates[id as usize].port == port)
        })
    }

    fn materialize(&self, _net: &Internet, addr: Ipv4) {
        if let Some(core) = self.core.upgrade() {
            if let Some(id) = core.lookup(addr) {
                core.materialize(id);
            }
        }
    }
}

/// A population deployed *lazily*: nothing is built until a probe
/// actually reaches a host.
///
/// `deploy` derives the week-0 world as a pure specification (classes,
/// ports, addresses, referral wiring) and installs an O(1) occupancy
/// resolver on `net` — the universe can hold millions of addresses
/// without allocating anything per address or per host. A sweep's SYN
/// probes answer from the seeded predicate; the first full connection
/// to a host runs `build_host` for exactly that host and binds it,
/// after which the regular service table serves it. Byte-identical to
/// [`crate::synthesize`] at any scanner worker count.
///
/// For a lazily deployed *evolving* world, see
/// [`crate::EvolvingWorld::new_lazy`].
///
/// ```
/// use netsim::{Internet, VirtualClock};
/// use population::{LazyWorld, PopulationConfig, StrataMix};
///
/// let net = Internet::new(VirtualClock::default());
/// let cfg = PopulationConfig::new(
///     7,
///     vec!["10.0.0.0/16".parse().unwrap()], // 65k addresses…
///     StrataMix::paper_like(30),            // …30 hosts
/// );
/// let world = LazyWorld::deploy(&net, &cfg);
/// assert_eq!(world.len(), 30);
/// // Nothing is built yet — SYN-level occupancy is pure arithmetic.
/// assert_eq!(world.stats().hosts_materialized, 0);
/// ```
pub struct LazyWorld {
    core: Arc<WorldCore>,
}

impl LazyWorld {
    /// Registers the lazy world for `cfg` on `net` (replaces any
    /// previous resolver). No host material is built.
    pub fn deploy(net: &Internet, cfg: &PopulationConfig) -> LazyWorld {
        LazyWorld {
            core: WorldCore::new(net, cfg, true),
        }
    }

    /// Number of hosts in the population (cheap; nothing materializes).
    pub fn len(&self) -> usize {
        self.core.roster_len()
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialization telemetry so far.
    pub fn stats(&self) -> MaterializationStats {
        self.core.stats()
    }

    /// Ground truth of the full population. **Materializes every
    /// host** — this is the audit/validation exit, not the fast path.
    pub fn population(&self) -> Population {
        self.core.population()
    }
}
