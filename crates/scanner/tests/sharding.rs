//! Shard-count determinism: for a fixed seed, the sharded pipeline must
//! produce byte-identical records, in identical order, with an identical
//! summary, no matter how many workers run the campaign.

use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{synthesize, HostClass, PopulationConfig, StrataMix};
use scanner::{ScanConfig, ScanRecord, ScanSummary, Scanner};

const SEED: u64 = 20_200_209;

/// A fresh, identically-seeded world for every run: two scans over one
/// shared net would advance the same virtual clock twice.
fn build_world() -> (Internet, Vec<Cidr>) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = ["10.40.0.0/22", "172.28.0.0/23"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let cfg = PopulationConfig::new(SEED, universe.clone(), StrataMix::paper_like(60));
    synthesize(&net, &cfg);
    (net, universe)
}

fn scan_with_workers(workers: usize) -> (ScanSummary, Vec<ScanRecord>) {
    let (net, universe) = build_world();
    let mut blocklist = Blocklist::new();
    blocklist.add_str("10.40.3.0/24").unwrap();
    let config = ScanConfig {
        workers,
        ..ScanConfig::default()
    };
    let scanner = Scanner::new(net, blocklist, config);
    let mut stream = scanner.scan_stream(universe, SEED);
    let records: Vec<ScanRecord> = stream.by_ref().collect();
    (stream.finish(), records)
}

#[test]
fn worker_counts_1_2_8_are_byte_identical() {
    let (summary1, records1) = scan_with_workers(1);
    assert!(
        summary1.opcua_hosts > 10,
        "population should yield a meaningful scan, got {summary1:?}"
    );
    // The paper mix hides servers behind LDS referrals: the campaign
    // must actually exercise the referral phase, or this test proves
    // nothing about its determinism.
    assert!(
        summary1.referrals.followed > 0,
        "campaign should follow referrals, got {:?}",
        summary1.referrals
    );
    assert!(records1.iter().any(|r| r.via.is_referral()));

    for workers in [2usize, 8] {
        let (summary, records) = scan_with_workers(workers);
        assert_eq!(
            summary, summary1,
            "summary must not depend on worker count (workers={workers})"
        );
        assert_eq!(
            records.len(),
            records1.len(),
            "record count must not depend on worker count (workers={workers})"
        );
        for (i, (a, b)) in records.iter().zip(&records1).enumerate() {
            assert_eq!(
                a, b,
                "record {i} differs between workers={workers} and workers=1"
            );
        }
        // Belt and braces: the rendered debug form is byte-identical too.
        assert_eq!(format!("{records:?}"), format!("{records1:?}"));
    }
}

#[test]
fn final_report_identical_across_worker_counts() {
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let (_, records) = scan_with_workers(workers);
            assessment::assess(&records).to_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn sync_scan_matches_sharded_stream() {
    // scan_collect (inline single shard) and scan_stream with 4 workers
    // agree record-for-record.
    let (net, universe) = build_world();
    let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
    let (sync_summary, sync_records) = scanner.scan_collect(&universe, SEED);

    let (net2, universe2) = build_world();
    let config = ScanConfig {
        workers: 4,
        ..ScanConfig::default()
    };
    let scanner2 = Scanner::new(net2, Blocklist::new(), config);
    let mut stream = scanner2.scan_stream(universe2, SEED);
    let streamed: Vec<ScanRecord> = stream.by_ref().collect();
    let summary = stream.finish();

    assert_eq!(sync_records, streamed);
    assert_eq!(sync_summary, summary);
}

/// End-to-end referral following over a synthesized world: every
/// referral-only host (non-default port, invisible to the sweep) is
/// found with correct provenance, dead/self/unresolvable referrals are
/// accounted, loops terminate — and all of it byte-identical at any
/// worker count.
#[test]
fn referral_following_end_to_end_across_worker_counts() {
    let build = || {
        let net = Internet::new(VirtualClock::default());
        let universe: Vec<Cidr> = vec!["10.44.0.0/22".parse().unwrap()];
        let mix = StrataMix::new()
            .with(HostClass::WideOpen, 6)
            .with(HostClass::SecureModern, 4)
            .with(HostClass::DiscoveryServer, 4)
            .with(HostClass::HiddenServer, 5)
            .with(HostClass::ChainedLds, 3);
        let cfg = PopulationConfig::new(SEED, universe.clone(), mix);
        let pop = synthesize(&net, &cfg);
        (net, universe, pop)
    };

    let scan = |workers: usize| {
        let (net, universe, pop) = build();
        let config = ScanConfig {
            workers,
            ..ScanConfig::default()
        };
        let scanner = Scanner::new(net, Blocklist::new(), config);
        let mut stream = scanner.scan_stream(universe, SEED);
        let records: Vec<ScanRecord> = stream.by_ref().collect();
        (stream.finish(), records, pop)
    };

    let (summary1, records1, pop) = scan(1);

    // Every deployed host — including the referral-only strata — is
    // found and speaks OPC UA.
    assert_eq!(summary1.opcua_hosts as usize, pop.len());
    for host in &pop.hosts {
        let record = records1
            .iter()
            .find(|r| r.address == host.address && r.port == host.port)
            .unwrap_or_else(|| panic!("{}:{} missing from scan", host.address, host.port));
        assert_eq!(
            record.via.is_referral(),
            host.class.referral_only(),
            "{:?} at {}:{} has wrong provenance {:?}",
            host.class,
            host.address,
            host.port,
            record.via
        );
    }

    // Chains actually deepen (LDS → chained LDS → hidden server), the
    // planted dead referrals and unresolvable names are accounted, and
    // loops (chained LDS ↔ referrer, chained cycle) terminate as dedup
    // hits rather than hanging the scan.
    let r = summary1.referrals;
    assert!(r.max_depth >= 2, "expected a chain, got {r:?}");
    assert_eq!(r.dead as usize, pop.count(HostClass::DiscoveryServer));
    assert_eq!(
        r.unfollowable as usize,
        pop.count(HostClass::DiscoveryServer)
    );
    assert!(r.already_probed > 0, "loops should dedup, got {r:?}");
    assert_eq!(
        r.followed as usize,
        pop.count(HostClass::HiddenServer) + pop.count(HostClass::ChainedLds) + r.dead as usize
    );

    // Byte-identical at any worker count — records, summary, report.
    for workers in [2usize, 8] {
        let (summary, records, _) = scan(workers);
        assert_eq!(summary, summary1, "workers={workers}");
        assert_eq!(records, records1, "workers={workers}");
    }
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&w| assessment::assess(&scan(w).1).to_string())
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
    // The paper-style summary names the referral-only hosts.
    assert!(reports[0].contains("referral-only"));
}
