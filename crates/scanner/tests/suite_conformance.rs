//! Suite conformance: every [`ProtocolSuite`] must behave identically
//! under both engines and any worker count, and a multi-suite registry
//! must compose from single-suite campaigns without interference.
//!
//! The contract, checked against planted ground truth:
//!
//! 1. **Determinism**: a two-suite campaign (OPC UA on 4840, `uat-tls`
//!    on 4843) is byte-identical across `Threaded`/`EventLoop` × 1/4/8
//!    workers — records *and* summary.
//! 2. **Composition**: the mixed-registry sweep equals the literal
//!    concatenation of the single-suite sweeps over the same world
//!    (suites run as isolated phases on disjoint ports).
//! 3. **Ground truth**: the TLS deficit columns and the vendor
//!    breakdown recover exactly what the population planted.
//! 4. **Fault classification**: under a hostile middlebox plan, every
//!    record's [`HostOutcome`] — OPC UA and `uat-tls` alike — matches
//!    the plan's replayed terminal fate, and the retry budget is never
//!    exceeded.
//! 5. **Compatibility**: an empty registry (the pre-suite default) is
//!    byte-identical to explicitly registering `OpcUaSuite` on 4840.

use std::collections::BTreeMap;
use std::sync::Arc;

use assessment::{assess, Deficit};
use netsim::{Blocklist, Cidr, ConnectFate, Internet, VirtualClock};
use population::{
    population_vendor_counts, synthesize, HostClass, HostGroundTruth, MiddleboxConfig,
    MiddleboxPlan, MultiProtoConfig, MultiProtoPlan, Population, PopulationConfig, StrataMix,
};
use scanner::{
    HostOutcome, OpcUaSuite, RetryPolicy, ScanConfig, ScanEngine, ScanRecord, ScanSummary, Scanner,
    UatTlsSuite, DEFAULT_OPCUA_PORT, DEFAULT_UATLS_PORT,
};

const SEED: u64 = 22_061_714;

/// Sweep-visible strata only (no referral-only classes), so planted
/// hosts correspond 1:1 to sweep records and the fault/vendor oracles
/// need no referral-reachability caveats.
fn sweep_mix() -> StrataMix {
    StrataMix::new()
        .with(HostClass::WideOpen, 6)
        .with(HostClass::DeprecatedOnly, 4)
        .with(HostClass::SecureModern, 4)
        .with(HostClass::ExpiredCert, 2)
        .with(HostClass::ReusedCert, 4)
        .with(HostClass::DiscoveryServer, 3)
}

/// A fresh, identically-seeded two-protocol world per run: OPC UA
/// population on the default port plus the TLS strata on `uat-tls`.
fn build_world() -> (Internet, Vec<Cidr>, Population, MultiProtoPlan) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = vec!["10.61.0.0/22".parse().unwrap()];
    let cfg = PopulationConfig::new(SEED, universe.clone(), sweep_mix());
    let population = synthesize(&net, &cfg);
    let plan = MultiProtoPlan::deploy(&net, &universe, &MultiProtoConfig::sample(), SEED);
    (net, universe, population, plan)
}

fn both_suites(engine: ScanEngine, workers: usize) -> ScanConfig {
    ScanConfig::builder()
        .engine(engine)
        .workers(workers)
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .build()
        .expect("valid two-suite config")
}

fn scan(config: ScanConfig) -> (ScanSummary, Vec<ScanRecord>) {
    let (net, universe, _, _) = build_world();
    Scanner::new(net, Blocklist::new(), config).scan_collect(&universe, SEED)
}

#[test]
fn two_suite_campaign_is_byte_identical_across_engines_and_workers() {
    let (summary1, records1) = scan(both_suites(ScanEngine::Threaded, 1));

    // The baseline must actually exercise both suites, or the matrix
    // proves nothing about multi-protocol determinism.
    let tls: Vec<&ScanRecord> = records1
        .iter()
        .filter(|r| r.port == DEFAULT_UATLS_PORT)
        .collect();
    assert_eq!(
        tls.len(),
        MultiProtoConfig::sample().total(),
        "every deployed uat-tls host must yield a record"
    );
    assert!(tls.iter().all(|r| r.payload.protocol() == "uat-tls"));
    assert!(
        tls.iter().all(|r| r.speaks()),
        "every planted uat-tls host completes the prologue"
    );
    assert!(records1
        .iter()
        .any(|r| r.port == DEFAULT_OPCUA_PORT && r.payload.protocol() == "opcua" && r.speaks()));

    for (engine, workers) in [
        (ScanEngine::Threaded, 4),
        (ScanEngine::Threaded, 8),
        (ScanEngine::EventLoop, 1),
        (ScanEngine::EventLoop, 4),
        (ScanEngine::EventLoop, 8),
    ] {
        let (summary, records) = scan(both_suites(engine, workers));
        assert_eq!(
            summary, summary1,
            "summary must not depend on ({engine:?}, workers={workers})"
        );
        assert_eq!(
            records, records1,
            "records must not depend on ({engine:?}, workers={workers})"
        );
    }
}

#[test]
fn mixed_registry_equals_concatenation_of_single_suite_sweeps() {
    let opcua_only = ScanConfig::builder()
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .build()
        .expect("valid opcua-only config");
    // uat-tls follows no referrals; a registry without any
    // referral-capable suite must disable the referral phase outright.
    let uattls_only = ScanConfig::builder()
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .referral_depth(0)
        .build()
        .expect("valid uat-tls-only config");

    let (_, opcua_records) = scan(opcua_only);
    let (_, tls_records) = scan(uattls_only);
    let (_, mixed) = scan(both_suites(ScanEngine::Threaded, 1));

    assert!(!opcua_records.is_empty() && !tls_records.is_empty());
    let concat: Vec<ScanRecord> = opcua_records.into_iter().chain(tls_records).collect();
    assert_eq!(
        mixed, concat,
        "mixed-registry sweep must equal the concatenation of single-suite sweeps"
    );
}

#[test]
fn tls_deficits_and_vendor_breakdown_recover_ground_truth() {
    let (net, universe, population, plan) = build_world();
    let (_, records) = Scanner::new(net, Blocklist::new(), both_suites(ScanEngine::Threaded, 4))
        .scan_collect(&universe, SEED);
    let report = assess(&records);

    assert_eq!(
        report.count(Deficit::TlsButAnonymous),
        plan.expected_tls_anonymous(),
        "TLS-but-anonymous column must match the planted stratum"
    );
    assert_eq!(
        report.count(Deficit::TlsExpiredCert),
        plan.expected_tls_expired(),
        "TLS-cert-expired column must match the planted stratum"
    );
    assert_eq!(
        report.protocol_hosts.get("opcua").copied().unwrap_or(0),
        population.len()
    );
    assert_eq!(
        report.protocol_hosts.get("uat-tls").copied().unwrap_or(0),
        plan.hosts.len()
    );

    // Vendor fingerprinting must attribute every host — OPC UA and
    // TLS-wrapped alike — to exactly the vendor the synthesis planted.
    let mut expected = population_vendor_counts(&population);
    for (vendor, n) in plan.vendor_counts() {
        *expected.entry(vendor).or_default() += n;
    }
    assert_eq!(report.vendor_counts, expected);
    assert_eq!(report.unfingerprinted, 0);
}

/// The outcome class a replayed terminal fate must surface as.
fn expected_outcome(fate: ConnectFate) -> HostOutcome {
    match fate {
        ConnectFate::Deliver => HostOutcome::Ok,
        ConnectFate::SynLost => HostOutcome::TimedOut,
        ConnectFate::Throttled { .. } => HostOutcome::Throttled,
        ConnectFate::Tarpit(_) => HostOutcome::Tarpitted,
    }
}

#[test]
fn planted_faults_classified_identically_for_both_suites() {
    let (net, universe, population, tls_plan) = build_world();

    // Extend the fault plan over the TLS hosts: the planner keys on
    // addresses alone, so a merged roster is all it needs.
    let mut merged = population.clone();
    for h in &tls_plan.hosts {
        merged.hosts.push(HostGroundTruth {
            address: h.address,
            port: h.port,
            class: HostClass::WideOpen,
            application_uri: String::new(),
            vendor: h.vendor,
            cert_thumbprint: None,
            reuse_group: None,
            shared_prime_group: None,
            variables: 0,
            writable_variables: 0,
            methods: 0,
            executable_methods: 0,
        });
    }
    let fault_plan = MiddleboxPlan::plan(&merged, &MiddleboxConfig::hostile(), SEED);
    net.set_profiles(Arc::new(fault_plan.clone()));

    let retry = RetryPolicy::hostile();
    let budget = retry.max_attempts;
    let config = ScanConfig::builder()
        .workers(2)
        .retry(retry)
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .build()
        .expect("valid hostile two-suite config");
    let (summary, records) =
        Scanner::new(net, Blocklist::new(), config).scan_collect(&universe, SEED);

    let by_key: BTreeMap<(u32, u16), &ScanRecord> =
        records.iter().map(|r| ((r.address.0, r.port), r)).collect();
    for h in &merged.hosts {
        let record = by_key
            .get(&(h.address.0, h.port))
            .unwrap_or_else(|| panic!("planted host {}:{} has no record", h.address, h.port));
        let expected = expected_outcome(fault_plan.terminal_fate(h.address, budget));
        assert_eq!(
            record.outcome, expected,
            "outcome for {}:{} must match the replayed terminal fate",
            h.address, h.port
        );
        assert!(
            record.connect_attempts <= budget,
            "retry budget exceeded at {}:{} ({} attempts > {budget})",
            h.address,
            h.port,
            record.connect_attempts
        );
    }

    // The hostile preset must actually exercise the retry machinery on
    // this world, and leave unrecoverable hosts for classification.
    assert!(summary.faults.retried_hosts > 0, "{:?}", summary.faults);
    assert!(summary.faults.unrecovered() > 0, "{:?}", summary.faults);
    assert!(summary.faults.connect_attempts <= records.len() as u64 * u64::from(budget));
}

#[test]
fn empty_registry_matches_explicit_opcua_registry() {
    let (default_summary, default_records) = scan(ScanConfig::default());
    let explicit = ScanConfig::builder()
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::new()))
        .build()
        .expect("valid explicit-registry config");
    let (explicit_summary, explicit_records) = scan(explicit);
    assert_eq!(default_summary, explicit_summary);
    assert_eq!(default_records, explicit_records);
}
