//! Eager-vs-lazy world equivalence: a lazily materialized population
//! must be *byte-identical* to the eager one from the scanner's point
//! of view — same `ScanRecord` streams, same summaries, same
//! longitudinal series — at every worker count, for every host class.
//! And a lazy world must pay only for the hosts probes actually reach:
//! unresponsive addresses materialize nothing.

use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{
    synthesize, ChurnConfig, EvolvingWorld, HostClass, LazyWorld, PopulationConfig, StrataMix,
};
use scanner::{Campaign, ScanConfig, ScanRecord, ScanSummary, Scanner};

const SEED: u64 = 20_200_504;
const EPOCH: u64 = 1_581_206_400;

fn universe() -> Vec<Cidr> {
    vec!["10.50.0.0/22".parse().unwrap()]
}

fn fresh_net() -> Internet {
    Internet::new(VirtualClock::starting_at(EPOCH))
}

/// One full sweep+referral campaign over `net`.
fn scan(net: Internet, workers: usize) -> (ScanSummary, Vec<ScanRecord>) {
    let config = ScanConfig {
        workers,
        ..ScanConfig::default()
    };
    let scanner = Scanner::new(net, Blocklist::new(), config);
    let mut stream = scanner.scan_stream(universe(), SEED);
    let records: Vec<ScanRecord> = stream.by_ref().collect();
    (stream.finish(), records)
}

/// A small mix exercising `class`, plus whatever wiring the class needs
/// to be reachable at all (referral-only classes need an LDS entry
/// point; an LDS is more interesting with servers to announce).
fn mix_for(class: HostClass) -> StrataMix {
    let mix = StrataMix::new().with(class, 3);
    match class {
        HostClass::HiddenServer | HostClass::ChainedLds => mix.with(HostClass::DiscoveryServer, 2),
        HostClass::DiscoveryServer => mix.with(HostClass::WideOpen, 2),
        _ => mix,
    }
}

#[test]
fn every_class_scans_identically_eager_and_lazy_at_any_worker_count() {
    for class in HostClass::ALL {
        let cfg = PopulationConfig::new(SEED ^ class as u64, universe(), mix_for(class));
        for workers in [1usize, 2, 8] {
            let eager_net = fresh_net();
            synthesize(&eager_net, &cfg);
            let (eager_summary, eager_records) = scan(eager_net, workers);

            let lazy_net = fresh_net();
            let world = LazyWorld::deploy(&lazy_net, &cfg);
            assert_eq!(world.stats().hosts_materialized, 0, "{class:?}: pre-scan");
            let (lazy_summary, lazy_records) = scan(lazy_net.clone(), workers);

            assert_eq!(
                eager_summary, lazy_summary,
                "{class:?} summary diverged at workers={workers}"
            );
            assert_eq!(
                eager_records, lazy_records,
                "{class:?} records diverged at workers={workers}"
            );
        }
    }
}

#[test]
fn paper_mix_scans_identically_and_materializes_exactly_the_population() {
    let cfg = PopulationConfig::new(SEED, universe(), StrataMix::paper_like(40));
    for workers in [1usize, 2, 8] {
        let eager_net = fresh_net();
        let pop = synthesize(&eager_net, &cfg);
        let (eager_summary, eager_records) = scan(eager_net, workers);

        let lazy_net = fresh_net();
        let world = LazyWorld::deploy(&lazy_net, &cfg);
        let (lazy_summary, lazy_records) = scan(lazy_net, workers);

        assert_eq!(eager_summary, lazy_summary, "workers={workers}");
        assert_eq!(eager_records, lazy_records, "workers={workers}");
        // Sweep + referral following reaches every host in this mix —
        // and not one host more was ever built.
        let stats = world.stats();
        assert_eq!(
            stats.hosts_materialized,
            pop.len() as u64,
            "workers={workers}: materialized ≠ responsive"
        );
        assert!(stats.keygen_count > 0);
        assert!(stats.bytes_resident_estimate > 0);
        assert_eq!(
            stats.peak_bytes_resident_estimate,
            stats.bytes_resident_estimate
        );
    }
}

#[test]
fn lazy_ground_truth_matches_eager_synthesis() {
    let cfg = PopulationConfig::new(SEED, universe(), StrataMix::paper_like(40));
    let eager = synthesize(&fresh_net(), &cfg);
    let lazy_net = fresh_net();
    let world = LazyWorld::deploy(&lazy_net, &cfg);
    let lazy = world.population();
    assert_eq!(eager.len(), lazy.len());
    for (a, b) in eager.hosts.iter().zip(&lazy.hosts) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn unresponsive_probes_materialize_nothing() {
    // 30 hosts scattered over 16k addresses: occupancy answers come
    // from the seeded predicate, and neither SYN-level sweeps nor full
    // connects to empty addresses build anything.
    let cfg = PopulationConfig::new(SEED, universe(), StrataMix::paper_like(30));
    let net = fresh_net();
    let world = LazyWorld::deploy(&net, &cfg);
    let pop = world.population(); // audit view; reset not needed — counters are checked against it
    let baseline = world.stats().hosts_materialized;
    assert_eq!(baseline, pop.len() as u64);

    // A full SYN pass over the universe touches no host material.
    let block: Cidr = "10.50.0.0/22".parse().unwrap();
    let mut listeners = 0;
    for i in 0..block.size() {
        let addr = netsim::Ipv4(block.base.0 + i as u32);
        if net.has_listener(addr, 4840) {
            listeners += 1;
        }
    }
    let swept: u64 = pop.hosts.iter().filter(|h| h.port == 4840).count() as u64;
    assert_eq!(listeners, swept, "predicate must mirror the population");
    assert_eq!(world.stats().hosts_materialized, baseline);

    // Connecting to a vacant address fails without materializing.
    let vacant = (0..block.size())
        .map(|i| netsim::Ipv4(block.base.0 + i as u32))
        .find(|a| pop.host(*a).is_none())
        .expect("a /22 holding 30 hosts has vacant addresses");
    assert!(net
        .connect(netsim::Ipv4::new(192, 0, 2, 1), vacant, 4840)
        .is_err());
    assert_eq!(world.stats().hosts_materialized, baseline);
}

#[test]
fn unprobed_lazy_world_builds_nothing_at_all() {
    let cfg = PopulationConfig::new(SEED, universe(), StrataMix::paper_like(30));
    let net = fresh_net();
    let world = LazyWorld::deploy(&net, &cfg);
    // Probe only addresses that hold nothing.
    let block: Cidr = "10.50.0.0/22".parse().unwrap();
    let mut missed = 0;
    for i in 0..64 {
        let addr = netsim::Ipv4(block.base.0 + i);
        if !net.has_listener(addr, 4840)
            && net
                .connect(netsim::Ipv4::new(192, 0, 2, 1), addr, 4840)
                .is_err()
        {
            missed += 1;
        }
    }
    assert!(missed > 0);
    assert_eq!(world.stats(), population::MaterializationStats::default());
}

/// Runs an `weeks`-week longitudinal study and returns the per-week
/// records plus the final scanner-visible truth.
fn longitudinal(
    lazy: bool,
    weeks: u32,
    workers: usize,
) -> (
    Vec<(u32, Vec<ScanRecord>)>,
    Vec<population::TruthObservation>,
) {
    let net = fresh_net();
    let cfg = PopulationConfig::new(SEED, universe(), StrataMix::paper_like(36));
    let mut world = if lazy {
        EvolvingWorld::new_lazy(&net, &cfg, ChurnConfig::default())
    } else {
        EvolvingWorld::new(&net, &cfg, ChurnConfig::default())
    };
    let config = ScanConfig {
        workers,
        ..ScanConfig::default()
    };
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), config));
    let mut series = Vec::new();
    for week in 0..weeks {
        let scan = campaign.run_week(&universe(), SEED, |w| {
            if w > 0 {
                world.evolve(w);
            }
        });
        series.push((week, scan.records));
    }
    (series, world.observable_truth())
}

#[test]
fn longitudinal_series_is_identical_eager_and_lazy() {
    for workers in [1usize, 2] {
        let (eager_series, eager_truth) = longitudinal(false, 4, workers);
        let (lazy_series, lazy_truth) = longitudinal(true, 4, workers);
        assert_eq!(
            eager_series.len(),
            lazy_series.len(),
            "workers={workers}: series length"
        );
        for ((week, eager), (_, lazy)) in eager_series.iter().zip(&lazy_series) {
            assert_eq!(eager, lazy, "workers={workers}: week {week} diverged");
        }
        assert_eq!(eager_truth, lazy_truth, "workers={workers}: final truth");
    }
}
