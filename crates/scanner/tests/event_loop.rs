//! Event-loop engine determinism: the single-threaded timer-wheel
//! engine must produce byte-identical output to the threaded engine for
//! a fixed seed — at any in-flight cap, through `scan_stream`'s bounded
//! channel, and across an abort/resume cycle stitched back together.

use std::sync::Arc;

use netsim::{Blocklist, Cidr, Internet, VirtualClock};
use population::{synthesize, MiddleboxConfig, MiddleboxPlan, PopulationConfig, StrataMix};
use scanner::{
    CancelToken, RetryPolicy, ScanConfig, ScanEngine, ScanOutcome, ScanRecord, ScanSummary,
    Scanner, SweepCheckpoint, WeekOutcome,
};

const SEED: u64 = 20_200_209;

/// A fresh, identically-seeded world per run: two scans over one shared
/// net would advance the same virtual clock twice.
fn build_world() -> (Internet, Vec<Cidr>) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = ["10.40.0.0/22", "172.28.0.0/23"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let cfg = PopulationConfig::new(SEED, universe.clone(), StrataMix::paper_like(60));
    synthesize(&net, &cfg);
    (net, universe)
}

fn scanner_with(engine: ScanEngine, workers: usize, max_in_flight: usize) -> (Scanner, Vec<Cidr>) {
    let (net, universe) = build_world();
    let mut blocklist = Blocklist::new();
    blocklist.add_str("10.40.3.0/24").unwrap();
    let config = ScanConfig {
        engine,
        workers,
        max_in_flight,
        ..ScanConfig::default()
    };
    (Scanner::new(net, blocklist, config), universe)
}

fn scan(
    engine: ScanEngine,
    workers: usize,
    max_in_flight: usize,
) -> (ScanSummary, Vec<ScanRecord>) {
    let (scanner, universe) = scanner_with(engine, workers, max_in_flight);
    let mut records = Vec::new();
    let summary = scanner.scan_with(&universe, SEED, |r| records.push(r));
    (summary, records)
}

/// Everything except the cert-interner counters must stitch exactly
/// across abort/resume; `sightings` counts work performed (certificates
/// captured by discarded in-flight probes are re-sighted on re-probe),
/// so it is telemetry, not part of the byte-identity contract.
fn assert_summary_matches_modulo_sightings(actual: &ScanSummary, expected: &ScanSummary) {
    assert_eq!(actual.sweep, expected.sweep);
    assert_eq!(actual.referrals, expected.referrals);
    assert_eq!(actual.opcua_hosts, expected.opcua_hosts);
    assert_eq!(actual.non_opcua_hosts, expected.non_opcua_hosts);
    assert_eq!(actual.started_unix, expected.started_unix);
    assert_eq!(actual.finished_unix, expected.finished_unix);
    assert_eq!(actual.certs.distinct, expected.certs.distinct);
    assert!(actual.certs.sightings >= expected.certs.sightings);
    assert_eq!(actual.faults, expected.faults);
}

/// Same world as [`scanner_with`], but fronted by a seeded
/// [`MiddleboxPlan`] and scanned with the hostile retry policy — the
/// determinism contract must survive packet loss, tarpits and
/// rate-limiting firewalls.
fn hostile_scanner_with(
    engine: ScanEngine,
    workers: usize,
    max_in_flight: usize,
) -> (Scanner, Vec<Cidr>) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = ["10.40.0.0/22", "172.28.0.0/23"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let cfg = PopulationConfig::new(SEED, universe.clone(), StrataMix::paper_like(60));
    let pop = synthesize(&net, &cfg);
    let plan = MiddleboxPlan::plan(&pop, &MiddleboxConfig::hostile(), SEED);
    net.set_profiles(Arc::new(plan));
    let mut blocklist = Blocklist::new();
    blocklist.add_str("10.40.3.0/24").unwrap();
    let config = ScanConfig {
        engine,
        workers,
        max_in_flight,
        retry: RetryPolicy::hostile(),
        ..ScanConfig::default()
    };
    (Scanner::new(net, blocklist, config), universe)
}

fn hostile_scan(
    engine: ScanEngine,
    workers: usize,
    max_in_flight: usize,
) -> (ScanSummary, Vec<ScanRecord>) {
    let (scanner, universe) = hostile_scanner_with(engine, workers, max_in_flight);
    let mut records = Vec::new();
    let summary = scanner.scan_with(&universe, SEED, |r| records.push(r));
    (summary, records)
}

#[test]
fn event_loop_matches_threaded_at_any_in_flight_cap() {
    let (threaded_summary, threaded_records) = scan(ScanEngine::Threaded, 1, 256);
    assert!(
        threaded_summary.referrals.followed > 0,
        "world must exercise the referral phase, got {:?}",
        threaded_summary.referrals
    );
    for cap in [1usize, 4, 256] {
        let (summary, records) = scan(ScanEngine::EventLoop, 1, cap);
        assert_eq!(summary, threaded_summary, "max_in_flight={cap}");
        assert_eq!(records, threaded_records, "max_in_flight={cap}");
    }
    // The event loop is single-threaded: `workers` must be inert.
    let (summary, records) = scan(ScanEngine::EventLoop, 8, 64);
    assert_eq!(summary, threaded_summary);
    assert_eq!(records, threaded_records);
}

#[test]
fn event_loop_matches_multiworker_threaded_through_scan_stream() {
    let (threaded_summary, threaded_records) = scan(ScanEngine::Threaded, 4, 256);
    let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 32);
    let mut stream = scanner.scan_stream(universe, SEED);
    let records: Vec<ScanRecord> = stream.by_ref().collect();
    let summary = stream.finish();
    assert_eq!(summary, threaded_summary);
    assert_eq!(records, threaded_records);
}

/// Backpressure must not deadlock even in the most constrained setup:
/// a records channel of capacity 1 feeding a consumer, over an engine
/// window of 1 probe — and the output order must still be exact.
#[test]
fn no_deadlock_at_capacity_one() {
    let (_, expected) = scan(ScanEngine::Threaded, 1, 256);
    let (net, universe) = build_world();
    let mut blocklist = Blocklist::new();
    blocklist.add_str("10.40.3.0/24").unwrap();
    let config = ScanConfig {
        engine: ScanEngine::EventLoop,
        channel_capacity: 1,
        max_in_flight: 1,
        ..ScanConfig::default()
    };
    let scanner = Scanner::new(net, blocklist, config);
    let mut stream = scanner.scan_stream(universe, SEED);
    let records: Vec<ScanRecord> = stream.by_ref().collect();
    stream.finish();
    assert_eq!(records, expected);
}

#[test]
fn in_flight_high_water_respects_cap() {
    for cap in [1usize, 4, 32] {
        let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, cap);
        let outcome = scanner.scan_resumable(
            &universe,
            SEED,
            &scanner::CertStore::new(),
            None,
            &CancelToken::new(),
            |_| {},
        );
        let ScanOutcome::Complete { engine, .. } = outcome else {
            panic!("fresh token cannot abort");
        };
        assert!(engine.in_flight_high_water > 0);
        assert!(
            engine.in_flight_high_water <= cap,
            "high water {} exceeds cap {cap}",
            engine.in_flight_high_water
        );
        assert!(engine.admitted > 0);
        assert_eq!(engine.admitted, engine.completed);
        assert!(engine.timers_fired > 0);
        assert_eq!(engine.timers_cancelled, 0);
        // With a window of 4+, probes genuinely interleave: more than
        // one stage chain shares the wheel, so the scheduler must have
        // fired at least one timer per admitted probe.
        assert!(engine.timers_fired >= engine.admitted);
    }
}

#[test]
fn abort_resume_stitches_byte_identical() {
    let (expected_summary, expected) = scan(ScanEngine::EventLoop, 1, 16);
    assert!(expected.len() > 10, "need a meaningful record stream");

    // Abort mid-sweep, resume, abort again in the tail (nested aborts),
    // resume to completion; the concatenation must be byte-identical.
    let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 16);
    let certs = scanner::CertStore::new();
    let mut stitched: Vec<ScanRecord> = Vec::new();

    let first = CancelToken::after_records(expected.len() as u64 / 2);
    let outcome =
        scanner.scan_resumable(&universe, SEED, &certs, None, &first, |r| stitched.push(r));
    let ScanOutcome::Aborted { checkpoint } = outcome else {
        panic!("budgeted token must abort mid-scan");
    };
    let emitted_at_abort = stitched.len();
    assert!(emitted_at_abort >= expected.len() / 2);
    assert!(emitted_at_abort < expected.len());
    assert!(!checkpoint.sweep_done, "abort should land mid-sweep");
    assert!(
        checkpoint.in_flight.len() <= 16,
        "in-flight window {} exceeds the cap",
        checkpoint.in_flight.len()
    );
    assert_eq!(checkpoint.seed, SEED);
    // Emitted records are final: they are a prefix of the full stream.
    assert_eq!(stitched[..], expected[..emitted_at_abort]);

    let second = CancelToken::after_records((expected.len() - emitted_at_abort) as u64 - 1);
    let outcome =
        scanner.scan_resumable(&universe, SEED, &certs, Some(*checkpoint), &second, |r| {
            stitched.push(r)
        });
    let checkpoint: SweepCheckpoint = match outcome {
        ScanOutcome::Aborted { checkpoint } => *checkpoint,
        ScanOutcome::Complete { .. } => panic!("second budgeted token must abort too"),
    };
    assert!(stitched.len() < expected.len());

    let outcome = scanner.scan_resumable(
        &universe,
        SEED,
        &certs,
        Some(checkpoint),
        &CancelToken::new(),
        |r| stitched.push(r),
    );
    let ScanOutcome::Complete { summary, .. } = outcome else {
        panic!("unbudgeted resume must complete");
    };
    assert_eq!(stitched, expected);
    assert_summary_matches_modulo_sightings(&summary, &expected_summary);
}

/// The tentpole contract under fire: with middleboxes injecting loss,
/// tarpits and rate limits, both engines at any worker count must still
/// emit byte-identical streams — and an abort/resume cycle must stitch
/// exactly, fault counters included.
#[test]
fn hostile_abort_resume_stitches_byte_identical() {
    let (expected_summary, expected) = hostile_scan(ScanEngine::EventLoop, 1, 16);
    assert!(expected.len() > 10, "need a meaningful record stream");
    // The hostile plan must actually bite: every non-Ok outcome class
    // the retry layer distinguishes has to appear in the stream.
    let faults = expected_summary.faults;
    assert!(faults.throttled > 0, "no throttled hosts: {faults:?}");
    assert!(faults.tarpitted > 0, "no tarpitted hosts: {faults:?}");
    assert!(faults.timed_out > 0, "no timed-out hosts: {faults:?}");
    assert!(
        faults.retried_hosts > 0,
        "retries never engaged: {faults:?}"
    );
    assert!(faults.backoff_micros > 0);

    // Threaded engine, multi-worker: same bytes.
    for workers in [1usize, 4] {
        let (summary, records) = hostile_scan(ScanEngine::Threaded, workers, 256);
        assert_eq!(summary, expected_summary, "workers={workers}");
        assert_eq!(records, expected, "workers={workers}");
    }

    // Abort mid-sweep under fire, then resume to completion.
    let (scanner, universe) = hostile_scanner_with(ScanEngine::EventLoop, 1, 16);
    let certs = scanner::CertStore::new();
    let mut stitched: Vec<ScanRecord> = Vec::new();
    let token = CancelToken::after_records(expected.len() as u64 / 2);
    let outcome =
        scanner.scan_resumable(&universe, SEED, &certs, None, &token, |r| stitched.push(r));
    let ScanOutcome::Aborted { checkpoint } = outcome else {
        panic!("budgeted token must abort mid-scan");
    };
    let emitted_at_abort = stitched.len();
    assert!(emitted_at_abort < expected.len());
    assert_eq!(stitched[..], expected[..emitted_at_abort]);
    // Fault tallies for emitted records ride the checkpoint.
    let mut at_abort = scanner::FaultStats::default();
    for r in &stitched {
        at_abort.observe(r);
    }
    assert_eq!(checkpoint.fault_stats, at_abort);

    let outcome = scanner.scan_resumable(
        &universe,
        SEED,
        &certs,
        Some(*checkpoint),
        &CancelToken::new(),
        |r| stitched.push(r),
    );
    let ScanOutcome::Complete { summary, .. } = outcome else {
        panic!("unbudgeted resume must complete");
    };
    assert_eq!(stitched, expected);
    assert_summary_matches_modulo_sightings(&summary, &expected_summary);
}

#[test]
fn abort_during_referral_phase_resumes_exactly() {
    let (expected_summary, expected) = scan(ScanEngine::EventLoop, 1, 256);
    let referral_records = expected.iter().filter(|r| r.via.is_referral()).count();
    assert!(referral_records > 0, "world must have referral hosts");

    // Budget past the sweep so cancellation lands between referral
    // levels.
    let sweep_records = expected.len() - referral_records;
    let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 256);
    let certs = scanner::CertStore::new();
    let mut stitched: Vec<ScanRecord> = Vec::new();
    let token = CancelToken::after_records(sweep_records as u64 + 1);
    let outcome =
        scanner.scan_resumable(&universe, SEED, &certs, None, &token, |r| stitched.push(r));
    let ScanOutcome::Aborted { checkpoint } = outcome else {
        panic!("budgeted token must abort");
    };
    assert!(
        checkpoint.sweep_done,
        "abort should land in the referral phase"
    );
    let outcome = scanner.scan_resumable(
        &universe,
        SEED,
        &certs,
        Some(*checkpoint),
        &CancelToken::new(),
        |r| stitched.push(r),
    );
    let ScanOutcome::Complete { summary, .. } = outcome else {
        panic!("resume must complete");
    };
    assert_eq!(stitched, expected);
    assert_summary_matches_modulo_sightings(&summary, &expected_summary);
}

/// Satellite to the churn-agnostic-clock regression
/// (`week_epochs_strictly_advance`): an aborted week must consume *no*
/// campaign time — cancelled in-flight probes only ever advanced their
/// private fork clocks — and the resumed week must be byte-identical to
/// a never-aborted one.
#[test]
fn aborted_week_leaves_campaign_clock_untouched() {
    use scanner::Campaign;

    let uninterrupted = {
        let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 16);
        let mut campaign = Campaign::new(scanner);
        let w0 = campaign.run_week(&universe, SEED, |_| {});
        let w1 = campaign.run_week(&universe, SEED, |_| {});
        vec![w0, w1]
    };

    let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 16);
    let mut campaign = Campaign::new(scanner);
    let epoch_before = campaign.scanner().internet().clock().now_micros();

    let token = CancelToken::after_records(uninterrupted[0].records.len() as u64 / 2);
    let outcome = campaign.run_week_resumable(&universe, SEED, |_| {}, &token);
    let WeekOutcome::Aborted(checkpoint) = outcome else {
        panic!("budgeted token must abort the week");
    };
    // The abort consumed zero campaign time and did not finish a week.
    assert_eq!(
        campaign.scanner().internet().clock().now_micros(),
        epoch_before,
        "an aborted week must not advance the campaign clock"
    );
    assert_eq!(campaign.weeks_run(), 0);
    assert_eq!(checkpoint.week, 0);

    let outcome = campaign.resume_week(&universe, SEED, *checkpoint, &CancelToken::new());
    let WeekOutcome::Complete(week0) = outcome else {
        panic!("resume must complete the week");
    };
    assert_eq!(campaign.weeks_run(), 1);
    assert_eq!(week0.records, uninterrupted[0].records);
    assert_summary_matches_modulo_sightings(&week0.summary, &uninterrupted[0].summary);

    // The next week is entirely unaffected by the mid-week abort.
    let outcome = campaign.run_week_resumable(&universe, SEED, |_| {}, &CancelToken::new());
    let WeekOutcome::Complete(week1) = outcome else {
        panic!("uncancelled week must complete");
    };
    assert_eq!(week1.records, uninterrupted[1].records);
    assert_summary_matches_modulo_sightings(&week1.summary, &uninterrupted[1].summary);
}

/// A `CancelGuard` dropped without disarming cancels the token — and a
/// scan driven by that token winds down at the next safe point instead
/// of running to completion.
#[test]
fn cancel_guard_aborts_scan_on_drop() {
    let (scanner, universe) = scanner_with(ScanEngine::EventLoop, 1, 16);
    let token = CancelToken::new();
    {
        let _guard = token.guard();
        // Guard dropped here — e.g. an early return in a driver.
    }
    let outcome = scanner.scan_resumable(
        &universe,
        SEED,
        &scanner::CertStore::new(),
        None,
        &token,
        |_| panic!("a pre-cancelled scan must not emit records"),
    );
    assert!(matches!(outcome, ScanOutcome::Aborted { .. }));
}
