//! The probe API: composable per-host measurement stages.
//!
//! A scan runs a stack of [`Probe`]s against every responsive address.
//! The default stack mirrors the paper's scanner (§4): UACP hello →
//! GetEndpoints/FindServers over an insecure discovery channel → (where
//! anonymous access is advertised) session establishment and a budgeted
//! address-space traversal. Custom stacks can drop stages (discovery-only
//! campaigns) or append new ones without touching the pipeline.

use crate::record::{EndpointSnapshot, ScanRecord, SessionOutcome, TraversalSummary};
use netsim::{Internet, Ipv4, TcpStreamSim};
use ua_client::{traverse, ClientConfig, ClientError, TraversalBudget, UaClient};
use ua_proto::services::IdentityToken;
use ua_types::{ApplicationType, MessageSecurityMode, SecurityPolicy};

/// Scan-wide configuration shared by all probes.
#[derive(Clone)]
pub struct ScanConfig {
    /// TCP port to probe (OPC UA's registered port).
    pub port: u16,
    /// SYN probes per second for the sweep stage.
    pub probes_per_second: u64,
    /// Source address the scanner connects from.
    pub scanner_address: Ipv4,
    /// OPC UA client identity/politeness configuration.
    pub client: ClientConfig,
    /// Budget for the traversal stage (Appendix A.2).
    pub budget: TraversalBudget,
    /// Whether to attempt anonymous sessions at all (the paper's scanner
    /// only proceeds where servers advertise credential-less access).
    pub attempt_session: bool,
    /// Bounded capacity of the record channel in streaming scans (also
    /// the per-shard buffer in sharded scans).
    pub channel_capacity: usize,
    /// Worker threads the campaign is sharded across. Output is
    /// byte-identical for a fixed seed regardless of this knob — it only
    /// changes how many cores the probe stacks use. 0 is treated as 1.
    pub workers: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            port: 4840,
            probes_per_second: 50_000,
            scanner_address: Ipv4::new(192, 0, 2, 1),
            client: ClientConfig::default(),
            budget: TraversalBudget::default(),
            attempt_session: true,
            channel_capacity: 256,
            workers: 1,
        }
    }
}

/// Mutable state threaded through the probe stack for one target.
pub struct ProbeContext<'a> {
    /// The network under measurement.
    pub internet: &'a Internet,
    /// Scan configuration.
    pub config: &'a ScanConfig,
    /// The target address.
    pub target: Ipv4,
    /// `opc.tcp://…` URL of the target.
    pub endpoint_url: String,
    /// The connected client, once the UACP stage established it.
    pub client: Option<UaClient<TcpStreamSim>>,
    /// Per-target nonce seed.
    pub seed: u64,
}

impl<'a> ProbeContext<'a> {
    /// Builds a context for `target`.
    pub fn new(internet: &'a Internet, config: &'a ScanConfig, target: Ipv4, seed: u64) -> Self {
        ProbeContext {
            internet,
            config,
            target,
            endpoint_url: format!("opc.tcp://{target}:{}/", config.port),
            client: None,
            seed,
        }
    }
}

/// Whether the pipeline continues with the next stage for this target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Run the next probe.
    Continue,
    /// Stop probing this target (record keeps whatever was learned).
    Stop,
}

/// One measurement stage.
pub trait Probe {
    /// Stage name (diagnostics).
    fn name(&self) -> &'static str;

    /// Runs the stage, updating `record` with whatever it learned.
    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome;
}

/// Stage 1: TCP connect plus UACP HEL/ACK. Filters out services that
/// answer on 4840 without speaking OPC UA (the paper found plenty).
pub struct UacpProbe;

impl Probe for UacpProbe {
    fn name(&self) -> &'static str {
        "uacp"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let stream =
            match ctx
                .internet
                .connect(ctx.config.scanner_address, ctx.target, ctx.config.port)
            {
                Ok(s) => s,
                Err(_) => return ProbeOutcome::Stop,
            };
        let mut client = UaClient::new(
            stream,
            ctx.internet.clock().clone(),
            ctx.config.client.clone(),
            ctx.seed,
        );
        match client.handshake(&ctx.endpoint_url) {
            Ok(()) => {
                record.hello_ok = true;
                ctx.client = Some(client);
                ProbeOutcome::Continue
            }
            Err(_) => ProbeOutcome::Stop,
        }
    }
}

/// Stage 2: endpoint discovery over an insecure channel (always permitted
/// for discovery), plus FindServers to follow referenced endpoints — the
/// paper's scanner added that on 2020-05-04.
pub struct DiscoveryProbe;

impl Probe for DiscoveryProbe {
    fn name(&self) -> &'static str {
        "discovery"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let url = ctx.endpoint_url.clone();
        let Some(client) = ctx.client.as_mut() else {
            return ProbeOutcome::Stop;
        };
        if client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .is_err()
        {
            return ProbeOutcome::Stop;
        }
        let endpoints = match client.get_endpoints(&url) {
            Ok(eps) => eps,
            Err(_) => return ProbeOutcome::Stop,
        };
        if let Some(first) = endpoints.first() {
            record.application_uri = first.server.application_uri.clone();
            record.application_name = first.server.application_name.text.clone();
            record.application_type = Some(first.server.application_type);
        }
        record.endpoints = endpoints
            .iter()
            .map(EndpointSnapshot::from_description)
            .collect();

        // FindServers: collect discovery URLs pointing away from this
        // host (LDS referrals).
        if let Ok(servers) = client.find_servers(&url) {
            for app in &servers {
                if app.application_type == ApplicationType::DiscoveryServer {
                    record.application_type = record
                        .application_type
                        .or(Some(ApplicationType::DiscoveryServer));
                }
                // The server's own description is part of the answer;
                // keep only URLs pointing away from this host.
                for referred in &app.discovery_urls {
                    if referred != &url && !record.referred_urls.contains(referred) {
                        record.referred_urls.push(referred.clone());
                    }
                }
            }
        }
        ProbeOutcome::Continue
    }
}

/// Stage 3: anonymous session establishment and budgeted traversal —
/// only where the server *advertises* credential-less access (the
/// paper's ethical line, Appendix A.1).
pub struct SessionProbe;

impl Probe for SessionProbe {
    fn name(&self) -> &'static str {
        "session"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        if !ctx.config.attempt_session || !record.advertises_anonymous() {
            record.session = SessionOutcome::NotAttempted;
            return ProbeOutcome::Continue;
        }
        let url = ctx.endpoint_url.clone();
        let budget = ctx.config.budget;
        let Some(client) = ctx.client.as_mut() else {
            return ProbeOutcome::Stop;
        };

        let attempt = client.create_session(&url).and_then(|()| {
            client.activate_session(IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            })
        });
        match attempt {
            Ok(()) => {
                record.session = SessionOutcome::AnonymousActivated;
                if let Ok(t) = traverse(client, &budget) {
                    record.traversal = Some(TraversalSummary::from_traversal(&t));
                }
                let _ = client.close_session();
            }
            Err(err) => {
                record.session = classify_session_error(&err);
            }
        }
        ProbeOutcome::Continue
    }
}

/// Maps a client error onto the failure stages of Table 2.
pub fn classify_session_error(err: &ClientError) -> SessionOutcome {
    if err.is_auth_rejection() {
        SessionOutcome::AuthRejected
    } else if err.is_channel_rejection() {
        SessionOutcome::ChannelRejected
    } else {
        SessionOutcome::ProtocolError
    }
}

/// The default probe stack: UACP → discovery → session.
pub fn default_stack() -> Vec<Box<dyn Probe>> {
    vec![
        Box::new(UacpProbe),
        Box::new(DiscoveryProbe),
        Box::new(SessionProbe),
    ]
}

/// A discovery-only stack (no session establishment), e.g. for strictly
/// passive-characterization campaigns.
pub fn discovery_stack() -> Vec<Box<dyn Probe>> {
    vec![Box::new(UacpProbe), Box::new(DiscoveryProbe)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::StatusCode;

    #[test]
    fn session_error_classification() {
        assert_eq!(
            classify_session_error(&ClientError::Fault(StatusCode::BAD_IDENTITY_TOKEN_REJECTED)),
            SessionOutcome::AuthRejected
        );
        assert_eq!(
            classify_session_error(&ClientError::Remote {
                status: StatusCode::BAD_CERTIFICATE_UNTRUSTED,
                reason: None,
            }),
            SessionOutcome::ChannelRejected
        );
        assert_eq!(
            classify_session_error(&ClientError::NoReply),
            SessionOutcome::ProtocolError
        );
    }

    #[test]
    fn default_stack_order() {
        let stack = default_stack();
        let names: Vec<&str> = stack.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["uacp", "discovery", "session"]);
    }
}
