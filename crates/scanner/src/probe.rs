//! The probe API: composable per-host measurement stages.
//!
//! A scan runs a stack of [`Probe`]s against every responsive address.
//! The default stack mirrors the paper's scanner (§4): UACP hello →
//! GetEndpoints/FindServers over an insecure discovery channel → (where
//! anonymous access is advertised) session establishment and a budgeted
//! address-space traversal. Custom stacks can drop stages (discovery-only
//! campaigns) or append new ones without touching the pipeline.

use crate::record::{EndpointSnapshot, HostOutcome, ScanRecord, SessionOutcome, TraversalSummary};
use crate::suite::{OpcUaSuite, ProtocolSuite, SuiteRegistry};
use crate::url::OpcUrl;
use netsim::{ConnectError, Internet, Ipv4, TcpStreamSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ua_client::{traverse, ClientConfig, ClientError, TraversalBudget, UaClient};
use ua_crypto::CertStore;
use ua_proto::services::IdentityToken;
use ua_types::{
    ApplicationDescription, ApplicationType, AttributeId, DataValue, MessageSecurityMode, NodeId,
    SecurityPolicy, Variant,
};

/// Standard NodeId of `Server.ServerStatus.BuildInfo.SoftwareVersion`
/// (OPC UA Part 6, ns=0;i=2264) — read by the session stage so weekly
/// campaigns can diff reported versions.
const SERVER_SOFTWARE_VERSION_NODE: u32 = 2264;

/// Which probe engine drives a campaign.
///
/// Both engines run the same stack over the same permutation with
/// per-host clock forks, so output is byte-identical per seed; they
/// differ only in *how* probes are multiplexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanEngine {
    /// The reference implementation: responsive hosts are sharded across
    /// [`ScanConfig::workers`] OS threads, each running its probe stack
    /// to completion with blocking I/O.
    #[default]
    Threaded,
    /// The event-driven core: every probe is a state machine
    /// (SYN → hello → endpoints → FindServers → session) multiplexed
    /// over a hierarchical timer wheel on a single thread, with
    /// admission bounded by [`ScanConfig::max_in_flight`]. Throughput
    /// tracks the in-flight budget instead of the worker count
    /// ([`ScanConfig::workers`] is ignored), and campaigns become
    /// abortable/resumable via `scanner::sched`.
    EventLoop,
}

/// Connect-phase retry/backoff policy: how hard the scanner fights a
/// hostile network before writing a host off.
///
/// The default is the polite scanner the paper runs — a single attempt,
/// no backoff — so fault-free campaigns stay byte-identical to the
/// pre-retry pipeline. All waiting happens on the probe's private clock
/// fork and the backoff jitter derives from the per-target seed, so a
/// hostile campaign is still a pure function of the campaign seed at
/// any worker count, on either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Connect attempts per target (0 is treated as 1). 1 = never
    /// retry: the polite default.
    pub max_attempts: u32,
    /// Base wait before the second attempt; doubles (×
    /// [`RetryPolicy::backoff_multiplier`]) per further attempt.
    pub backoff_micros: u64,
    /// Exponential backoff factor between attempts (0 treated as 1).
    pub backoff_multiplier: u64,
    /// Seed-derived jitter added to each backoff, as a permille of the
    /// current backoff (200 = up to +20%), decorrelating retries
    /// against rate-limit windows.
    pub jitter_permille: u64,
    /// Adaptive pacing: when the previous attempt hit a rate-limit
    /// signature ([`netsim::ConnectError::Throttled`]), the next backoff
    /// is stretched by this factor — backing off the prefix instead of
    /// hammering the firewall (0 treated as 1).
    pub throttle_pace_multiplier: u64,
    /// Per-stage time budget: when the UACP stage (connect + handshake)
    /// burns at least this much virtual time without completing, the
    /// host is classified [`HostOutcome::Tarpitted`] — the defense
    /// against byte-dribbling tarpits that keep a naive client reading
    /// forever.
    pub stage_budget_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_micros: 250_000,
            backoff_multiplier: 2,
            jitter_permille: 200,
            throttle_pace_multiplier: 4,
            stage_budget_micros: 5_000_000,
        }
    }
}

impl RetryPolicy {
    /// The hostile-network preset: four attempts with jittered
    /// exponential backoff — enough budget to recover flaky hosts and
    /// outlast temporary rate limiting.
    pub fn hostile() -> Self {
        RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        }
    }
}

/// Scan-wide configuration shared by all probes.
#[derive(Clone)]
pub struct ScanConfig {
    /// TCP port to probe (OPC UA's registered port) when
    /// [`ScanConfig::suites`] is empty — the single-protocol
    /// configuration every pre-redesign campaign used.
    pub port: u16,
    /// SYN probes per second for the sweep stage.
    pub probes_per_second: u64,
    /// Source address the scanner connects from.
    pub scanner_address: Ipv4,
    /// OPC UA client identity/politeness configuration.
    pub client: ClientConfig,
    /// Budget for the traversal stage (Appendix A.2).
    pub budget: TraversalBudget,
    /// Whether to attempt anonymous sessions at all (the paper's scanner
    /// only proceeds where servers advertise credential-less access).
    pub attempt_session: bool,
    /// Bounded capacity of the record channel in streaming scans (also
    /// the per-shard buffer in sharded scans).
    pub channel_capacity: usize,
    /// Worker threads the campaign is sharded across. Output is
    /// byte-identical for a fixed seed regardless of this knob — it only
    /// changes how many cores the probe stacks use. 0 is treated as 1.
    pub workers: usize,
    /// Maximum referral-chain depth the scanner follows after the sweep
    /// (1 = only targets announced by swept hosts; 0 disables referral
    /// following entirely).
    pub referral_depth: u32,
    /// Maximum number of referral targets probed per campaign — the
    /// safety budget against referral storms; targets beyond it are
    /// counted as truncated, never probed.
    pub referral_budget: usize,
    /// Which probe engine drives the campaign. Output is byte-identical
    /// per seed either way.
    pub engine: ScanEngine,
    /// Event-loop engine only: the bound on the admitted-but-unemitted
    /// probe window (admission stalls when it is full — the engine's
    /// backpressure against a slow record sink). 0 is treated as 1.
    pub max_in_flight: usize,
    /// Connect-phase retry/backoff policy (defaults to a single polite
    /// attempt — see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Registered protocol suites, port → suite. Empty (the default)
    /// means "OPC UA on [`ScanConfig::port`]" — byte-identical to the
    /// pre-suite pipeline. A non-empty registry makes the sweep walk
    /// the union of registered ports, driving each port's suite.
    pub suites: SuiteRegistry,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            port: 4840,
            probes_per_second: 50_000,
            scanner_address: Ipv4::new(192, 0, 2, 1),
            client: ClientConfig::default(),
            budget: TraversalBudget::default(),
            attempt_session: true,
            channel_capacity: 256,
            workers: 1,
            referral_depth: 4,
            referral_budget: 4096,
            engine: ScanEngine::default(),
            max_in_flight: 256,
            retry: RetryPolicy::default(),
            suites: SuiteRegistry::new(),
        }
    }
}

impl ScanConfig {
    /// A validating builder over the default configuration — the
    /// literal-free way to assemble the (by now) 14-field config. Plain
    /// struct literals over [`ScanConfig::default`] keep working; the
    /// builder adds up-front validation and does the zero-normalization
    /// once instead of at every use site.
    pub fn builder() -> ScanConfigBuilder {
        ScanConfigBuilder {
            cfg: ScanConfig::default(),
        }
    }

    /// Worker thread count with the "0 is treated as 1" normalization
    /// applied — the single place both engines get it from.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// In-flight cap with zero-normalization applied (see
    /// [`ScanConfig::effective_workers`]).
    pub fn effective_max_in_flight(&self) -> usize {
        self.max_in_flight.max(1)
    }

    /// Record-channel capacity with zero-normalization applied.
    pub fn effective_channel_capacity(&self) -> usize {
        self.channel_capacity.max(1)
    }

    /// The suites a campaign drives, in ascending port order: the
    /// registry when non-empty, else the classic single-suite view —
    /// OPC UA on [`ScanConfig::port`].
    pub fn effective_suites(&self) -> Vec<(u16, Arc<dyn ProtocolSuite>)> {
        if self.suites.is_empty() {
            vec![(
                self.port,
                Arc::new(OpcUaSuite::new()) as Arc<dyn ProtocolSuite>,
            )]
        } else {
            self.suites
                .iter()
                .map(|(port, suite)| (port, Arc::clone(suite)))
                .collect()
        }
    }
}

/// Why [`ScanConfigBuilder::build`] rejected a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `referral_depth > 0` but no registered suite follows referrals —
    /// the depth budget could never be spent.
    ReferralDepthWithoutReferralSuite,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ReferralDepthWithoutReferralSuite => write!(
                f,
                "referral_depth > 0 requires a registered suite with referral support \
                 (set referral_depth to 0, or register a suite that follows referrals)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ScanConfig`]: fluent setters, then a validating
/// [`ScanConfigBuilder::build`] that normalizes the zero-means-one
/// knobs exactly once.
#[derive(Clone)]
pub struct ScanConfigBuilder {
    cfg: ScanConfig,
}

impl ScanConfigBuilder {
    /// Sweep port for the classic single-suite configuration.
    pub fn port(mut self, port: u16) -> Self {
        self.cfg.port = port;
        self
    }

    /// SYN probes per second for the sweep stage.
    pub fn probes_per_second(mut self, pps: u64) -> Self {
        self.cfg.probes_per_second = pps;
        self
    }

    /// Source address the scanner connects from.
    pub fn scanner_address(mut self, addr: Ipv4) -> Self {
        self.cfg.scanner_address = addr;
        self
    }

    /// OPC UA client identity/politeness configuration.
    pub fn client(mut self, client: ClientConfig) -> Self {
        self.cfg.client = client;
        self
    }

    /// Budget for the traversal stage.
    pub fn budget(mut self, budget: TraversalBudget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Whether to attempt anonymous sessions at all.
    pub fn attempt_session(mut self, attempt: bool) -> Self {
        self.cfg.attempt_session = attempt;
        self
    }

    /// Record-channel capacity (0 normalized to 1 at build).
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.cfg.channel_capacity = capacity;
        self
    }

    /// Worker thread count (0 normalized to 1 at build).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Maximum referral-chain depth (0 disables referral following).
    pub fn referral_depth(mut self, depth: u32) -> Self {
        self.cfg.referral_depth = depth;
        self
    }

    /// Maximum referral targets probed per campaign.
    pub fn referral_budget(mut self, budget: usize) -> Self {
        self.cfg.referral_budget = budget;
        self
    }

    /// Which probe engine drives the campaign.
    pub fn engine(mut self, engine: ScanEngine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Event-loop in-flight cap (0 normalized to 1 at build).
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.cfg.max_in_flight = cap;
        self
    }

    /// Connect-phase retry/backoff policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Registers `suite` on `port` (replacing any suite already there).
    pub fn suite(mut self, port: u16, suite: Arc<dyn ProtocolSuite>) -> Self {
        self.cfg.suites.register(port, suite);
        self
    }

    /// Replaces the whole suite registry.
    pub fn suites(mut self, suites: SuiteRegistry) -> Self {
        self.cfg.suites = suites;
        self
    }

    /// Validates and finishes the configuration. The zero-means-one
    /// knobs (`workers`, `max_in_flight`, `channel_capacity`,
    /// `retry.max_attempts`) are normalized here, once, so engines can
    /// rely on the invariant instead of re-checking at every use.
    pub fn build(self) -> Result<ScanConfig, ConfigError> {
        let mut cfg = self.cfg;
        cfg.workers = cfg.workers.max(1);
        cfg.max_in_flight = cfg.max_in_flight.max(1);
        cfg.channel_capacity = cfg.channel_capacity.max(1);
        cfg.retry.max_attempts = cfg.retry.max_attempts.max(1);
        if cfg.referral_depth > 0
            && !cfg
                .effective_suites()
                .iter()
                .any(|(_, suite)| suite.follows_referrals())
        {
            return Err(ConfigError::ReferralDepthWithoutReferralSuite);
        }
        Ok(cfg)
    }
}

/// Mutable state threaded through the probe stack for one target.
pub struct ProbeContext<'a> {
    /// The network under measurement.
    pub internet: &'a Internet,
    /// Scan configuration.
    pub config: &'a ScanConfig,
    /// Campaign-wide certificate interner: every certificate a probe
    /// stage captures goes through it, so a certificate served by N
    /// hosts is parsed and thumbprinted once.
    pub certs: &'a CertStore,
    /// The target address.
    pub target: Ipv4,
    /// The target port (the sweep port, or whatever a referral named).
    pub port: u16,
    /// `opc.tcp://…` URL of the target.
    pub endpoint_url: String,
    /// The connected client, once the UACP stage established it.
    pub client: Option<UaClient<TcpStreamSim>>,
    /// Per-target nonce seed.
    pub seed: u64,
    /// The protocol suite driving this probe — owns the connect-error
    /// classification (defaults to plain OPC UA; engines install the
    /// registered suite before the first stage runs).
    pub suite: Arc<dyn ProtocolSuite>,
}

impl<'a> ProbeContext<'a> {
    /// Builds a context for an explicit `(target, port)` pair — the
    /// sweep passes [`ScanConfig::port`], the referral engine whatever
    /// port the announced URL named.
    pub fn for_target(
        internet: &'a Internet,
        config: &'a ScanConfig,
        certs: &'a CertStore,
        target: Ipv4,
        port: u16,
        seed: u64,
    ) -> Self {
        ProbeContext {
            internet,
            config,
            certs,
            target,
            port,
            endpoint_url: format!("opc.tcp://{target}:{port}/"),
            client: None,
            seed,
            suite: Arc::new(OpcUaSuite::new()),
        }
    }

    /// Runs the connect phase under [`ScanConfig::retry`]: up to
    /// `max_attempts` SYNs with jittered exponential backoff between
    /// them, throttle-aware pacing, and a [`HostOutcome`] verdict (plus
    /// attempt/backoff accounting) written to `record`.
    ///
    /// Both engines call this through the shared probe stack, and every
    /// wait lands on this probe's clock fork — exactly like probe
    /// latency — so hostile campaigns stay byte-identical across
    /// engines, worker counts, and in-flight caps.
    pub fn connect_with_retry(&self, record: &mut ScanRecord) -> Option<TcpStreamSim> {
        /// Salt for the per-target backoff-jitter stream ("RETRY"),
        /// keeping it independent of the nonce stream sharing the seed.
        const RETRY_JITTER_SALT: u64 = 0x0052_4554_5259;
        let policy = &self.config.retry;
        let mut jitter = StdRng::seed_from_u64(self.seed ^ RETRY_JITTER_SALT);
        let mut backoff = policy.backoff_micros;
        let mut throttled = false;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                let span = backoff.saturating_mul(policy.jitter_permille) / 1_000;
                let mut wait = backoff
                    + if span > 0 {
                        jitter.gen_range(0..span)
                    } else {
                        0
                    };
                if throttled {
                    // Rate-limit signature: stretch the wait instead of
                    // hammering the firewall's detection window.
                    wait = wait.saturating_mul(policy.throttle_pace_multiplier.max(1));
                }
                self.internet.clock().advance_micros(wait);
                record.backoff_micros += wait;
                backoff = backoff.saturating_mul(policy.backoff_multiplier.max(1));
            }
            record.connect_attempts = attempt + 1;
            match self.internet.connect_attempt(
                self.config.scanner_address,
                self.target,
                self.port,
                attempt,
            ) {
                Ok(stream) => {
                    record.outcome = HostOutcome::Ok;
                    return Some(stream);
                }
                Err(err) => {
                    // The suite owns the error→outcome taxonomy; the
                    // retry ladder only decides what is worth retrying.
                    record.outcome = self.suite.classify_connect_error(err);
                    match err {
                        // RST is an answer: retrying is pointless. A
                        // silent tarpit stalls every attempt
                        // identically; one burned stall budget is
                        // enough evidence.
                        ConnectError::Refused | ConnectError::Stalled => return None,
                        ConnectError::NoRoute => throttled = false,
                        ConnectError::Throttled => throttled = true,
                    }
                }
            }
        }
        None
    }
}

/// Whether the pipeline continues with the next stage for this target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Run the next probe.
    Continue,
    /// Stop probing this target (record keeps whatever was learned).
    Stop,
}

/// One measurement stage.
pub trait Probe {
    /// Stage name (diagnostics).
    fn name(&self) -> &'static str;

    /// Runs the stage, updating `record` with whatever it learned.
    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome;
}

/// Stage 1: TCP connect plus UACP HEL/ACK. Filters out services that
/// answer on 4840 without speaking OPC UA (the paper found plenty).
pub struct UacpProbe;

impl Probe for UacpProbe {
    fn name(&self) -> &'static str {
        "uacp"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let Some(stream) = ctx.connect_with_retry(record) else {
            return ProbeOutcome::Stop;
        };
        // Budget the post-connect conversation only: retry timeouts are
        // already classified, but a delivered stream can still be a
        // byte-dribbling tarpit that stalls the handshake forever.
        let stage_start = ctx.internet.clock().now_micros();
        let mut client = UaClient::new(
            stream,
            ctx.internet.clock().clone(),
            ctx.config.client.clone(),
            ctx.seed,
        );
        match client.handshake(&ctx.endpoint_url) {
            Ok(()) => {
                record.opcua_mut().hello_ok = true;
                ctx.client = Some(client);
                ProbeOutcome::Continue
            }
            Err(_) => {
                // A peer that accepted and then dribbled the stage
                // budget away is a tarpit, not a non-OPC-UA speaker.
                let elapsed = ctx
                    .internet
                    .clock()
                    .now_micros()
                    .saturating_sub(stage_start);
                if elapsed >= ctx.config.retry.stage_budget_micros {
                    record.outcome = HostOutcome::Tarpitted;
                }
                ProbeOutcome::Stop
            }
        }
    }
}

/// Stage 2: endpoint discovery over an insecure channel (always
/// permitted for discovery) — opens the `None`-policy channel and
/// snapshots GetEndpoints into the record.
pub struct EndpointsProbe;

impl Probe for EndpointsProbe {
    fn name(&self) -> &'static str {
        "endpoints"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let url = ctx.endpoint_url.clone();
        let certs = ctx.certs;
        let Some(client) = ctx.client.as_mut() else {
            return ProbeOutcome::Stop;
        };
        if client
            .open_channel(SecurityPolicy::None, MessageSecurityMode::None, None)
            .is_err()
        {
            return ProbeOutcome::Stop;
        }
        let endpoints = match client.get_endpoints(&url) {
            Ok(eps) => eps,
            Err(_) => return ProbeOutcome::Stop,
        };
        let payload = record.opcua_mut();
        if let Some(first) = endpoints.first() {
            payload.application_uri = first.server.application_uri.clone();
            payload.application_name = first.server.application_name.text.clone();
            payload.application_type = Some(first.server.application_type);
        }
        payload.endpoints = endpoints
            .iter()
            .map(|ep| EndpointSnapshot::from_description(ep, certs))
            .collect();
        ProbeOutcome::Continue
    }
}

/// Stage 3: FindServers over the already-open discovery channel —
/// collects discovery URLs pointing away from this host (LDS referrals)
/// and reconciles the application type. Best-effort: a server that
/// rejects FindServers still continues to the session stage, exactly as
/// the paper's scanner did after adding the call on 2020-05-04.
pub struct FindServersProbe;

impl Probe for FindServersProbe {
    fn name(&self) -> &'static str {
        "find_servers"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let url = ctx.endpoint_url.clone();
        let Some(client) = ctx.client.as_mut() else {
            return ProbeOutcome::Stop;
        };
        if let Ok(servers) = client.find_servers(&url) {
            if let Ok(own) = OpcUrl::parse(&url) {
                merge_find_servers(record, &own, &servers);
            }
        }
        ProbeOutcome::Continue
    }
}

/// The combined discovery stage: [`EndpointsProbe`] then (only if
/// endpoints succeeded) [`FindServersProbe`], as one [`Probe`]. Kept for
/// custom stacks that want discovery as a single stage; the default
/// stack runs the two halves separately so the event-loop engine gets a
/// timer-wheel state per protocol round-trip.
pub struct DiscoveryProbe;

impl Probe for DiscoveryProbe {
    fn name(&self) -> &'static str {
        "discovery"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        match EndpointsProbe.run(ctx, record) {
            ProbeOutcome::Continue => FindServersProbe.run(ctx, record),
            ProbeOutcome::Stop => ProbeOutcome::Stop,
        }
    }
}

/// Folds a FindServers answer into `record`.
///
/// Two rules the naive version got wrong:
///
/// * the application type is taken only from the host's *own*
///   description — matched by ApplicationUri (or by a discovery URL
///   normalizing to the probed endpoint), never from some other
///   application that happens to share the answer — and it *upgrades*
///   a `Server` verdict from GetEndpoints when the host describes
///   itself as a discovery server;
/// * self-referrals are filtered by normalized target equality
///   ([`OpcUrl::same_target`]), so trailing-slash/case/zero-padded-port
///   spellings of the host's own URL do not leak through as referrals.
///
/// Referred URLs are stored in canonical form (deduplicated); URLs that
/// do not parse are kept verbatim so the referral engine can account
/// them as unfollowable.
pub fn merge_find_servers(
    record: &mut ScanRecord,
    own_url: &OpcUrl,
    servers: &[ApplicationDescription],
) {
    let payload = record.opcua_mut();
    for app in servers {
        let is_self = (payload.application_uri.is_some()
            && app.application_uri == payload.application_uri)
            || app
                .discovery_urls
                .iter()
                .any(|u| OpcUrl::parse(u).is_ok_and(|p| p.same_target(own_url)));
        if is_self && app.application_type == ApplicationType::DiscoveryServer {
            payload.application_type = Some(ApplicationType::DiscoveryServer);
        }
        for referred in &app.discovery_urls {
            let stored = match OpcUrl::parse(referred) {
                Ok(parsed) => {
                    if parsed.same_target(own_url) {
                        continue; // the host's own URL, in any spelling
                    }
                    parsed.canonical()
                }
                // Unparseable URLs are recorded as announced; the
                // referral engine counts them as unfollowable.
                Err(_) => referred.clone(),
            };
            if !payload.referred_urls.contains(&stored) {
                payload.referred_urls.push(stored);
            }
        }
    }
}

/// Stage 3: anonymous session establishment and budgeted traversal —
/// only where the server *advertises* credential-less access (the
/// paper's ethical line, Appendix A.1).
pub struct SessionProbe;

impl Probe for SessionProbe {
    fn name(&self) -> &'static str {
        "session"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        if !ctx.config.attempt_session || !record.advertises_anonymous() {
            record.opcua_mut().session = SessionOutcome::NotAttempted;
            return ProbeOutcome::Continue;
        }
        let url = ctx.endpoint_url.clone();
        let budget = ctx.config.budget;
        let Some(client) = ctx.client.as_mut() else {
            return ProbeOutcome::Stop;
        };

        let attempt = client.create_session(&url).and_then(|()| {
            client.activate_session(IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            })
        });
        match attempt {
            Ok(()) => {
                record.opcua_mut().session = SessionOutcome::AnonymousActivated;
                // BuildInfo → SoftwareVersion (OPC UA NodeId i=2264):
                // one cheap read before the traversal. Longitudinal
                // campaigns diff this field week over week to detect
                // (non-)patching, the paper's §6 signal.
                if let Ok(values) = client.read(vec![(
                    NodeId::numeric(0, SERVER_SOFTWARE_VERSION_NODE),
                    AttributeId::Value,
                )]) {
                    if let Some(Variant::String(Some(v))) = values
                        .into_iter()
                        .next()
                        .filter(DataValue::is_good)
                        .and_then(|dv| dv.value)
                    {
                        record.opcua_mut().software_version = Some(v);
                    }
                }
                if let Ok(t) = traverse(client, &budget) {
                    record.opcua_mut().traversal = Some(TraversalSummary::from_traversal(&t));
                }
                let _ = client.close_session();
            }
            Err(err) => {
                record.opcua_mut().session = classify_session_error(&err);
            }
        }
        ProbeOutcome::Continue
    }
}

/// Maps a client error onto the failure stages of Table 2.
pub fn classify_session_error(err: &ClientError) -> SessionOutcome {
    if err.is_auth_rejection() {
        SessionOutcome::AuthRejected
    } else if err.is_channel_rejection() {
        SessionOutcome::ChannelRejected
    } else {
        SessionOutcome::ProtocolError
    }
}

/// The default probe stack: UACP → endpoints → FindServers → session.
///
/// Behaviorally identical to the historical three-stage stack (the
/// combined [`DiscoveryProbe`] stopped before FindServers whenever
/// endpoints failed, exactly as the split stages compose), but each
/// stage is now one state-machine step for the event-loop engine.
pub fn default_stack() -> Vec<Box<dyn Probe>> {
    vec![
        Box::new(UacpProbe),
        Box::new(EndpointsProbe),
        Box::new(FindServersProbe),
        Box::new(SessionProbe),
    ]
}

/// A discovery-only stack (no session establishment), e.g. for strictly
/// passive-characterization campaigns.
pub fn discovery_stack() -> Vec<Box<dyn Probe>> {
    vec![
        Box::new(UacpProbe),
        Box::new(EndpointsProbe),
        Box::new(FindServersProbe),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::StatusCode;

    fn base_record(uri: &str) -> ScanRecord {
        let mut r = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 0);
        let payload = r.opcua_mut();
        payload.hello_ok = true;
        payload.application_uri = Some(uri.into());
        payload.application_type = Some(ApplicationType::Server);
        r
    }

    fn app(uri: &str, ty: ApplicationType, urls: &[&str]) -> ApplicationDescription {
        let mut a = ApplicationDescription::server(uri, "app");
        a.application_type = ty;
        a.discovery_urls = urls.iter().map(|s| s.to_string()).collect();
        a
    }

    #[test]
    fn self_referral_variants_filtered_by_normalization() {
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = base_record("urn:dev:1");
        merge_find_servers(
            &mut record,
            &own,
            &[app(
                "urn:dev:1",
                ApplicationType::Server,
                &[
                    "opc.tcp://10.0.0.1:4840/",
                    "OPC.TCP://10.0.0.1:4840",
                    "opc.tcp://10.0.0.1:04840/",
                    "opc.tcp://10.0.0.1:4840///",
                    "opc.tcp://10.0.0.2:4840/",
                ],
            )],
        );
        // Only the genuinely-foreign URL survives, canonicalized.
        assert_eq!(
            record.opcua().referred_urls,
            vec!["opc.tcp://10.0.0.2:4840/"]
        );
    }

    #[test]
    fn same_host_other_port_is_a_referral() {
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = base_record("urn:dev:1");
        merge_find_servers(
            &mut record,
            &own,
            &[app(
                "urn:dev:1",
                ApplicationType::Server,
                &["opc.tcp://10.0.0.1:4841/"],
            )],
        );
        assert_eq!(
            record.opcua().referred_urls,
            vec!["opc.tcp://10.0.0.1:4841/"]
        );
    }

    #[test]
    fn self_description_upgrades_application_type() {
        // GetEndpoints said Server; the host's own FindServers entry
        // says DiscoveryServer — the record must upgrade.
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = base_record("urn:lds:1");
        merge_find_servers(
            &mut record,
            &own,
            &[app(
                "urn:lds:1",
                ApplicationType::DiscoveryServer,
                &["opc.tcp://10.0.0.1:4840/"],
            )],
        );
        assert_eq!(
            record.application_type(),
            Some(ApplicationType::DiscoveryServer)
        );
    }

    #[test]
    fn foreign_discovery_server_does_not_mislabel_host() {
        // A plain server whose answer mentions some *other* LDS must
        // not itself be classified as a discovery server.
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = base_record("urn:dev:1");
        merge_find_servers(
            &mut record,
            &own,
            &[
                app(
                    "urn:dev:1",
                    ApplicationType::Server,
                    &["opc.tcp://10.0.0.1:4840/"],
                ),
                app(
                    "urn:other:lds",
                    ApplicationType::DiscoveryServer,
                    &["opc.tcp://10.9.9.9:4840/"],
                ),
            ],
        );
        assert_eq!(record.application_type(), Some(ApplicationType::Server));
        assert_eq!(
            record.opcua().referred_urls,
            vec!["opc.tcp://10.9.9.9:4840/"]
        );
    }

    #[test]
    fn self_match_by_discovery_url_when_uri_unknown() {
        // GetEndpoints failed (no application_uri): the self entry is
        // still recognized via a discovery URL naming the probed target.
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 0);
        record.opcua_mut().hello_ok = true;
        merge_find_servers(
            &mut record,
            &own,
            &[app(
                "urn:lds:1",
                ApplicationType::DiscoveryServer,
                &["OPC.TCP://10.0.0.1:4840"],
            )],
        );
        assert_eq!(
            record.application_type(),
            Some(ApplicationType::DiscoveryServer)
        );
        assert!(record.referred_urls().is_empty());
    }

    #[test]
    fn unparseable_urls_kept_verbatim_and_deduplicated() {
        let own = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        let mut record = base_record("urn:dev:1");
        let apps = [
            app(
                "urn:dev:1",
                ApplicationType::Server,
                &["http://not-opcua.example/", "opc.tcp://10.0.0.3:4845"],
            ),
            app(
                "urn:dev:2",
                ApplicationType::Server,
                &["http://not-opcua.example/", "opc.tcp://10.0.0.3:04845/"],
            ),
        ];
        merge_find_servers(&mut record, &own, &apps);
        assert_eq!(
            record.opcua().referred_urls,
            vec!["http://not-opcua.example/", "opc.tcp://10.0.0.3:4845/"]
        );
    }

    #[test]
    fn session_error_classification() {
        assert_eq!(
            classify_session_error(&ClientError::Fault(StatusCode::BAD_IDENTITY_TOKEN_REJECTED)),
            SessionOutcome::AuthRejected
        );
        assert_eq!(
            classify_session_error(&ClientError::Remote {
                status: StatusCode::BAD_CERTIFICATE_UNTRUSTED,
                reason: None,
            }),
            SessionOutcome::ChannelRejected
        );
        assert_eq!(
            classify_session_error(&ClientError::NoReply),
            SessionOutcome::ProtocolError
        );
    }

    #[test]
    fn default_stack_order() {
        let stack = default_stack();
        let names: Vec<&str> = stack.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["uacp", "endpoints", "find_servers", "session"]);
    }

    #[test]
    fn builder_normalizes_and_keeps_defaults() {
        let cfg = ScanConfig::builder()
            .workers(0)
            .max_in_flight(0)
            .channel_capacity(0)
            .build()
            .unwrap();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.max_in_flight, 1);
        assert_eq!(cfg.channel_capacity, 1);
        assert_eq!(cfg.retry.max_attempts, 1);
        // Defaults survive untouched knobs; the empty registry means
        // classic OPC UA on the configured port.
        assert_eq!(cfg.port, 4840);
        let suites = cfg.effective_suites();
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].0, 4840);
        assert_eq!(suites[0].1.name(), "opcua");
    }

    #[test]
    fn builder_rejects_referral_depth_without_referral_suite() {
        use crate::suite::UatTlsSuite;
        let err = match ScanConfig::builder()
            .suite(4843, Arc::new(UatTlsSuite::new()))
            .referral_depth(2)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("expected rejection"),
        };
        assert_eq!(err, ConfigError::ReferralDepthWithoutReferralSuite);
        // Zero depth makes the same registry valid.
        let cfg = ScanConfig::builder()
            .suite(4843, Arc::new(UatTlsSuite::new()))
            .referral_depth(0)
            .build()
            .unwrap();
        assert_eq!(cfg.effective_suites()[0].1.name(), "uat-tls");
        // And adding a referral-capable suite does too.
        let cfg = ScanConfig::builder()
            .suite(4843, Arc::new(UatTlsSuite::new()))
            .suite(4840, Arc::new(OpcUaSuite::new()))
            .referral_depth(2)
            .build()
            .unwrap();
        let ports: Vec<u16> = cfg.effective_suites().iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![4840, 4843]);
    }

    #[test]
    fn effective_knobs_centralize_zero_normalization() {
        let cfg = ScanConfig {
            workers: 0,
            max_in_flight: 0,
            channel_capacity: 0,
            ..ScanConfig::default()
        };
        assert_eq!(cfg.effective_workers(), 1);
        assert_eq!(cfg.effective_max_in_flight(), 1);
        assert_eq!(cfg.effective_channel_capacity(), 1);
    }
}
