//! Per-target scan records — the data the measurement pipeline streams.
//!
//! One [`ScanRecord`] is produced per responsive host. The network-level
//! envelope (address, port, provenance, reachability, byte counters) is
//! protocol-agnostic; everything a protocol suite extracts lives in a
//! typed [`ProtocolPayload`] — the OPC UA snapshot (handshake outcome,
//! advertised endpoints, referred discovery URLs, traversal summary) is
//! one variant, the TLS-wrapped `uat-tls` transcript another. The
//! `assessment` crate consumes these records without ever touching the
//! network layer.

use netsim::Ipv4;
use std::sync::Arc;
use ua_client::Traversal;
use ua_crypto::{CertStore, ParsedCert};
use ua_types::{
    ApplicationType, EndpointDescription, MessageSecurityMode, NodeClass, SecurityPolicy,
    UserTokenType,
};

/// A scanner-side snapshot of one advertised endpoint: the subset of
/// [`EndpointDescription`] the assessment rules operate on, decoupled from
/// wire types so records can be stored/streamed cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSnapshot {
    /// Message security mode.
    pub security_mode: MessageSecurityMode,
    /// Parsed security policy (`None` for unknown/garbled URIs).
    pub security_policy: Option<SecurityPolicy>,
    /// The raw policy URI as transmitted.
    pub security_policy_uri: Option<String>,
    /// Offered identity token types (deduplicated, sorted).
    pub token_types: Vec<UserTokenType>,
    /// The server certificate delivered during discovery, interned
    /// campaign-wide: a certificate served by N hosts is parsed and
    /// thumbprinted once, and all N snapshots share one handle.
    /// Equality compares the underlying DER bytes, so records stay
    /// byte-identical across worker counts and store instances.
    pub certificate: Option<Arc<ParsedCert>>,
    /// Server-assigned relative security level.
    pub security_level: u8,
}

impl EndpointSnapshot {
    /// Captures the fields of one endpoint description, interning the
    /// delivered certificate through `certs`.
    pub fn from_description(ep: &EndpointDescription, certs: &CertStore) -> Self {
        EndpointSnapshot {
            security_mode: ep.security_mode,
            security_policy: ep.security_policy(),
            security_policy_uri: ep.security_policy_uri.clone(),
            token_types: ep.token_types(),
            certificate: ep
                .server_certificate
                .as_deref()
                .map(|der| certs.intern(der)),
            security_level: ep.security_level,
        }
    }

    /// Raw DER bytes of the delivered certificate, if any.
    pub fn certificate_der(&self) -> Option<&[u8]> {
        self.certificate.as_deref().map(ParsedCert::der)
    }

    /// True if anonymous authentication is offered on this endpoint.
    pub fn allows_anonymous(&self) -> bool {
        self.token_types.contains(&UserTokenType::Anonymous)
    }
}

/// How the scanner came to probe a host: the breadth-first sweep, or a
/// FindServers referral announced by an already-probed host (the
/// paper's 2020-05-04 scanner extension, which surfaced over a thousand
/// servers hidden behind discovery servers on non-default ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveredVia {
    /// Found by the zmap-style sweep on the campaign port.
    Sweep,
    /// Found by following an LDS referral.
    Referral {
        /// The host whose FindServers answer announced this target.
        from: Ipv4,
        /// Referral-chain depth: 1 for targets announced by swept
        /// hosts, 2 for targets announced by depth-1 hosts, and so on.
        depth: u32,
    },
}

impl DiscoveredVia {
    /// True for referral-discovered hosts.
    pub fn is_referral(&self) -> bool {
        matches!(self, DiscoveredVia::Referral { .. })
    }

    /// The referral-chain depth (0 for swept hosts).
    pub fn depth(&self) -> u32 {
        match self {
            DiscoveredVia::Sweep => 0,
            DiscoveredVia::Referral { depth, .. } => *depth,
        }
    }
}

/// Outcome of the session-establishment stage (the paper's Table 2
/// distinguishes exactly these failure stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionOutcome {
    /// No session was attempted (no anonymous token advertised, or the
    /// stage is disabled in the scan configuration).
    #[default]
    NotAttempted,
    /// The secure-channel stage rejected us (Table 2 "Secure Channel").
    ChannelRejected,
    /// Session creation/activation was rejected (Table 2
    /// "Authentication") — includes hosts with broken session configs.
    AuthRejected,
    /// The exchange failed in some other way (codec error, peer closed).
    ProtocolError,
    /// An anonymous session was activated — the host grants access
    /// without any credentials.
    AnonymousActivated,
}

/// Aggregate of a budgeted address-space traversal (the per-host data
/// behind the paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalSummary {
    /// Nodes discovered.
    pub nodes: usize,
    /// Variables discovered.
    pub variables: usize,
    /// Variables readable by the anonymous user.
    pub readable: usize,
    /// Variables writable by the anonymous user.
    pub writable: usize,
    /// Methods discovered.
    pub methods: usize,
    /// Methods executable by the anonymous user.
    pub executable: usize,
    /// True when a budget limit forced early disconnect.
    pub truncated: bool,
    /// Requests spent on the traversal.
    pub requests: u64,
}

impl TraversalSummary {
    /// Condenses a full traversal into the summary the record keeps.
    pub fn from_traversal(t: &Traversal) -> Self {
        let mut s = TraversalSummary {
            nodes: t.nodes.len(),
            truncated: t.truncated,
            requests: t.requests,
            ..TraversalSummary::default()
        };
        for node in &t.nodes {
            match node.node_class {
                NodeClass::Variable => {
                    s.variables += 1;
                    s.readable += node.readable as usize;
                    s.writable += node.writable as usize;
                }
                NodeClass::Method => {
                    s.methods += 1;
                    s.executable += node.executable as usize;
                }
                _ => {}
            }
        }
        s
    }
}

/// Network-level reachability verdict for one probed target: what the
/// connect/retry phase concluded before any protocol stage ran. The
/// paper's sweep contends with loss, scan-detecting firewalls, and
/// tarpits — without this taxonomy those hosts would silently vanish
/// into the non-speaker bucket and deficit rates would undercount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostOutcome {
    /// The connect phase delivered a usable stream (whether or not the
    /// peer then spoke the probed protocol).
    #[default]
    Ok,
    /// The peer refused the connection (RST): live host, closed port —
    /// nothing a retry can recover.
    Unreachable,
    /// Every connect attempt ended in a SYN timeout: packet loss or a
    /// silent drop beyond the retry budget.
    TimedOut,
    /// A rate-limiting middlebox was still eating SYNs when the retry
    /// budget ran out (temporary or sweep-permanent blocklisting).
    Throttled,
    /// The peer accepted and then stalled — a silent tarpit, or a
    /// byte-dribbler that burned the whole stage budget.
    Tarpitted,
}

impl HostOutcome {
    /// Short stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            HostOutcome::Ok => "ok",
            HostOutcome::Unreachable => "unreachable",
            HostOutcome::TimedOut => "timed_out",
            HostOutcome::Throttled => "throttled",
            HostOutcome::Tarpitted => "tarpitted",
        }
    }
}

/// Everything the OPC UA probe ladder extracts from one host — the
/// paper's per-host measurement, as one [`ProtocolPayload`] variant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpcUaPayload {
    /// UACP HEL/ACK succeeded — the host actually speaks OPC UA.
    pub hello_ok: bool,
    /// ApplicationUri from discovery (manufacturer clustering, §4).
    pub application_uri: Option<String>,
    /// Application display name.
    pub application_name: Option<String>,
    /// Application type (discovery servers are the paper's first host
    /// category).
    pub application_type: Option<ApplicationType>,
    /// Advertised endpoints.
    pub endpoints: Vec<EndpointSnapshot>,
    /// Discovery URLs of *other* servers announced via FindServers.
    pub referred_urls: Vec<String>,
    /// Outcome of the session stage.
    pub session: SessionOutcome,
    /// The server's reported `SoftwareVersion` (BuildInfo), read where
    /// an anonymous session succeeded — the paper's §6 upgrade signal:
    /// version deltas between weekly campaigns reveal (non-)patching.
    pub software_version: Option<String>,
    /// Traversal summary when an anonymous session succeeded.
    pub traversal: Option<TraversalSummary>,
    /// Implementation recovered from the vendor-fingerprint stage
    /// (error-taxonomy quirks on a malformed Hello), when that opt-in
    /// stage ran and the quirk matched a known implementation.
    pub vendor_fingerprint: Option<&'static str>,
}

/// What the `uat-tls` suite (the TLS-wrapped opc.tcp variant from
/// "Missed Opportunities", Dahlmanns et al. 2022) extracts: the TLS
/// prologue transcript plus the standard OPC UA measurement carried
/// over the wrapped stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UatTlsPayload {
    /// The TLS prologue completed — the host speaks uat-tls.
    pub tls_ok: bool,
    /// The certificate presented in the TLS prologue, interned
    /// campaign-wide like endpoint certificates.
    pub server_cert: Option<Arc<ParsedCert>>,
    /// The prologue certificate was outside its validity window at
    /// probe time (the "TLS-with-expired-cert" deficit).
    pub cert_expired: bool,
    /// The OPC UA measurement taken over the TLS-wrapped stream.
    pub inner: OpcUaPayload,
}

/// The typed per-protocol measurement carried on every [`ScanRecord`].
///
/// Each registered `ProtocolSuite` installs its own variant as the
/// record template before any stage runs; adding a suite means adding a
/// variant here (payload matches stay exhaustive — `ua-lint` flags
/// `_ =>` arms that would silently swallow a future suite).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolPayload {
    /// The plain opc.tcp measurement (the 2020 paper's study).
    OpcUa(OpcUaPayload),
    /// The TLS-wrapped opc.tcp measurement ("Missed Opportunities").
    UatTls(UatTlsPayload),
}

impl Default for ProtocolPayload {
    fn default() -> Self {
        ProtocolPayload::OpcUa(OpcUaPayload::default())
    }
}

impl ProtocolPayload {
    /// Stable suite label for reports and bench JSON.
    pub fn protocol(&self) -> &'static str {
        match self {
            ProtocolPayload::OpcUa(_) => "opcua",
            ProtocolPayload::UatTls(_) => "uat-tls",
        }
    }
}

/// Everything the scanner learned about one responsive host.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRecord {
    /// Target address.
    pub address: Ipv4,
    /// TCP port the host was probed on (referral targets frequently
    /// live on non-default ports).
    pub port: u16,
    /// How the scanner found this target.
    pub via: DiscoveredVia,
    /// Autonomous system announcing the address (0 if unannounced).
    pub asn: u32,
    /// Virtual unix time the probe started.
    pub discovered_unix: i64,
    /// The protocol suite's typed measurement.
    pub payload: ProtocolPayload,
    /// Total requests issued against this host.
    pub requests: u64,
    /// Bytes sent to this host.
    pub tx_bytes: u64,
    /// Bytes received from this host.
    pub rx_bytes: u64,
    /// What the connect/retry phase concluded about reachability.
    pub outcome: HostOutcome,
    /// Connect attempts spent (1 = the first SYN got through; 0 = no
    /// connect was ever issued, e.g. a dead referral target).
    pub connect_attempts: u32,
    /// Virtual microseconds spent waiting in retry backoff.
    pub backoff_micros: u64,
}

impl ScanRecord {
    /// A fresh OPC UA record for a sweep-discovered `address` on the
    /// default port, before any probe ran. Targeted probes (referrals)
    /// use [`Self::for_target`].
    pub fn new(address: Ipv4, asn: u32, discovered_unix: i64) -> Self {
        Self::for_target(
            address,
            crate::url::DEFAULT_OPCUA_PORT,
            DiscoveredVia::Sweep,
            asn,
            discovered_unix,
        )
    }

    /// A fresh record for an arbitrary `(address, port)` target with
    /// explicit discovery provenance. The payload defaults to the OPC
    /// UA variant; engines driving another suite install that suite's
    /// template ([`ProtocolPayload`]) before the first stage runs.
    pub fn for_target(
        address: Ipv4,
        port: u16,
        via: DiscoveredVia,
        asn: u32,
        discovered_unix: i64,
    ) -> Self {
        ScanRecord {
            address,
            port,
            via,
            asn,
            discovered_unix,
            payload: ProtocolPayload::default(),
            requests: 0,
            tx_bytes: 0,
            rx_bytes: 0,
            outcome: HostOutcome::default(),
            connect_attempts: 0,
            backoff_micros: 0,
        }
    }

    /// The OPC UA measurement, total over every suite: the `uat-tls`
    /// variant delegates to the measurement taken over its wrapped
    /// stream, so OPC UA probe stages and assessment rules operate on
    /// any record without matching the payload.
    pub fn opcua(&self) -> &OpcUaPayload {
        match &self.payload {
            ProtocolPayload::OpcUa(p) => p,
            ProtocolPayload::UatTls(t) => &t.inner,
        }
    }

    /// Mutable access to the OPC UA measurement (total, like
    /// [`Self::opcua`]) — what the shared probe stages write through.
    pub fn opcua_mut(&mut self) -> &mut OpcUaPayload {
        match &mut self.payload {
            ProtocolPayload::OpcUa(p) => p,
            ProtocolPayload::UatTls(t) => &mut t.inner,
        }
    }

    /// The `uat-tls` transcript, when this record was probed by that
    /// suite.
    pub fn uat_tls(&self) -> Option<&UatTlsPayload> {
        match &self.payload {
            ProtocolPayload::OpcUa(_) => None,
            ProtocolPayload::UatTls(t) => Some(t),
        }
    }

    /// Mutable `uat-tls` transcript access (None for other suites).
    pub fn uat_tls_mut(&mut self) -> Option<&mut UatTlsPayload> {
        match &mut self.payload {
            ProtocolPayload::OpcUa(_) => None,
            ProtocolPayload::UatTls(t) => Some(t),
        }
    }

    /// True when the host spoke the probed suite's protocol — the
    /// suite-generic version of the old `hello_ok` gate: OPC UA records
    /// require the UACP handshake, `uat-tls` records the TLS prologue.
    pub fn speaks(&self) -> bool {
        match &self.payload {
            ProtocolPayload::OpcUa(p) => p.hello_ok,
            ProtocolPayload::UatTls(t) => t.tls_ok,
        }
    }

    /// Stable label of the suite that probed this record.
    pub fn protocol(&self) -> &'static str {
        self.payload.protocol()
    }

    /// UACP HEL/ACK succeeded (over the TLS wrap for `uat-tls`).
    pub fn hello_ok(&self) -> bool {
        self.opcua().hello_ok
    }

    /// ApplicationUri from discovery.
    pub fn application_uri(&self) -> Option<&str> {
        self.opcua().application_uri.as_deref()
    }

    /// Application display name from discovery.
    pub fn application_name(&self) -> Option<&str> {
        self.opcua().application_name.as_deref()
    }

    /// Application type from discovery.
    pub fn application_type(&self) -> Option<ApplicationType> {
        self.opcua().application_type
    }

    /// Advertised endpoints.
    pub fn endpoints(&self) -> &[EndpointSnapshot] {
        &self.opcua().endpoints
    }

    /// Discovery URLs of *other* servers announced via FindServers.
    pub fn referred_urls(&self) -> &[String] {
        &self.opcua().referred_urls
    }

    /// Outcome of the session stage.
    pub fn session(&self) -> SessionOutcome {
        self.opcua().session
    }

    /// Reported `SoftwareVersion`, where an anonymous session read it.
    pub fn software_version(&self) -> Option<&str> {
        self.opcua().software_version.as_deref()
    }

    /// Traversal summary when an anonymous session succeeded.
    pub fn traversal(&self) -> Option<TraversalSummary> {
        self.opcua().traversal
    }

    /// Implementation recovered by the vendor-fingerprint stage.
    pub fn vendor_fingerprint(&self) -> Option<&'static str> {
        self.opcua().vendor_fingerprint
    }

    /// Folds a side-connection's traffic into the record's accounting.
    /// Stages that open extra connections beyond the main client (the
    /// vendor-fingerprint probe) call this; the engine separately folds
    /// the main client's stats when the stack finishes.
    pub fn account(&mut self, stream: &netsim::TcpStreamSim) {
        let stats = stream.stats();
        self.requests += 1;
        self.tx_bytes += stats.tx_bytes;
        self.rx_bytes += stats.rx_bytes;
    }

    /// The strongest (mode, policy) pairing advertised, by the paper's
    /// strength ranking (Figure 3 "most secure configuration").
    pub fn best_endpoint(&self) -> Option<&EndpointSnapshot> {
        self.endpoints().iter().max_by_key(|e| {
            (
                e.security_policy.map_or(0, |p| p.strength()),
                e.security_mode.strength(),
            )
        })
    }

    /// The weakest (mode, policy) pairing advertised (Figure 3 "least
    /// secure configuration").
    pub fn worst_endpoint(&self) -> Option<&EndpointSnapshot> {
        self.endpoints().iter().min_by_key(|e| {
            (
                e.security_policy.map_or(0, |p| p.strength()),
                e.security_mode.strength(),
            )
        })
    }

    /// True if any endpoint offers the given security mode.
    pub fn offers_mode(&self, mode: MessageSecurityMode) -> bool {
        self.endpoints().iter().any(|e| e.security_mode == mode)
    }

    /// True if any endpoint offers the given policy.
    pub fn offers_policy(&self, policy: SecurityPolicy) -> bool {
        self.endpoints()
            .iter()
            .any(|e| e.security_policy == Some(policy))
    }

    /// True if any endpoint advertises anonymous authentication.
    pub fn advertises_anonymous(&self) -> bool {
        self.endpoints()
            .iter()
            .any(EndpointSnapshot::allows_anonymous)
    }

    /// Distinct certificates delivered by this host, as interned
    /// handles (parsed fields and thumbprint precomputed). Includes the
    /// `uat-tls` prologue certificate, when one was presented.
    pub fn certificates(&self) -> Vec<&Arc<ParsedCert>> {
        let mut seen: Vec<&Arc<ParsedCert>> = Vec::new();
        let prologue = match &self.payload {
            ProtocolPayload::OpcUa(_) => None,
            ProtocolPayload::UatTls(t) => t.server_cert.as_ref(),
        };
        for cert in prologue.into_iter().chain(
            self.endpoints()
                .iter()
                .filter_map(|ep| ep.certificate.as_ref()),
        ) {
            // Pointer equality is the common case (one store per
            // campaign); DER equality covers mixed-store records.
            if !seen
                .iter()
                .any(|s| Arc::ptr_eq(s, cert) || s.der() == cert.der())
            {
                seen.push(cert);
            }
        }
        seen
    }

    /// True if this host is a discovery server (LDS).
    pub fn is_discovery_server(&self) -> bool {
        self.application_type() == Some(ApplicationType::DiscoveryServer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::{ApplicationDescription, UserTokenPolicy, TRANSPORT_PROFILE_BINARY};

    fn endpoint(mode: MessageSecurityMode, policy: SecurityPolicy) -> EndpointDescription {
        EndpointDescription {
            endpoint_url: Some("opc.tcp://10.0.0.1:4840/".into()),
            server: ApplicationDescription::server("urn:test", "t"),
            server_certificate: Some(vec![1, 2, 3]),
            security_mode: mode,
            security_policy_uri: Some(policy.uri().into()),
            user_identity_tokens: vec![
                UserTokenPolicy::new(UserTokenType::Anonymous),
                UserTokenPolicy::new(UserTokenType::UserName),
            ],
            transport_profile_uri: Some(TRANSPORT_PROFILE_BINARY.into()),
            security_level: 0,
        }
    }

    fn record_with(endpoints: Vec<EndpointSnapshot>) -> ScanRecord {
        let mut r = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 0);
        r.opcua_mut().endpoints = endpoints;
        r
    }

    #[test]
    fn snapshot_captures_description() {
        let ep = endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256);
        let certs = CertStore::new();
        let snap = EndpointSnapshot::from_description(&ep, &certs);
        assert_eq!(snap.security_mode, MessageSecurityMode::Sign);
        assert_eq!(snap.security_policy, Some(SecurityPolicy::Basic256));
        assert!(snap.allows_anonymous());
        assert_eq!(snap.certificate_der(), Some(&[1u8, 2, 3][..]));
        // Garbage DER interns to a handle without a parsed certificate,
        // not a panic.
        let handle = snap.certificate.as_ref().unwrap();
        assert!(handle.certificate().is_none());
        assert!(handle.parse_error().is_some());
        assert_eq!(certs.stats().distinct, 1);
    }

    #[test]
    fn snapshots_share_interned_certificates() {
        let certs = CertStore::new();
        let a = EndpointSnapshot::from_description(
            &endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256),
            &certs,
        );
        let b = EndpointSnapshot::from_description(
            &endpoint(MessageSecurityMode::None, SecurityPolicy::None),
            &certs,
        );
        assert!(Arc::ptr_eq(
            a.certificate.as_ref().unwrap(),
            b.certificate.as_ref().unwrap()
        ));
        let stats = certs.stats();
        assert_eq!(stats.sightings, 2);
        assert_eq!(stats.distinct, 1);
    }

    #[test]
    fn best_and_worst_endpoint_by_strength() {
        let certs = CertStore::new();
        let r = record_with(vec![
            EndpointSnapshot::from_description(
                &endpoint(MessageSecurityMode::None, SecurityPolicy::None),
                &certs,
            ),
            EndpointSnapshot::from_description(
                &endpoint(
                    MessageSecurityMode::SignAndEncrypt,
                    SecurityPolicy::Basic256Sha256,
                ),
                &certs,
            ),
            EndpointSnapshot::from_description(
                &endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic128Rsa15),
                &certs,
            ),
        ]);
        assert_eq!(
            r.best_endpoint().unwrap().security_policy,
            Some(SecurityPolicy::Basic256Sha256)
        );
        assert_eq!(
            r.worst_endpoint().unwrap().security_policy,
            Some(SecurityPolicy::None)
        );
        assert!(r.offers_mode(MessageSecurityMode::None));
        assert!(r.offers_policy(SecurityPolicy::Basic128Rsa15));
        assert!(!r.offers_policy(SecurityPolicy::Aes256Sha256RsaPss));
        assert!(r.advertises_anonymous());
    }

    #[test]
    fn certificates_deduplicated() {
        let certs = CertStore::new();
        let mut a = EndpointSnapshot::from_description(
            &endpoint(MessageSecurityMode::None, SecurityPolicy::None),
            &certs,
        );
        a.certificate = Some(certs.intern(&[9, 9]));
        let b = a.clone();
        let mut c = a.clone();
        // A second store instance: dedup must still work by DER bytes.
        c.certificate = Some(CertStore::new().intern(&[9, 9]));
        let mut d = a.clone();
        d.certificate = Some(certs.intern(&[7]));
        let r = record_with(vec![a, b, c, d]);
        assert_eq!(r.certificates().len(), 2);
    }

    #[test]
    fn provenance_defaults_and_targets() {
        let swept = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 0);
        assert_eq!(swept.via, DiscoveredVia::Sweep);
        assert_eq!(swept.port, 4840);
        assert!(!swept.via.is_referral());
        assert_eq!(swept.via.depth(), 0);

        let via = DiscoveredVia::Referral {
            from: Ipv4::new(10, 0, 0, 1),
            depth: 2,
        };
        let referred = ScanRecord::for_target(Ipv4::new(10, 0, 0, 9), 4842, via, 0, 0);
        assert_eq!(referred.port, 4842);
        assert!(referred.via.is_referral());
        assert_eq!(referred.via.depth(), 2);
    }

    #[test]
    fn payload_accessors_are_total_over_suites() {
        let mut opcua = ScanRecord::new(Ipv4::new(10, 0, 0, 1), 0, 0);
        assert_eq!(opcua.protocol(), "opcua");
        assert!(!opcua.speaks());
        opcua.opcua_mut().hello_ok = true;
        assert!(opcua.speaks());
        assert!(opcua.hello_ok());
        assert!(opcua.uat_tls().is_none());
        assert!(opcua.uat_tls_mut().is_none());

        // The uat-tls variant delegates the OPC UA accessors to the
        // wrapped measurement — `speaks` keys on the TLS prologue.
        let mut tls =
            ScanRecord::for_target(Ipv4::new(10, 0, 0, 2), 4843, DiscoveredVia::Sweep, 0, 0);
        tls.payload = ProtocolPayload::UatTls(UatTlsPayload::default());
        assert_eq!(tls.protocol(), "uat-tls");
        tls.opcua_mut().hello_ok = true;
        assert!(tls.hello_ok());
        assert!(!tls.speaks());
        tls.uat_tls_mut().unwrap().tls_ok = true;
        assert!(tls.speaks());
        assert!(tls.uat_tls().unwrap().inner.hello_ok);
        assert!(!tls.uat_tls().unwrap().cert_expired);
    }

    #[test]
    fn uat_tls_prologue_cert_joins_certificates() {
        let certs = CertStore::new();
        let mut r =
            ScanRecord::for_target(Ipv4::new(10, 0, 0, 3), 4843, DiscoveredVia::Sweep, 0, 0);
        r.payload = ProtocolPayload::UatTls(UatTlsPayload {
            tls_ok: true,
            server_cert: Some(certs.intern(&[5, 5])),
            cert_expired: false,
            inner: OpcUaPayload::default(),
        });
        // The prologue cert alone.
        assert_eq!(r.certificates().len(), 1);
        // An endpoint serving the same DER deduplicates against it.
        let mut ep = EndpointSnapshot::from_description(
            &endpoint(MessageSecurityMode::None, SecurityPolicy::None),
            &certs,
        );
        ep.certificate = Some(certs.intern(&[5, 5]));
        r.opcua_mut().endpoints = vec![ep];
        assert_eq!(r.certificates().len(), 1);
    }

    #[test]
    fn traversal_summary_counts_classes() {
        use ua_client::TraversedNode;
        use ua_types::{NodeId, Variant};
        let t = Traversal {
            nodes: vec![
                TraversedNode {
                    node_id: NodeId::string(1, "v1"),
                    browse_name: "v1".into(),
                    namespace_index: 1,
                    node_class: NodeClass::Variable,
                    readable: true,
                    writable: true,
                    executable: false,
                    value: Some(Variant::Double(1.0)),
                },
                TraversedNode {
                    node_id: NodeId::string(1, "v2"),
                    browse_name: "v2".into(),
                    namespace_index: 1,
                    node_class: NodeClass::Variable,
                    readable: true,
                    writable: false,
                    executable: false,
                    value: None,
                },
                TraversedNode {
                    node_id: NodeId::string(1, "m"),
                    browse_name: "m".into(),
                    namespace_index: 1,
                    node_class: NodeClass::Method,
                    readable: false,
                    writable: false,
                    executable: true,
                    value: None,
                },
            ],
            truncated: false,
            requests: 7,
        };
        let s = TraversalSummary::from_traversal(&t);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.variables, 2);
        assert_eq!(s.readable, 2);
        assert_eq!(s.writable, 1);
        assert_eq!(s.methods, 1);
        assert_eq!(s.executable, 1);
        assert_eq!(s.requests, 7);
    }
}
