//! Protocol suites: the pluggable protocol layer of the scanner.
//!
//! The measurement methodology (sweep → handshake → feature traversal →
//! assessment) is not OPC-UA-specific — "Missed Opportunities"
//! (Dahlmanns et al., 2022) re-runs the same study shape over
//! TLS-wrapped IIoT protocols. A [`ProtocolSuite`] packages everything
//! protocol-specific behind one trait: the default port, the probe-stage
//! ladder (the existing [`Probe`] trait is the per-stage unit within a
//! suite), the connect-error → [`HostOutcome`] taxonomy, the typed
//! [`ProtocolPayload`] template carried on [`ScanRecord`], and — for
//! suites that have it — referral following. [`SuiteRegistry`] maps
//! ports to suites; a campaign with a non-empty registry sweeps the
//! union of registered ports and drives each port's suite through the
//! same engines, retry policy, and longitudinal machinery.
//!
//! Two suites ship:
//!
//! * [`OpcUaSuite`] — plain opc.tcp, the 2020 paper's study;
//! * [`UatTlsSuite`] — TLS-wrapped opc.tcp after "Missed
//!   Opportunities", whose deficits (TLS-but-anonymous,
//!   TLS-with-expired-cert) the assessment reports in their own
//!   columns.
//!
//! Both can append a vendor-fingerprint stage
//! ([`VendorFingerprintProbe`]): Erba et al. (2021) showed
//! implementations are distinguishable by their error taxonomy on
//! malformed input, so the stage sends a bad-version `HEL` on a fresh
//! connection and maps the `ERR` status onto the shared quirk table in
//! [`ua_proto::fingerprint`].

use crate::probe::{
    default_stack, EndpointsProbe, Probe, ProbeContext, ProbeOutcome, SessionProbe,
};
use crate::record::{HostOutcome, ProtocolPayload, ScanRecord, UatTlsPayload};
use netsim::ConnectError;
use std::sync::Arc;
use ua_client::UaClient;
use ua_proto::fingerprint::{vendor_for_quirk, PROBE_PROTOCOL_VERSION};
use ua_proto::transport::{FrameReader, Hello, TransportMessage};
use ua_proto::uatls;

/// The registered port of the `uat-tls` suite (by analogy with 4843,
/// the IANA `opcua-tls` port).
pub const DEFAULT_UATLS_PORT: u16 = 4843;

/// Everything protocol-specific about probing one kind of service.
///
/// Engines hold suites as `Arc<dyn ProtocolSuite>` and drive them
/// generically: per target they install [`ProtocolSuite::payload`] as
/// the record template, run the stages from [`ProtocolSuite::stack`] in
/// order until one stops, and — when
/// [`ProtocolSuite::follows_referrals`] — feed
/// [`ProtocolSuite::referrals`] into the breadth-first referral queue.
pub trait ProtocolSuite: Send + Sync {
    /// Stable suite name (reports, bench JSON, conformance harness).
    fn name(&self) -> &'static str;

    /// The port this suite conventionally listens on — what
    /// [`SuiteRegistry::with`] registers it under.
    fn default_port(&self) -> u16;

    /// A fresh probe-stage ladder for one worker/shard. Stages may keep
    /// per-target state; engines never share one stack across threads.
    fn stack(&self) -> Vec<Box<dyn Probe>>;

    /// The payload template installed on every record this suite
    /// probes, before the first stage runs.
    fn payload(&self) -> ProtocolPayload;

    /// Maps a connect-phase error onto the reachability taxonomy. The
    /// default is the shared TCP-level interpretation
    /// ([`classify_connect_error`]); suites whose transport colors the
    /// verdict differently override it.
    fn classify_connect_error(&self, err: ConnectError) -> HostOutcome {
        classify_connect_error(err)
    }

    /// Whether this suite can announce further targets (OPC UA's
    /// FindServers referrals). Suites returning `false` never enter the
    /// referral phase.
    fn follows_referrals(&self) -> bool {
        false
    }

    /// The referral URLs a probed record announced (empty unless
    /// [`ProtocolSuite::follows_referrals`]).
    fn referrals<'r>(&self, _record: &'r ScanRecord) -> &'r [String] {
        &[]
    }
}

/// The shared TCP-level connect-error taxonomy (what every suite means
/// by refused/timeout/throttled/tarpitted unless it overrides).
pub fn classify_connect_error(err: ConnectError) -> HostOutcome {
    match err {
        ConnectError::Refused => HostOutcome::Unreachable,
        ConnectError::NoRoute => HostOutcome::TimedOut,
        ConnectError::Throttled => HostOutcome::Throttled,
        ConnectError::Stalled => HostOutcome::Tarpitted,
    }
}

/// Port → suite map driving a multi-protocol campaign. Kept sorted by
/// port so [`crate::probe::ScanConfig::effective_suites`] — and with it
/// every engine — walks protocols in one deterministic order, and a
/// mixed-registry sweep equals the concatenation of single-suite sweeps.
#[derive(Clone, Default)]
pub struct SuiteRegistry {
    entries: Vec<(u16, Arc<dyn ProtocolSuite>)>,
}

impl SuiteRegistry {
    /// An empty registry (the classic single-protocol configuration).
    pub fn new() -> Self {
        SuiteRegistry::default()
    }

    /// A registry of the given suites, each on its default port.
    pub fn with(suites: impl IntoIterator<Item = Arc<dyn ProtocolSuite>>) -> Self {
        let mut reg = SuiteRegistry::new();
        for suite in suites {
            let port = suite.default_port();
            reg.register(port, suite);
        }
        reg
    }

    /// Registers `suite` on `port`, replacing any suite already there.
    pub fn register(&mut self, port: u16, suite: Arc<dyn ProtocolSuite>) {
        match self.entries.binary_search_by_key(&port, |(p, _)| *p) {
            Ok(i) => self.entries[i].1 = suite,
            Err(i) => self.entries.insert(i, (port, suite)),
        }
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered ports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The suite registered on `port`, if any.
    pub fn suite_for(&self, port: u16) -> Option<&Arc<dyn ProtocolSuite>> {
        self.entries
            .binary_search_by_key(&port, |(p, _)| *p)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Registered `(port, suite)` pairs in ascending port order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Arc<dyn ProtocolSuite>)> {
        self.entries.iter().map(|(p, s)| (*p, s))
    }

    /// Registered ports in ascending order.
    pub fn ports(&self) -> Vec<u16> {
        self.entries.iter().map(|(p, _)| *p).collect()
    }
}

impl std::fmt::Debug for SuiteRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(p, s)| (p, s.name())))
            .finish()
    }
}

/// Plain opc.tcp — the 2020 paper's study, unchanged: UACP hello →
/// endpoints → FindServers → anonymous session, with FindServers
/// referrals feeding the referral engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpcUaSuite {
    fingerprint: bool,
}

impl OpcUaSuite {
    /// The classic suite — byte-identical to the pre-suite pipeline.
    pub fn new() -> Self {
        OpcUaSuite::default()
    }

    /// The classic suite plus the vendor-fingerprint stage appended.
    pub fn with_fingerprint() -> Self {
        OpcUaSuite { fingerprint: true }
    }
}

impl ProtocolSuite for OpcUaSuite {
    fn name(&self) -> &'static str {
        "opcua"
    }

    fn default_port(&self) -> u16 {
        crate::url::DEFAULT_OPCUA_PORT
    }

    fn stack(&self) -> Vec<Box<dyn Probe>> {
        let mut stack = default_stack();
        if self.fingerprint {
            stack.push(Box::new(VendorFingerprintProbe { tls: false }));
        }
        stack
    }

    fn payload(&self) -> ProtocolPayload {
        ProtocolPayload::default()
    }

    fn follows_referrals(&self) -> bool {
        true
    }

    fn referrals<'r>(&self, record: &'r ScanRecord) -> &'r [String] {
        record.referred_urls()
    }
}

/// TLS-wrapped opc.tcp ("Missed Opportunities", Dahlmanns et al. 2022):
/// a TLS prologue in which the server presents (or fails to present) a
/// certificate, then ordinary OPC UA over the wrapped stream. No
/// referral following — the study treats wrapped deployments as leaves.
#[derive(Debug, Clone, Copy, Default)]
pub struct UatTlsSuite {
    fingerprint: bool,
}

impl UatTlsSuite {
    /// The wrapped suite: TLS prologue → endpoints → session.
    pub fn new() -> Self {
        UatTlsSuite::default()
    }

    /// The wrapped suite plus the vendor-fingerprint stage appended.
    pub fn with_fingerprint() -> Self {
        UatTlsSuite { fingerprint: true }
    }
}

impl ProtocolSuite for UatTlsSuite {
    fn name(&self) -> &'static str {
        "uat-tls"
    }

    fn default_port(&self) -> u16 {
        DEFAULT_UATLS_PORT
    }

    fn stack(&self) -> Vec<Box<dyn Probe>> {
        let mut stack: Vec<Box<dyn Probe>> = vec![
            Box::new(TlsHandshakeProbe),
            Box::new(EndpointsProbe),
            Box::new(SessionProbe),
        ];
        if self.fingerprint {
            stack.push(Box::new(VendorFingerprintProbe { tls: true }));
        }
        stack
    }

    fn payload(&self) -> ProtocolPayload {
        ProtocolPayload::UatTls(UatTlsPayload::default())
    }
}

/// Stage 1 of [`UatTlsSuite`]: TCP connect (under the shared retry
/// policy), the uat-tls prologue — capturing the presented certificate
/// and its validity at probe time — then the UACP HEL/ACK handshake
/// over the same, now-wrapped, stream.
pub struct TlsHandshakeProbe;

impl Probe for TlsHandshakeProbe {
    fn name(&self) -> &'static str {
        "uat_tls_handshake"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        let Some(mut stream) = ctx.connect_with_retry(record) else {
            return ProbeOutcome::Stop;
        };
        // Same tarpit defense as the UACP stage: a delivered stream can
        // still dribble the stage budget away.
        let stage_start = ctx.internet.clock().now_micros();
        let tarpit_check = |ctx: &ProbeContext<'_>, record: &mut ScanRecord| {
            let elapsed = ctx
                .internet
                .clock()
                .now_micros()
                .saturating_sub(stage_start);
            if elapsed >= ctx.config.retry.stage_budget_micros {
                record.outcome = HostOutcome::Tarpitted;
            }
        };
        if stream.send(&uatls::CLIENT_HELLO).is_err() {
            return ProbeOutcome::Stop;
        }
        let reply = match stream.recv() {
            Ok(Some(reply)) => reply,
            Ok(None) | Err(_) => {
                tarpit_check(ctx, record);
                return ProbeOutcome::Stop;
            }
        };
        let Ok(server_hello) = uatls::decode_server_hello(&reply) else {
            tarpit_check(ctx, record);
            return ProbeOutcome::Stop;
        };
        let probed_at = record.discovered_unix;
        let Some(tls) = record.uat_tls_mut() else {
            // Engines install the suite's payload template before the
            // first stage; a mismatched template means a mis-registered
            // stack — stop rather than mis-file the transcript.
            return ProbeOutcome::Stop;
        };
        tls.tls_ok = true;
        if let Some(der) = &server_hello.cert_der {
            let parsed = ctx.certs.intern(der);
            tls.cert_expired = parsed
                .certificate()
                .is_some_and(|c| !c.is_valid_at(probed_at));
            tls.server_cert = Some(parsed);
        }
        // The prologue is done; the same stream now carries plain UACP.
        let mut client = UaClient::new(
            stream,
            ctx.internet.clock().clone(),
            ctx.config.client.clone(),
            ctx.seed,
        );
        match client.handshake(&ctx.endpoint_url) {
            Ok(()) => {
                record.opcua_mut().hello_ok = true;
                ctx.client = Some(client);
                ProbeOutcome::Continue
            }
            Err(_) => {
                tarpit_check(ctx, record);
                ProbeOutcome::Stop
            }
        }
    }
}

/// The opt-in vendor-fingerprint stage: on a *fresh* connection (the
/// main conversation stays polite and untouched) it sends a `HEL` with
/// [`PROBE_PROTOCOL_VERSION`] and reads the implementation's error
/// taxonomy off the `ERR` answer, mapping it through the shared quirk
/// table. Implementations that ignore the version field (the lenient
/// default, and every stack before the quirk table existed) answer
/// `ACK` and fingerprint as unknown. Always continues: fingerprinting
/// is a bonus signal, never a verdict.
pub struct VendorFingerprintProbe {
    /// Open the uat-tls prologue before speaking UACP (set for stacks
    /// probing wrapped servers).
    pub tls: bool,
}

impl Probe for VendorFingerprintProbe {
    fn name(&self) -> &'static str {
        "vendor_fingerprint"
    }

    fn run(&mut self, ctx: &mut ProbeContext<'_>, record: &mut ScanRecord) -> ProbeOutcome {
        // Only fingerprint hosts that completed the real handshake: the
        // stage classifies *implementations*, not reachability.
        if !record.hello_ok() {
            return ProbeOutcome::Continue;
        }
        let Ok(mut stream) = ctx
            .internet
            .connect(ctx.config.scanner_address, ctx.target, ctx.port)
        else {
            return ProbeOutcome::Continue;
        };
        if self.tls {
            let prologue_ok = stream.send(&uatls::CLIENT_HELLO).is_ok()
                && matches!(
                    stream.recv(),
                    Ok(Some(reply)) if uatls::decode_server_hello(&reply).is_ok()
                );
            if !prologue_ok {
                record.account(&stream);
                return ProbeOutcome::Continue;
            }
        }
        let hello = TransportMessage::Hello(Hello {
            protocol_version: PROBE_PROTOCOL_VERSION,
            endpoint_url: Some(ctx.endpoint_url.clone()),
            ..Hello::default()
        });
        if stream.send(&hello.encode()).is_ok() {
            if let Ok(Some(reply)) = stream.recv() {
                let mut frames = FrameReader::new();
                frames.push(&reply);
                if let Ok(Some(TransportMessage::Error(err))) = frames.next_message() {
                    record.opcua_mut().vendor_fingerprint = vendor_for_quirk(err.error);
                }
            }
        }
        record.account(&stream);
        ProbeOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sorts_and_replaces() {
        let mut reg = SuiteRegistry::new();
        assert!(reg.is_empty());
        reg.register(DEFAULT_UATLS_PORT, Arc::new(UatTlsSuite::new()));
        reg.register(4840, Arc::new(OpcUaSuite::new()));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ports(), vec![4840, DEFAULT_UATLS_PORT]);
        assert_eq!(reg.suite_for(4840).unwrap().name(), "opcua");
        assert_eq!(reg.suite_for(DEFAULT_UATLS_PORT).unwrap().name(), "uat-tls");
        assert!(reg.suite_for(4841).is_none());
        // Replacement keeps one entry per port.
        reg.register(4840, Arc::new(OpcUaSuite::with_fingerprint()));
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.suite_for(4840).unwrap().stack().last().unwrap().name(),
            "vendor_fingerprint"
        );
    }

    #[test]
    fn with_uses_default_ports() {
        let reg = SuiteRegistry::with([
            Arc::new(OpcUaSuite::new()) as Arc<dyn ProtocolSuite>,
            Arc::new(UatTlsSuite::new()) as Arc<dyn ProtocolSuite>,
        ]);
        assert_eq!(reg.ports(), vec![4840, DEFAULT_UATLS_PORT]);
    }

    #[test]
    fn connect_error_taxonomy() {
        assert_eq!(
            classify_connect_error(ConnectError::Refused),
            HostOutcome::Unreachable
        );
        assert_eq!(
            classify_connect_error(ConnectError::NoRoute),
            HostOutcome::TimedOut
        );
        assert_eq!(
            classify_connect_error(ConnectError::Throttled),
            HostOutcome::Throttled
        );
        assert_eq!(
            classify_connect_error(ConnectError::Stalled),
            HostOutcome::Tarpitted
        );
        // Both shipped suites use the shared taxonomy.
        let opcua = OpcUaSuite::new();
        let tls = UatTlsSuite::new();
        assert_eq!(
            opcua.classify_connect_error(ConnectError::Stalled),
            HostOutcome::Tarpitted
        );
        assert_eq!(
            tls.classify_connect_error(ConnectError::Refused),
            HostOutcome::Unreachable
        );
    }

    #[test]
    fn suite_shapes() {
        let opcua = OpcUaSuite::new();
        assert_eq!(opcua.name(), "opcua");
        assert_eq!(opcua.default_port(), 4840);
        assert!(opcua.follows_referrals());
        assert_eq!(
            opcua.stack().iter().map(|p| p.name()).collect::<Vec<_>>(),
            vec!["uacp", "endpoints", "find_servers", "session"]
        );
        assert_eq!(opcua.payload().protocol(), "opcua");

        let tls = UatTlsSuite::with_fingerprint();
        assert_eq!(tls.name(), "uat-tls");
        assert_eq!(tls.default_port(), DEFAULT_UATLS_PORT);
        assert!(!tls.follows_referrals());
        assert_eq!(
            tls.stack().iter().map(|p| p.name()).collect::<Vec<_>>(),
            vec![
                "uat_tls_handshake",
                "endpoints",
                "session",
                "vendor_fingerprint"
            ]
        );
        assert_eq!(tls.payload().protocol(), "uat-tls");
    }

    #[test]
    fn referrals_default_empty() {
        let mut record = ScanRecord::new(netsim::Ipv4::new(10, 0, 0, 1), 0, 0);
        record.opcua_mut().referred_urls = vec!["opc.tcp://10.0.0.2:4840/".into()];
        let opcua = OpcUaSuite::new();
        assert_eq!(opcua.referrals(&record).len(), 1);
        let tls = UatTlsSuite::new();
        assert!(tls.referrals(&record).is_empty());
    }
}
