//! `opc.tcp://host:port/path` URL parsing and normalization.
//!
//! Discovery servers announce referral URLs in every format vendors can
//! invent: uppercase schemes, missing trailing slashes, zero-padded
//! ports, hostnames the scanner cannot resolve. Following referrals
//! correctly (the paper's 2020-05-04 scanner change) requires a single
//! canonical form so that `OPC.TCP://10.0.0.1:04840` and
//! `opc.tcp://10.0.0.1:4840/` deduplicate to the *same* probe target —
//! otherwise self-referrals leak through as "new" servers and loops
//! never terminate.
//!
//! [`OpcUrl::parse`] accepts anything scheme-compatible and normalizes
//! it; the [`UrlError`] taxonomy distinguishes the failure modes the
//! referral engine accounts separately (wrong scheme, missing host, bad
//! port, malformed address).

use netsim::Ipv4;

/// The registered OPC UA TCP port, assumed when a URL omits `:port`.
pub const DEFAULT_OPCUA_PORT: u16 = 4840;

/// Why a discovery URL could not be parsed into a probe target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    /// The string was empty (or whitespace only).
    Empty,
    /// The scheme is not `opc.tcp` (e.g. `http`, `opc.https`, `opc.wss`).
    UnsupportedScheme(String),
    /// No `://` separator at all — not a URL.
    MissingScheme,
    /// The authority part has no host.
    MissingHost,
    /// The text after the last `:` is not a valid non-zero TCP port.
    InvalidPort(String),
    /// The host looks like a dotted-quad IPv4 literal but is malformed
    /// (octet out of range, wrong count).
    InvalidIpv4(String),
}

impl std::fmt::Display for UrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UrlError::Empty => write!(f, "empty URL"),
            UrlError::UnsupportedScheme(s) => write!(f, "unsupported scheme {s:?}"),
            UrlError::MissingScheme => write!(f, "missing scheme separator"),
            UrlError::MissingHost => write!(f, "missing host"),
            UrlError::InvalidPort(p) => write!(f, "invalid port {p:?}"),
            UrlError::InvalidIpv4(h) => write!(f, "malformed IPv4 literal {h:?}"),
        }
    }
}

impl std::error::Error for UrlError {}

/// The host part of an OPC UA URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UrlHost {
    /// A dotted-quad IPv4 literal — a followable probe target.
    Ip(Ipv4),
    /// A DNS name (lowercased). The simulated Internet has no resolver,
    /// so named referrals are recorded but cannot be followed — exactly
    /// like a real scanner without the deployment's internal DNS view.
    Name(String),
}

impl std::fmt::Display for UrlHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UrlHost::Ip(ip) => write!(f, "{ip}"),
            UrlHost::Name(n) => write!(f, "{n}"),
        }
    }
}

/// A parsed, normalized `opc.tcp` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpcUrl {
    /// Host (IPv4 literal or unresolvable name, lowercased).
    pub host: UrlHost,
    /// TCP port ([`DEFAULT_OPCUA_PORT`] when the URL omitted it).
    pub port: u16,
    /// Path with the leading `/` but no trailing slash; empty for the
    /// root. `/` and the empty path normalize identically.
    pub path: String,
}

impl OpcUrl {
    /// Parses and normalizes `input`. Scheme and host are
    /// case-insensitive; the port accepts leading zeros; trailing
    /// slashes are insignificant.
    pub fn parse(input: &str) -> Result<OpcUrl, UrlError> {
        let s = input.trim();
        if s.is_empty() {
            return Err(UrlError::Empty);
        }
        let (scheme, rest) = s.split_once("://").ok_or(UrlError::MissingScheme)?;
        if !scheme.eq_ignore_ascii_case("opc.tcp") {
            return Err(UrlError::UnsupportedScheme(scheme.to_ascii_lowercase()));
        }
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        let (host_raw, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (h, parse_port(p)?),
            None => (authority, DEFAULT_OPCUA_PORT),
        };
        if host_raw.is_empty() {
            return Err(UrlError::MissingHost);
        }
        let host = parse_host(host_raw)?;
        Ok(OpcUrl {
            host,
            port,
            path: normalize_path(path),
        })
    }

    /// The probe target, when the host is an IPv4 literal.
    pub fn target(&self) -> Option<(Ipv4, u16)> {
        match self.host {
            UrlHost::Ip(ip) => Some((ip, self.port)),
            UrlHost::Name(_) => None,
        }
    }

    /// True when `self` and `other` address the same TCP endpoint (host
    /// and port; the path is a server-side detail). This is the
    /// self-referral test: every trailing-slash/case/zero-padded variant
    /// of a host's own URL compares equal to it.
    pub fn same_target(&self, other: &OpcUrl) -> bool {
        self.host == other.host && self.port == other.port
    }

    /// The canonical string form: lowercase scheme/host, explicit port,
    /// `/`-terminated root. Parsing the canonical form round-trips.
    pub fn canonical(&self) -> String {
        if self.path.is_empty() {
            format!("opc.tcp://{}:{}/", self.host, self.port)
        } else {
            format!("opc.tcp://{}:{}{}", self.host, self.port, self.path)
        }
    }
}

impl std::fmt::Display for OpcUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl std::str::FromStr for OpcUrl {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<OpcUrl, UrlError> {
        OpcUrl::parse(s)
    }
}

fn parse_port(p: &str) -> Result<u16, UrlError> {
    if p.is_empty() || !p.bytes().all(|b| b.is_ascii_digit()) {
        return Err(UrlError::InvalidPort(p.to_string()));
    }
    // Strip leading zeros so ":04840" parses like ":4840" without
    // tripping integer-width limits on long zero runs.
    let trimmed = p.trim_start_matches('0');
    if trimmed.is_empty() {
        return Err(UrlError::InvalidPort(p.to_string()));
    }
    trimmed
        .parse::<u16>()
        .map_err(|_| UrlError::InvalidPort(p.to_string()))
}

fn parse_host(raw: &str) -> Result<UrlHost, UrlError> {
    let lower = raw.to_ascii_lowercase();
    // Dotted-quad shaped → must be a valid IPv4 literal; anything else
    // digits-and-dots is malformed, not a hostname.
    if lower.bytes().all(|b| b.is_ascii_digit() || b == b'.') {
        let octets: Vec<&str> = lower.split('.').collect();
        if octets.len() != 4 {
            return Err(UrlError::InvalidIpv4(lower));
        }
        let mut parsed = [0u8; 4];
        for (slot, oct) in parsed.iter_mut().zip(&octets) {
            if oct.is_empty() || oct.len() > 3 {
                return Err(UrlError::InvalidIpv4(lower.clone()));
            }
            *slot = oct
                .parse::<u8>()
                .map_err(|_| UrlError::InvalidIpv4(lower.clone()))?;
        }
        return Ok(UrlHost::Ip(Ipv4::new(
            parsed[0], parsed[1], parsed[2], parsed[3],
        )));
    }
    Ok(UrlHost::Name(lower))
}

fn normalize_path(path: &str) -> String {
    let trimmed = path.trim_end_matches('/');
    trimmed.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_url() {
        let u = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        assert_eq!(u.host, UrlHost::Ip(Ipv4::new(10, 0, 0, 1)));
        assert_eq!(u.port, 4840);
        assert_eq!(u.path, "");
        assert_eq!(u.target(), Some((Ipv4::new(10, 0, 0, 1), 4840)));
        assert_eq!(u.canonical(), "opc.tcp://10.0.0.1:4840/");
    }

    #[test]
    fn normalizes_case_slash_and_zero_padding() {
        let canonical = OpcUrl::parse("opc.tcp://10.0.0.1:4840/").unwrap();
        for variant in [
            "OPC.TCP://10.0.0.1:4840",
            "opc.tcp://10.0.0.1:4840",
            "opc.tcp://10.0.0.1:04840/",
            "Opc.Tcp://10.0.0.1:4840///",
            "  opc.tcp://10.0.0.1:4840/  ",
        ] {
            let u = OpcUrl::parse(variant).unwrap();
            assert!(u.same_target(&canonical), "{variant}");
            assert_eq!(u.canonical(), canonical.canonical(), "{variant}");
        }
    }

    #[test]
    fn default_port_when_omitted() {
        let u = OpcUrl::parse("opc.tcp://192.168.0.9").unwrap();
        assert_eq!(u.port, DEFAULT_OPCUA_PORT);
    }

    #[test]
    fn path_preserved_but_trailing_slash_insignificant() {
        let a = OpcUrl::parse("opc.tcp://10.0.0.1:4840/UADiscovery/").unwrap();
        let b = OpcUrl::parse("opc.tcp://10.0.0.1:4840/UADiscovery").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.path, "/UADiscovery");
        assert_eq!(a.canonical(), "opc.tcp://10.0.0.1:4840/UADiscovery");
        // Same target even when paths differ.
        let c = OpcUrl::parse("opc.tcp://10.0.0.1:4840/other").unwrap();
        assert!(a.same_target(&c));
        assert_ne!(a, c);
    }

    #[test]
    fn hostnames_are_kept_but_not_followable() {
        let u = OpcUrl::parse("opc.tcp://PLC-7.factory.local:4845/ua").unwrap();
        assert_eq!(u.host, UrlHost::Name("plc-7.factory.local".into()));
        assert_eq!(u.port, 4845);
        assert_eq!(u.target(), None);
    }

    #[test]
    fn error_taxonomy() {
        assert_eq!(OpcUrl::parse(""), Err(UrlError::Empty));
        assert_eq!(OpcUrl::parse("   "), Err(UrlError::Empty));
        assert_eq!(OpcUrl::parse("10.0.0.1:4840"), Err(UrlError::MissingScheme));
        assert_eq!(
            OpcUrl::parse("http://10.0.0.1:4840/"),
            Err(UrlError::UnsupportedScheme("http".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.https://10.0.0.1/"),
            Err(UrlError::UnsupportedScheme("opc.https".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://:4840/"),
            Err(UrlError::MissingHost)
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://10.0.0.1:/"),
            Err(UrlError::InvalidPort("".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://10.0.0.1:0/"),
            Err(UrlError::InvalidPort("0".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://10.0.0.1:banana/"),
            Err(UrlError::InvalidPort("banana".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://10.0.0.1:99999/"),
            Err(UrlError::InvalidPort("99999".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://300.1.1.1:4840/"),
            Err(UrlError::InvalidIpv4("300.1.1.1".into()))
        );
        assert_eq!(
            OpcUrl::parse("opc.tcp://10.0.1:4840/"),
            Err(UrlError::InvalidIpv4("10.0.1".into()))
        );
    }

    #[test]
    fn canonical_round_trips() {
        for s in [
            "opc.tcp://10.9.8.7:4841/",
            "opc.tcp://10.9.8.7:4840/Devices/PLC",
            "opc.tcp://lds.example:4840/",
        ] {
            let u = OpcUrl::parse(s).unwrap();
            assert_eq!(OpcUrl::parse(&u.canonical()).unwrap(), u);
        }
    }

    #[test]
    fn from_str_works() {
        let u: OpcUrl = "opc.tcp://10.1.1.1:4842/".parse().unwrap();
        assert_eq!(u.port, 4842);
    }
}
