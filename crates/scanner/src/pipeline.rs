//! The end-to-end measurement pipeline: zmap-style sweep → probe stack →
//! streamed [`ScanRecord`]s.
//!
//! Records flow through a *bounded* channel ([`Scanner::scan_stream`]):
//! the producer blocks when the consumer lags, so memory stays O(channel
//! capacity) no matter how many of the 2³² addresses answer. For
//! synchronous use (tests, small universes) [`Scanner::scan_with`] drives
//! a callback on the caller's thread and [`Scanner::scan_collect`] gathers
//! everything into a `Vec`.

use crate::probe::{default_stack, Probe, ProbeContext, ProbeOutcome, ScanConfig};
use crate::record::ScanRecord;
use netsim::{Blocklist, Cidr, Internet, SweepConfig, SweepStats, SynScanner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Aggregate accounting of one scan campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanSummary {
    /// Sweep-stage accounting (probes, blocklist hits, responsive).
    pub sweep: SweepStats,
    /// Hosts that completed the UACP handshake (actual OPC UA speakers).
    pub opcua_hosts: u64,
    /// Responsive hosts that did not speak OPC UA.
    pub non_opcua_hosts: u64,
    /// Virtual unix time the campaign started.
    pub started_unix: i64,
    /// Virtual unix time the campaign finished.
    pub finished_unix: i64,
}

/// The campaign driver.
#[derive(Clone)]
pub struct Scanner {
    internet: Internet,
    blocklist: Blocklist,
    config: ScanConfig,
}

impl Scanner {
    /// Creates a scanner over `internet` honoring `blocklist`.
    pub fn new(internet: Internet, blocklist: Blocklist, config: ScanConfig) -> Self {
        Scanner {
            internet,
            blocklist,
            config,
        }
    }

    /// The scan configuration.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Probes a single address with the given probe stack, returning the
    /// record. Exposed for targeted re-scans (e.g. following LDS
    /// referrals) and tests.
    pub fn probe_host(
        &self,
        stack: &mut [Box<dyn Probe>],
        addr: netsim::Ipv4,
        seed: u64,
    ) -> ScanRecord {
        let mut record = ScanRecord::new(
            addr,
            self.internet.as_number(addr),
            self.internet.clock().now_unix_seconds(),
        );
        let mut ctx = ProbeContext::new(&self.internet, &self.config, addr, seed);
        for probe in stack.iter_mut() {
            if probe.run(&mut ctx, &mut record) == ProbeOutcome::Stop {
                break;
            }
        }
        if let Some(client) = &ctx.client {
            record.requests = client.requests_sent();
            let stats = client.stats();
            record.tx_bytes = stats.tx_bytes;
            record.rx_bytes = stats.rx_bytes;
        }
        record
    }

    /// Runs the full campaign synchronously, handing each record to
    /// `sink` as soon as its host is fully probed.
    pub fn scan_with<F>(&self, universe: &[Cidr], seed: u64, mut sink: F) -> ScanSummary
    where
        F: FnMut(ScanRecord),
    {
        let mut summary = ScanSummary {
            started_unix: self.internet.clock().now_unix_seconds(),
            ..ScanSummary::default()
        };
        let sweep_config = SweepConfig {
            probes_per_second: self.config.probes_per_second,
            port: self.config.port,
        };
        let syn = SynScanner::new(&self.internet, &self.blocklist, sweep_config);
        let mut sweep_rng = StdRng::seed_from_u64(seed);
        let mut stack = default_stack();
        // The sweep streams responsive addresses straight into the
        // application-layer probes — no intermediate address list.
        summary.sweep = syn.sweep_each(universe, &mut sweep_rng, |addr| {
            let record = self.probe_host(&mut stack, addr, seed ^ u64::from(addr.0));
            if record.hello_ok {
                summary.opcua_hosts += 1;
            } else {
                summary.non_opcua_hosts += 1;
            }
            sink(record);
        });
        summary.finished_unix = self.internet.clock().now_unix_seconds();
        summary
    }

    /// Convenience: runs [`Self::scan_with`] and collects all records.
    pub fn scan_collect(&self, universe: &[Cidr], seed: u64) -> (ScanSummary, Vec<ScanRecord>) {
        let mut records = Vec::new();
        let summary = self.scan_with(universe, seed, |r| records.push(r));
        (summary, records)
    }

    /// Runs the campaign on a worker thread, streaming records through a
    /// bounded channel. Iterate the returned [`ScanStream`] to consume
    /// records as they are produced; call [`ScanStream::finish`] for the
    /// summary. Record order is identical to [`Self::scan_with`] — the
    /// single producer keeps the campaign deterministic.
    pub fn scan_stream(self, universe: Vec<Cidr>, seed: u64) -> ScanStream {
        let (tx, rx) = mpsc::sync_channel(self.config.channel_capacity.max(1));
        let handle = std::thread::spawn(move || {
            self.scan_with(&universe, seed, |record| {
                // A dropped receiver means the consumer stopped caring;
                // keep scanning for the summary but stop pushing.
                let _ = tx.send(record);
            })
        });
        ScanStream {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

/// Iterator over streamed scan records (see [`Scanner::scan_stream`]).
pub struct ScanStream {
    rx: Option<mpsc::Receiver<ScanRecord>>,
    handle: Option<JoinHandle<ScanSummary>>,
}

impl Iterator for ScanStream {
    type Item = ScanRecord;

    fn next(&mut self) -> Option<ScanRecord> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl ScanStream {
    /// Waits for the campaign to end and returns its summary. Pending
    /// records are drained and dropped; iterate first to keep them.
    pub fn finish(mut self) -> ScanSummary {
        // Dropping the receiver unblocks a producer waiting on a full
        // channel.
        self.rx = None;
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("scan worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SessionOutcome;
    use netsim::{Ipv4, VirtualClock};
    use std::sync::Arc;
    use ua_addrspace::{NodeAccess, SpaceBuilder};
    use ua_server::{ServerConfig, ServerCore, UaServerService};
    use ua_types::Variant;

    fn wide_open_internet(addrs: &[Ipv4]) -> Internet {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        for (i, &addr) in addrs.iter().enumerate() {
            let url = format!("opc.tcp://{addr}:4840/");
            let mut b = SpaceBuilder::new(&["urn:test:dev"], "1.0");
            let f = b.folder(None, "Plant");
            b.variable(&f, "inflow", Variant::Double(1.5), NodeAccess::read_only());
            b.variable(
                &f,
                "setpoint",
                Variant::Float(50.0),
                NodeAccess::read_write_all(),
            );
            b.method(&f, "Flush", true);
            let core = ServerCore::new(
                ServerConfig::wide_open(format!("urn:test:dev{i}"), url),
                b.finish(),
                7 + i as u64,
            );
            net.add_host(addr, 10_000);
            net.bind(addr, 4840, Arc::new(UaServerService::new(core, 5)));
        }
        net
    }

    #[test]
    fn scan_probes_wide_open_host_end_to_end() {
        let addr = Ipv4::new(10, 0, 0, 7);
        let net = wide_open_internet(&[addr]);
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.0.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 1);

        assert_eq!(summary.sweep.probes_sent, 256);
        assert_eq!(summary.opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.address, addr);
        assert!(r.hello_ok);
        assert_eq!(r.application_uri.as_deref(), Some("urn:test:dev0"));
        assert_eq!(r.endpoints.len(), 1);
        assert!(r.advertises_anonymous());
        assert_eq!(r.session, SessionOutcome::AnonymousActivated);
        let t = r.traversal.expect("traversal ran");
        assert!(t.nodes > 3);
        assert_eq!(t.writable, 1);
        assert_eq!(t.executable, 1);
        assert!(r.requests > 3);
        assert!(r.tx_bytes > 0);
    }

    #[test]
    fn streamed_scan_matches_sync_scan() {
        let addrs = [
            Ipv4::new(10, 1, 0, 3),
            Ipv4::new(10, 1, 0, 99),
            Ipv4::new(10, 1, 0, 200),
        ];
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.1.0.0/24".parse().unwrap();

        // Two independent clocks would drift; rebuild for a fair
        // comparison of record *content*.
        let sync_scanner = Scanner::new(net.clone(), Blocklist::new(), ScanConfig::default());
        let (_, sync_records) = sync_scanner.scan_collect(&[universe], 9);

        let net2 = wide_open_internet(&addrs);
        let stream_scanner = Scanner::new(net2, Blocklist::new(), ScanConfig::default());
        let mut stream = stream_scanner.scan_stream(vec![universe], 9);
        let streamed: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();

        assert_eq!(summary.opcua_hosts, 3);
        assert_eq!(streamed.len(), sync_records.len());
        for (a, b) in streamed.iter().zip(&sync_records) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.endpoints, b.endpoints);
            assert_eq!(a.session, b.session);
        }
    }

    #[test]
    fn bounded_channel_backpressure_keeps_all_records() {
        let addrs: Vec<Ipv4> = (0..20).map(|i| Ipv4::new(10, 2, 0, 10 + i)).collect();
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.2.0.0/24".parse().unwrap();
        let config = ScanConfig {
            channel_capacity: 2, // far smaller than the host count
            ..ScanConfig::default()
        };
        let scanner = Scanner::new(net, Blocklist::new(), config);
        let mut stream = scanner.scan_stream(vec![universe], 4);
        let records: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();
        assert_eq!(records.len(), 20);
        assert_eq!(summary.opcua_hosts, 20);
    }

    #[test]
    fn non_opcua_listener_counted_but_not_recorded_as_opcua() {
        struct Junk;
        struct JunkConn;
        impl netsim::Connection for JunkConn {
            fn on_data(&mut self, _d: &[u8]) -> netsim::ConnectionOutput {
                netsim::ConnectionOutput::close_with(b"HTTP/1.1 400\r\n\r\n".to_vec())
            }
        }
        impl netsim::Service for Junk {
            fn open_connection(&self, _peer: Ipv4) -> Box<dyn netsim::Connection> {
                Box::new(JunkConn)
            }
        }
        let net = Internet::new(VirtualClock::starting_at(0));
        let addr = Ipv4::new(10, 3, 0, 1);
        net.add_host(addr, 1000);
        net.bind(addr, 4840, Arc::new(Junk));
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.3.0.0/28".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 2);
        assert_eq!(summary.sweep.responsive, 1);
        assert_eq!(summary.opcua_hosts, 0);
        assert_eq!(summary.non_opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        assert!(!records[0].hello_ok);
    }

    #[test]
    fn blocklisted_hosts_never_probed() {
        let addr = Ipv4::new(10, 4, 0, 50);
        let net = wide_open_internet(&[addr]);
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.4.0.0/24").unwrap();
        let scanner = Scanner::new(net, blocklist, ScanConfig::default());
        let universe: Cidr = "10.4.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 3);
        assert_eq!(summary.sweep.blocklisted, 256);
        assert_eq!(summary.sweep.probes_sent, 0);
        assert!(records.is_empty());
    }
}
