//! The end-to-end measurement pipeline: zmap-style sweep → probe stack →
//! streamed [`ScanRecord`]s.
//!
//! Records flow through a *bounded* channel ([`Scanner::scan_stream`]):
//! the producer blocks when the consumer lags, so memory stays O(channel
//! capacity) no matter how many of the 2³² addresses answer. For
//! synchronous use (tests, small universes) [`Scanner::scan_with`] drives
//! a callback on the caller's thread and [`Scanner::scan_collect`] gathers
//! everything into a `Vec`.
//!
//! ## Sharded scanning
//!
//! [`ScanConfig::workers`] shards the campaign across N threads: every
//! worker walks the *same* zmap permutation (the walk is a function of
//! the seed alone) but probes only the steps `pos % workers == shard`,
//! running its own probe stack. Records carry their global permutation
//! step, and the coordinator merges the N sorted shard streams back into
//! exact discovery order, so the output is **byte-identical for a fixed
//! seed regardless of worker count**.
//!
//! Two invariants make that determinism hold:
//!
//! 1. every host is probed on an independent clock *fork* anchored at
//!    the campaign epoch ([`netsim::VirtualClock::fork`] via
//!    [`Internet::with_clock`]), so record contents are a pure function
//!    of (host, seed, epoch) — never of probe order;
//! 2. campaign time is accounted once from summed, order-independent
//!    quantities: sweep pacing from total probes sent, plus the sum of
//!    per-host probe latencies.

use crate::probe::{default_stack, Probe, ProbeContext, ProbeOutcome, ScanConfig};
use crate::record::ScanRecord;
use netsim::{Blocklist, Cidr, Internet, SweepConfig, SweepStats, SynScanner, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Aggregate accounting of one scan campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Sweep-stage accounting (probes, blocklist hits, responsive).
    pub sweep: SweepStats,
    /// Hosts that completed the UACP handshake (actual OPC UA speakers).
    pub opcua_hosts: u64,
    /// Responsive hosts that did not speak OPC UA.
    pub non_opcua_hosts: u64,
    /// Virtual unix time the campaign started.
    pub started_unix: i64,
    /// Virtual unix time the campaign finished.
    pub finished_unix: i64,
}

/// The campaign driver.
#[derive(Clone)]
pub struct Scanner {
    internet: Internet,
    blocklist: Blocklist,
    config: ScanConfig,
}

impl Scanner {
    /// Creates a scanner over `internet` honoring `blocklist`.
    pub fn new(internet: Internet, blocklist: Blocklist, config: ScanConfig) -> Self {
        Scanner {
            internet,
            blocklist,
            config,
        }
    }

    /// The scan configuration.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Probes a single address with the given probe stack, returning the
    /// record. Exposed for targeted re-scans (e.g. following LDS
    /// referrals) and tests. Runs on the shared clock; campaign scans
    /// instead fork a per-host clock (see [`Self::scan_with`]).
    pub fn probe_host(
        &self,
        stack: &mut [Box<dyn Probe>],
        addr: netsim::Ipv4,
        seed: u64,
    ) -> ScanRecord {
        probe_host_on(&self.internet, &self.config, stack, addr, seed)
    }

    /// Probes `addr` on an independent clock forked from `epoch`,
    /// returning the record plus the virtual microseconds the probe
    /// consumed. Record contents depend only on (host, seed, epoch).
    fn probe_host_at_epoch(
        &self,
        epoch: &VirtualClock,
        stack: &mut [Box<dyn Probe>],
        addr: netsim::Ipv4,
        seed: u64,
    ) -> (ScanRecord, u64) {
        let clock = epoch.fork();
        let start = clock.now_micros();
        let internet = self.internet.with_clock(clock.clone());
        let record = probe_host_on(&internet, &self.config, stack, addr, seed);
        (record, clock.now_micros().saturating_sub(start))
    }

    /// Runs the full campaign synchronously, handing each record to
    /// `sink` as soon as its host is fully probed — in discovery order,
    /// which is identical for every [`ScanConfig::workers`] setting.
    pub fn scan_with<F>(&self, universe: &[Cidr], seed: u64, mut sink: F) -> ScanSummary
    where
        F: FnMut(ScanRecord),
    {
        let mut summary = ScanSummary {
            started_unix: self.internet.clock().now_unix_seconds(),
            ..ScanSummary::default()
        };
        // Every probed host gets a clock forked from this frozen epoch,
        // so records cannot observe each other through shared time.
        let epoch = self.internet.clock().fork();
        let workers = self.config.workers.max(1);
        let mut probe_micros: u64 = 0;
        let mut opcua_hosts: u64 = 0;
        let mut non_opcua_hosts: u64 = 0;
        let mut emit = |record: ScanRecord| {
            if record.hello_ok {
                opcua_hosts += 1;
            } else {
                non_opcua_hosts += 1;
            }
            sink(record);
        };
        summary.sweep = if workers == 1 {
            // Single shard runs inline: the sweep streams responsive
            // addresses straight into the probe stack, no threads.
            let syn = SynScanner::new(&self.internet, &self.blocklist, self.sweep_config());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stack = default_stack();
            syn.sweep_shard(universe, &mut rng, 0, 1, |_pos, addr| {
                let (record, micros) =
                    self.probe_host_at_epoch(&epoch, &mut stack, addr, seed ^ u64::from(addr.0));
                probe_micros += micros;
                emit(record);
            })
        } else {
            self.scan_sharded(
                universe,
                seed,
                workers,
                &epoch,
                &mut probe_micros,
                &mut emit,
            )
        };
        summary.opcua_hosts = opcua_hosts;
        summary.non_opcua_hosts = non_opcua_hosts;
        // Account campaign time once, from order-independent sums:
        // sweep pacing plus aggregate probe latency.
        let sweep_seconds = summary.sweep.probes_sent / self.config.probes_per_second.max(1);
        self.internet.clock().advance_seconds(sweep_seconds);
        self.internet.clock().advance_micros(probe_micros);
        summary.finished_unix = self.internet.clock().now_unix_seconds();
        summary
    }

    /// The multi-worker engine: N scoped threads each sweep their shard
    /// of the permutation and probe their hosts; the coordinator merges
    /// the N position-sorted streams back into global discovery order.
    fn scan_sharded<F>(
        &self,
        universe: &[Cidr],
        seed: u64,
        workers: usize,
        epoch: &VirtualClock,
        probe_micros: &mut u64,
        mut emit: F,
    ) -> SweepStats
    where
        F: FnMut(ScanRecord),
    {
        let capacity = self.config.channel_capacity.max(1);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rxs = Vec::with_capacity(workers);
            for shard in 0..workers {
                let (tx, rx) = mpsc::sync_channel::<ShardItem>(capacity);
                rxs.push(rx);
                let epoch = epoch.clone();
                handles.push(scope.spawn(move || {
                    let syn = SynScanner::new(&self.internet, &self.blocklist, self.sweep_config());
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut stack = default_stack();
                    syn.sweep_shard(
                        universe,
                        &mut rng,
                        shard as u64,
                        workers as u64,
                        |pos, addr| {
                            let (record, micros) = self.probe_host_at_epoch(
                                &epoch,
                                &mut stack,
                                addr,
                                seed ^ u64::from(addr.0),
                            );
                            // A dropped coordinator means the scan was
                            // abandoned; keep sweeping for the stats.
                            let _ = tx.send((pos, record, micros));
                        },
                    )
                }));
            }
            // N-way merge: each shard stream is sorted by permutation
            // position and positions are globally unique, so repeatedly
            // emitting the smallest head reproduces discovery order
            // exactly. Blocking on one shard is fine — the others run
            // ahead into their bounded buffers.
            let mut heads: Vec<Option<ShardItem>> = rxs.iter().map(|rx| rx.recv().ok()).collect();
            while let Some(next) = heads
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.as_ref().map(|(pos, _, _)| (*pos, i)))
                .min()
                .map(|(_, i)| i)
            {
                let (_pos, record, micros) = heads[next].take().expect("head present");
                *probe_micros += micros;
                emit(record);
                heads[next] = rxs[next].recv().ok();
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("scan shard panicked"))
                .fold(SweepStats::default(), |acc, s| acc + s)
        })
    }

    fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            probes_per_second: self.config.probes_per_second,
            port: self.config.port,
        }
    }

    /// Convenience: runs [`Self::scan_with`] and collects all records.
    pub fn scan_collect(&self, universe: &[Cidr], seed: u64) -> (ScanSummary, Vec<ScanRecord>) {
        let mut records = Vec::new();
        let summary = self.scan_with(universe, seed, |r| records.push(r));
        (summary, records)
    }

    /// Runs the campaign on a coordinator thread (plus
    /// [`ScanConfig::workers`] shard threads), streaming records through
    /// a bounded channel. Iterate the returned [`ScanStream`] to consume
    /// records as they are produced; call [`ScanStream::finish`] for the
    /// summary. Record order is identical to [`Self::scan_with`] for any
    /// worker count — shards merge back into discovery order.
    pub fn scan_stream(self, universe: Vec<Cidr>, seed: u64) -> ScanStream {
        let (tx, rx) = mpsc::sync_channel(self.config.channel_capacity.max(1));
        let handle = std::thread::spawn(move || {
            self.scan_with(&universe, seed, |record| {
                // A dropped receiver means the consumer stopped caring;
                // keep scanning for the summary but stop pushing.
                let _ = tx.send(record);
            })
        });
        ScanStream {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

/// One merged unit from a shard: (global permutation step, record,
/// virtual probe microseconds).
type ShardItem = (u64, ScanRecord, u64);

/// Probes `addr` through `internet` (whichever clock it carries) with
/// `stack`, filling in the transport accounting.
fn probe_host_on(
    internet: &Internet,
    config: &ScanConfig,
    stack: &mut [Box<dyn Probe>],
    addr: netsim::Ipv4,
    seed: u64,
) -> ScanRecord {
    let mut record = ScanRecord::new(
        addr,
        internet.as_number(addr),
        internet.clock().now_unix_seconds(),
    );
    let mut ctx = ProbeContext::new(internet, config, addr, seed);
    for probe in stack.iter_mut() {
        if probe.run(&mut ctx, &mut record) == ProbeOutcome::Stop {
            break;
        }
    }
    if let Some(client) = &ctx.client {
        record.requests = client.requests_sent();
        let stats = client.stats();
        record.tx_bytes = stats.tx_bytes;
        record.rx_bytes = stats.rx_bytes;
    }
    record
}

/// Iterator over streamed scan records (see [`Scanner::scan_stream`]).
pub struct ScanStream {
    rx: Option<mpsc::Receiver<ScanRecord>>,
    handle: Option<JoinHandle<ScanSummary>>,
}

impl Iterator for ScanStream {
    type Item = ScanRecord;

    fn next(&mut self) -> Option<ScanRecord> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl ScanStream {
    /// Waits for the campaign to end and returns its summary. Pending
    /// records are drained and dropped; iterate first to keep them.
    pub fn finish(mut self) -> ScanSummary {
        // Dropping the receiver unblocks a producer waiting on a full
        // channel.
        self.rx = None;
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("scan worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SessionOutcome;
    use netsim::{Ipv4, VirtualClock};
    use std::sync::Arc;
    use ua_addrspace::{NodeAccess, SpaceBuilder};
    use ua_server::{ServerConfig, ServerCore, UaServerService};
    use ua_types::Variant;

    fn wide_open_internet(addrs: &[Ipv4]) -> Internet {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        for (i, &addr) in addrs.iter().enumerate() {
            let url = format!("opc.tcp://{addr}:4840/");
            let mut b = SpaceBuilder::new(&["urn:test:dev"], "1.0");
            let f = b.folder(None, "Plant");
            b.variable(&f, "inflow", Variant::Double(1.5), NodeAccess::read_only());
            b.variable(
                &f,
                "setpoint",
                Variant::Float(50.0),
                NodeAccess::read_write_all(),
            );
            b.method(&f, "Flush", true);
            let core = ServerCore::new(
                ServerConfig::wide_open(format!("urn:test:dev{i}"), url),
                b.finish(),
                7 + i as u64,
            );
            net.add_host(addr, 10_000);
            net.bind(addr, 4840, Arc::new(UaServerService::new(core, 5)));
        }
        net
    }

    #[test]
    fn scan_probes_wide_open_host_end_to_end() {
        let addr = Ipv4::new(10, 0, 0, 7);
        let net = wide_open_internet(&[addr]);
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.0.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 1);

        assert_eq!(summary.sweep.probes_sent, 256);
        assert_eq!(summary.opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.address, addr);
        assert!(r.hello_ok);
        assert_eq!(r.application_uri.as_deref(), Some("urn:test:dev0"));
        assert_eq!(r.endpoints.len(), 1);
        assert!(r.advertises_anonymous());
        assert_eq!(r.session, SessionOutcome::AnonymousActivated);
        let t = r.traversal.expect("traversal ran");
        assert!(t.nodes > 3);
        assert_eq!(t.writable, 1);
        assert_eq!(t.executable, 1);
        assert!(r.requests > 3);
        assert!(r.tx_bytes > 0);
    }

    #[test]
    fn streamed_scan_matches_sync_scan() {
        let addrs = [
            Ipv4::new(10, 1, 0, 3),
            Ipv4::new(10, 1, 0, 99),
            Ipv4::new(10, 1, 0, 200),
        ];
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.1.0.0/24".parse().unwrap();

        // Two independent clocks would drift; rebuild for a fair
        // comparison of record *content*.
        let sync_scanner = Scanner::new(net.clone(), Blocklist::new(), ScanConfig::default());
        let (_, sync_records) = sync_scanner.scan_collect(&[universe], 9);

        let net2 = wide_open_internet(&addrs);
        let stream_scanner = Scanner::new(net2, Blocklist::new(), ScanConfig::default());
        let mut stream = stream_scanner.scan_stream(vec![universe], 9);
        let streamed: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();

        assert_eq!(summary.opcua_hosts, 3);
        assert_eq!(streamed.len(), sync_records.len());
        for (a, b) in streamed.iter().zip(&sync_records) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.endpoints, b.endpoints);
            assert_eq!(a.session, b.session);
        }
    }

    #[test]
    fn bounded_channel_backpressure_keeps_all_records() {
        let addrs: Vec<Ipv4> = (0..20).map(|i| Ipv4::new(10, 2, 0, 10 + i)).collect();
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.2.0.0/24".parse().unwrap();
        let config = ScanConfig {
            channel_capacity: 2, // far smaller than the host count
            ..ScanConfig::default()
        };
        let scanner = Scanner::new(net, Blocklist::new(), config);
        let mut stream = scanner.scan_stream(vec![universe], 4);
        let records: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();
        assert_eq!(records.len(), 20);
        assert_eq!(summary.opcua_hosts, 20);
    }

    #[test]
    fn non_opcua_listener_counted_but_not_recorded_as_opcua() {
        struct Junk;
        struct JunkConn;
        impl netsim::Connection for JunkConn {
            fn on_data(&mut self, _d: &[u8]) -> netsim::ConnectionOutput {
                netsim::ConnectionOutput::close_with(b"HTTP/1.1 400\r\n\r\n".to_vec())
            }
        }
        impl netsim::Service for Junk {
            fn open_connection(&self, _peer: Ipv4) -> Box<dyn netsim::Connection> {
                Box::new(JunkConn)
            }
        }
        let net = Internet::new(VirtualClock::starting_at(0));
        let addr = Ipv4::new(10, 3, 0, 1);
        net.add_host(addr, 1000);
        net.bind(addr, 4840, Arc::new(Junk));
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.3.0.0/28".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 2);
        assert_eq!(summary.sweep.responsive, 1);
        assert_eq!(summary.opcua_hosts, 0);
        assert_eq!(summary.non_opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        assert!(!records[0].hello_ok);
    }

    #[test]
    fn blocklisted_hosts_never_probed() {
        let addr = Ipv4::new(10, 4, 0, 50);
        let net = wide_open_internet(&[addr]);
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.4.0.0/24").unwrap();
        let scanner = Scanner::new(net, blocklist, ScanConfig::default());
        let universe: Cidr = "10.4.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 3);
        assert_eq!(summary.sweep.blocklisted, 256);
        assert_eq!(summary.sweep.probes_sent, 0);
        assert!(records.is_empty());
    }
}
